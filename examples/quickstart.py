"""Quickstart: co-schedule two benchmarks and compare memory schedulers.

Runs the latency-sensitive benchmark *vpr* against the aggressive
streaming benchmark *art* on a two-processor CMP under all three
schedulers, and reports IPC, memory read latency, and data-bus share
for each thread.

Usage::

    python examples/quickstart.py [--cycles N]
"""

import argparse

from repro import profile, run_solo, run_workload
from repro.stats import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=60_000)
    args = parser.parse_args()

    subject, background = profile("vpr"), profile("art")

    # The paper's QoS baseline: each thread alone on a private memory
    # system running at half speed (its share is φ = 1/2).
    baseline = run_solo(subject, scale=2.0, cycles=args.cycles)
    baseline_ipc = baseline.threads[0].ipc

    rows = []
    for policy in ("FR-FCFS", "FR-VFTF", "FQ-VFTF"):
        result = run_workload([subject, background], policy, cycles=args.cycles)
        vpr_thread, art_thread = result.threads
        rows.append(
            (
                policy,
                vpr_thread.ipc / baseline_ipc,
                vpr_thread.mean_read_latency,
                vpr_thread.bus_utilization,
                art_thread.bus_utilization,
                result.data_bus_utilization,
            )
        )

    print("vpr co-scheduled with art (vpr IPC normalized to its half-speed")
    print("private-memory baseline; QoS objective is normalized IPC >= 1)\n")
    print(
        render_table(
            [
                "scheduler",
                "vpr norm IPC",
                "vpr read lat",
                "vpr bus",
                "art bus",
                "total bus",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
