"""Reproduce the paper's Figure 1 motivation: destructive interference.

Shows benchmark *vpr* running alone, with *crafty* (another modest
thread — no effect), and with *art* (an aggressive thread — latency
explodes and IPC collapses) under the single-thread-optimized FR-FCFS
scheduler, then shows the same pairs under the FQ scheduler.

Usage::

    python examples/latency_isolation.py [--cycles N]
"""

import argparse

from repro import profile, run_solo, run_workload
from repro.stats import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=60_000)
    args = parser.parse_args()

    vpr = profile("vpr")
    solo = run_solo(vpr, cycles=args.cycles).threads[0]

    rows = [("vpr alone", "-", solo.ipc, solo.mean_read_latency)]
    for partner in ("crafty", "art"):
        for policy in ("FR-FCFS", "FQ-VFTF"):
            result = run_workload(
                [vpr, profile(partner)], policy, cycles=args.cycles
            )
            thread = result.threads[0]
            rows.append(
                (f"vpr + {partner}", policy, thread.ipc, thread.mean_read_latency)
            )

    print("Destructive interference through the shared memory system")
    print("(each core has private caches; only SDRAM is shared)\n")
    print(render_table(["configuration", "scheduler", "vpr IPC", "read latency"], rows))
    print(
        "\nUnder FR-FCFS an aggressive co-runner starves vpr;"
        " the FQ scheduler restores its latency and throughput."
    )


if __name__ == "__main__":
    main()
