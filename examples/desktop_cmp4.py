"""The paper's desktop scenario: a four-core CMP with mixed workloads.

Runs the paper's first four-thread workload (art, lucas, apsi, ammp —
each thread allocated an equal φ = ¼ share) under FR-FCFS and FQ-VFTF
and reports per-thread normalized IPC and bandwidth shares, plus the
fairness statistics of Figure 9.

Usage::

    python examples/desktop_cmp4.py [--cycles N] [--workload 1..4]
"""

import argparse

from repro import four_proc_workloads, run_solo, run_workload
from repro.stats import fair_share_targets, render_table, variance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=60_000)
    parser.add_argument("--workload", type=int, default=1, choices=(1, 2, 3, 4))
    args = parser.parse_args()

    workload = four_proc_workloads()[args.workload - 1]
    names = [b.name for b in workload]
    print(f"Workload {args.workload}: {', '.join(names)}  (φ = 1/4 each)\n")

    baselines = [
        run_solo(b, scale=4.0, cycles=args.cycles).threads[0].ipc for b in workload
    ]
    solo_utils = [
        run_solo(b, cycles=args.cycles).threads[0].bus_utilization for b in workload
    ]
    targets = fair_share_targets(solo_utils, [0.25] * 4)

    for policy in ("FR-FCFS", "FQ-VFTF"):
        result = run_workload(workload, policy, cycles=args.cycles)
        rows = []
        normalized_utils = []
        for thread, base, target in zip(result.threads, baselines, targets):
            normalized_utils.append(thread.bus_utilization / target)
            rows.append(
                (
                    thread.name,
                    thread.ipc / base,
                    thread.bus_utilization,
                    target,
                    thread.bus_utilization / target,
                )
            )
        print(f"--- {policy} ---")
        print(
            render_table(
                ["thread", "norm IPC", "bus util", "target util", "util/target"],
                rows,
            )
        )
        print(
            f"normalized-utilization variance: {variance(normalized_utils):.4f}"
            f"   aggregate bus: {result.data_bus_utilization:.2f}\n"
        )


if __name__ == "__main__":
    main()
