"""OS/VMM-style service-share allocation.

The FQ scheduler's φ registers accept arbitrary fractions — the paper
notes they "could be assigned flexibly by either an OS or a virtual
machine monitor".  This example gives a foreground thread increasing
shares of the memory system against a fixed aggressive background and
shows that its delivered bandwidth and throughput track the allocation
— the knob an OS scheduler would turn to prioritize an interactive
task.

Usage::

    python examples/qos_shares.py [--cycles N] [--subject NAME]
"""

import argparse

from repro import profile, run_solo
from repro.core import weighted_shares
from repro.sim import CmpSystem, SystemConfig
from repro.stats import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=60_000)
    parser.add_argument("--subject", default="equake")
    args = parser.parse_args()

    subject = profile(args.subject)
    background = profile("art")

    rows = []
    for weights in ((1, 3), (1, 1), (3, 1)):
        shares = weighted_shares(list(weights))
        config = SystemConfig(num_cores=2, policy="FQ-VFTF", shares=shares)
        system = CmpSystem(config, [subject, background])
        result = system.run(args.cycles, warmup=args.cycles // 4)
        # QoS baseline for this share: solo on a 1/φ time-scaled system.
        base = run_solo(subject, scale=1.0 / shares[0], cycles=args.cycles)
        rows.append(
            (
                f"{shares[0]:.2f} / {shares[1]:.2f}",
                result.threads[0].ipc / base.threads[0].ipc,
                result.threads[0].bus_utilization,
                result.threads[1].bus_utilization,
            )
        )

    print(f"{subject.name} vs art under FQ-VFTF with OS-assigned shares\n")
    print(
        render_table(
            [
                "φ subject / background",
                "subject norm IPC (vs 1/φ baseline)",
                "subject bus",
                "background bus",
            ],
            rows,
        )
    )
    print("\nDelivered bandwidth tracks the allocated share, and the QoS")
    print("objective (norm IPC >= 1) holds at every allocation.")


if __name__ == "__main__":
    main()
