"""Bring-your-own-trace: record, save, and replay reference streams.

The simulator is trace-driven; the bundled SPEC-2000-like profiles are
synthetic generators, but any recorded reference stream in the trace
format of ``repro.cpu.trace`` can drive a core.  This example builds a
pointer-chasing trace by hand, saves it to disk, replays it from the
file against the aggressive background thread, and shows the FQ
scheduler protecting it.

Usage::

    python examples/custom_traces.py [--cycles N]
"""

import argparse
import random
import tempfile
from pathlib import Path

from repro import SystemConfig, CmpSystem, TraceRecord, profile
from repro.cpu.trace import write_trace
from repro.stats import render_table
from repro.workloads import TraceWorkload


def pointer_chase_trace(num_records: int, seed: int = 42):
    """A dependent-load chain over a large footprint — worst-case
    memory-level parallelism, like the paper's vpr/twolf."""
    rng = random.Random(seed)
    records = []
    for _ in range(num_records):
        records.append(
            TraceRecord(
                inst_gap=rng.randint(150, 450),
                is_write=rng.random() < 0.1,
                address=rng.randrange(1 << 19) * 64,
                dep=1,  # each load waits for the previous one
            )
        )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=40_000)
    args = parser.parse_args()

    records = pointer_chase_trace(50_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pointer_chase.trace"
        count = write_trace(path, records)
        print(f"wrote {count} records to {path.name}\n")

        workload = TraceWorkload(name="chase", path=path)
        rows = []
        for policy in ("FR-FCFS", "FQ-VFTF"):
            config = SystemConfig(num_cores=2, policy=policy)
            system = CmpSystem(config, [workload, profile("art")])
            result = system.run(args.cycles, warmup=args.cycles // 4)
            thread = result.thread("chase")
            rows.append(
                (policy, thread.ipc, thread.mean_read_latency, thread.bus_utilization)
            )

    print("recorded pointer-chase trace co-scheduled with art:\n")
    print(render_table(["scheduler", "chase IPC", "read latency", "bus util"], rows))
    print("\nThe dependent-load chain exposes the full preemption latency of")
    print("the memory system; the FQ scheduler bounds it per the QoS objective.")


if __name__ == "__main__":
    main()
