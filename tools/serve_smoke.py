"""CI smoke for the serve family: sweep, chaos kill, cache, query.

Drives a *real* ``repro-fqms serve`` process end to end, the way the
unit tests cannot (they inject executors; this script exercises the
foreground CLI, the unix/TCP protocol, and genuine worker
subprocesses):

1. start the service in the foreground (a child process of this
   script), wait for ``<root>/serve.addr``;
2. submit a 24-run grid (2 mixes x 2 policies x 3 seeds x 2 phi
   vectors) over the protocol;
3. while the sweep runs, SIGKILL one worker pid taken from ``status``
   — the chaos probe; the service must classify the death as a crash
   and resubmit within its retry budget;
4. wait for drain and assert done=24, lost=0, retried>=1;
5. snapshot the offline ``results`` rendering, resubmit the identical
   grid, and require 100% cache-served (0 queued) plus a
   byte-identical ``results`` snapshot — the durable store must be
   exactly as queryable after the no-op resubmission;
6. shut the service down over the protocol and require a clean exit.

Exit code 0 means every assertion held.  Run from the repository root:

    PYTHONPATH=src python tools/serve_smoke.py --root /tmp/serve-smoke
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from repro.serve.protocol import read_address, request
from repro.serve.spec import SweepSpec

#: 2 mixes x 2 policies x 3 seeds x 2 phi vectors = 24 distinct runs.
def sweep_payload(cycles: int) -> Dict:
    return SweepSpec(
        workloads=(("vpr", "art"), ("gzip", "twolf")),
        policies=("FR-FCFS", "FQ-VFTF"),
        cycles=cycles,
        warmup=cycles // 4,
        seeds=(0, 1, 2),
        share_vectors=(None, (2.0, 1.0)),
    ).to_payload()


def wait_for_address(root: str, timeout_s: float = 30.0) -> str:
    deadline = time.monotonic() + timeout_s  # lint: allow(DET002, smoke-harness deadline, not simulation state)
    while time.monotonic() < deadline:  # lint: allow(DET002, smoke-harness deadline, not simulation state)
        try:
            return read_address(root)
        except (OSError, ValueError):
            time.sleep(0.05)
    raise SystemExit(f"smoke: no service address under {root!r} "
                     f"after {timeout_s:g}s")


def status(root: str) -> Dict:
    return request(root, {"op": "status"})["status"]


def kill_one_worker(root: str, timeout_s: float = 60.0) -> int:
    """SIGKILL the first live worker pid ``status`` reports.

    A pid can exit between the status snapshot and the kill; on
    ``ProcessLookupError`` the next snapshot supplies a fresh target.
    """
    deadline = time.monotonic() + timeout_s  # lint: allow(DET002, smoke-harness deadline, not simulation state)
    while time.monotonic() < deadline:  # lint: allow(DET002, smoke-harness deadline, not simulation state)
        snapshot = status(root)
        pids = snapshot.get("worker_pids", {})
        for pid in pids.values():
            try:
                os.kill(int(pid), signal.SIGKILL)
            except ProcessLookupError:
                continue
            print(f"smoke: killed worker pid {pid}")
            return int(pid)
        if snapshot.get("outstanding", 0) <= 0:
            raise SystemExit(
                "smoke: the sweep drained before a worker could be "
                "killed; raise --cycles so runs outlive the probe"
            )
        time.sleep(0.02)
    raise SystemExit("smoke: found no killable worker pid in time")


def wait_for_drain(root: str, timeout_s: float = 600.0) -> Dict:
    deadline = time.monotonic() + timeout_s  # lint: allow(DET002, smoke-harness deadline, not simulation state)
    while time.monotonic() < deadline:  # lint: allow(DET002, smoke-harness deadline, not simulation state)
        snapshot = status(root)
        if snapshot.get("outstanding", 0) <= 0:
            return snapshot
        time.sleep(0.1)
    raise SystemExit(f"smoke: sweep failed to drain within {timeout_s:g}s")


def results_snapshot(root: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "results", "--root", root],
        capture_output=True, text=True, check=True,
    )
    return proc.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default="/tmp/repro-serve-smoke")
    parser.add_argument(
        "--cycles", type=int, default=20000,
        help="measurement window per run (default %(default)s; large "
        "enough that the chaos kill lands mid-run)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    root = args.root
    Path(root).mkdir(parents=True, exist_ok=True)
    server: Optional[subprocess.Popen] = None
    try:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--root", root, "--workers", str(args.workers),
            ],
        )
        address = wait_for_address(root)
        print(f"smoke: service up at {address}")

        sweep = sweep_payload(args.cycles)
        ticket = request(
            root,
            {"op": "submit", "tenant": "smoke", "share": 1.0, "sweep": sweep},
        )["ticket"]
        print(f"smoke: submitted {ticket['runs']} runs "
              f"({ticket['queued']} queued, {ticket['cached']} cached)")
        assert ticket["runs"] == 24, ticket
        assert ticket["queued"] == 24, ticket

        kill_one_worker(root)
        snapshot = wait_for_drain(root)
        counts = snapshot["counts"]
        print(f"smoke: drained: {counts}")
        assert counts["done"] == 24, counts
        assert counts["lost"] == 0, counts
        assert counts["error"] == 0, counts
        assert counts["retried"] >= 1, (
            f"the killed worker never surfaced as a retry: {counts}"
        )
        assert snapshot["store_runs"] == 24, snapshot["store_runs"]

        first = results_snapshot(root)
        assert "fingerprint" in first and "FQ-VFTF" in first, first

        again = request(
            root,
            {"op": "submit", "tenant": "smoke", "share": 1.0, "sweep": sweep},
        )["ticket"]
        print(f"smoke: resubmitted: {again['cached']} cache-served, "
              f"{again['queued']} queued")
        assert again["cached"] == 24, again
        assert again["queued"] == 0, again

        second = results_snapshot(root)
        assert first == second, (
            "results rendering changed across a fully cache-served "
            "resubmission"
        )
        print("smoke: results rendering is byte-identical after resubmit")

        assert request(root, {"op": "shutdown"})["ok"]
        code = server.wait(timeout=60)
        server = None
        assert code == 0, f"serve exited {code}"
        print("smoke: serve exited cleanly; all assertions held")
        return 0
    finally:
        if server is not None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main())
