#!/usr/bin/env python
"""Diff two interval-metric dumps and print per-thread divergence epochs.

Both inputs are interval dumps written by ``repro-fqms trace
--intervals`` (CSV or JSONL, sniffed automatically).  Typical uses:

* policy dynamics: FQ-VFTF vs FR-FCFS on the same workload — where in
  the run does fair queuing start redistributing bandwidth?
* engine validation: event vs cycle engine on the same configuration —
  any divergence epoch is a bug (the engines must agree sample by
  sample).

For every metric the tool reports, per thread, the first interval
("epoch") whose values differ beyond tolerance and the largest
divergence over the common window.  Exit code is 1 when any metric
diverged, so engine comparisons can gate CI.

    PYTHONPATH=src python tools/trace_compare.py a.csv b.csv
    PYTHONPATH=src python tools/trace_compare.py fq.jsonl frfcfs.jsonl \
        --metrics bus_utilization vft_lag --rel-tol 0.05
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.stats.report import render_table  # noqa: E402
from repro.telemetry.export import load_intervals  # noqa: E402

#: Metrics compared when --metrics is not given.
DEFAULT_METRICS = (
    "bus_utilization",
    "queue_occupancy",
    "row_hit_rate",
    "vft_lag",
    "inversions",
    "mean_read_latency",
)


@dataclass
class Divergence:
    """Comparison outcome for one (metric, thread) pair."""

    metric: str
    thread: int
    first_epoch: Optional[float]  #: cycle of the first out-of-tolerance interval
    max_delta: float
    max_epoch: Optional[float]  #: cycle where the largest delta occurred
    intervals: int  #: intervals compared

    @property
    def diverged(self) -> bool:
        return self.first_epoch is not None


def index_rows(
    rows: Sequence[Dict[str, float]],
) -> Dict[Tuple[float, float], Dict[str, float]]:
    """Index dump rows by (cycle, thread)."""
    return {(row["cycle"], row["thread"]): row for row in rows}


def compare(
    rows_a: Sequence[Dict[str, float]],
    rows_b: Sequence[Dict[str, float]],
    metrics: Sequence[str],
    rel_tol: float,
    abs_tol: float,
) -> List[Divergence]:
    """Compare two dumps over their common (cycle, thread) window."""
    index_a = index_rows(rows_a)
    index_b = index_rows(rows_b)
    common = sorted(set(index_a) & set(index_b))
    threads = sorted({thread for _, thread in common})
    out: List[Divergence] = []
    for metric in metrics:
        for thread in threads:
            first: Optional[float] = None
            max_delta = 0.0
            max_epoch: Optional[float] = None
            count = 0
            for cycle, t in common:
                if t != thread:
                    continue
                a = index_a[(cycle, t)].get(metric)
                b = index_b[(cycle, t)].get(metric)
                if a is None or b is None:
                    continue
                count += 1
                delta = abs(a - b)
                if delta > max_delta:
                    max_delta = delta
                    max_epoch = cycle
                bound = max(abs_tol, rel_tol * max(abs(a), abs(b)))
                if delta > bound and first is None:
                    first = cycle
            out.append(
                Divergence(
                    metric=metric,
                    thread=int(thread),
                    first_epoch=first,
                    max_delta=max_delta,
                    max_epoch=max_epoch,
                    intervals=count,
                )
            )
    return out


def render(divergences: Sequence[Divergence]) -> str:
    rows = []
    for d in divergences:
        rows.append(
            (
                d.metric,
                f"T{d.thread}",
                d.intervals,
                "-" if d.first_epoch is None else int(d.first_epoch),
                d.max_delta,
                "-" if d.max_epoch is None else int(d.max_epoch),
            )
        )
    return render_table(
        ("metric", "thread", "intervals", "first divergence", "max |delta|", "at"),
        rows,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump_a", help="first interval dump (.csv or .jsonl)")
    parser.add_argument("dump_b", help="second interval dump (.csv or .jsonl)")
    parser.add_argument(
        "--metrics",
        nargs="+",
        default=list(DEFAULT_METRICS),
        help=f"metrics to compare (default: {' '.join(DEFAULT_METRICS)})",
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        help="relative tolerance per interval (default 0: exact)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=0.0,
        help="absolute tolerance per interval (default 0: exact)",
    )
    args = parser.parse_args(argv)
    rows_a = load_intervals(args.dump_a)
    rows_b = load_intervals(args.dump_b)
    divergences = compare(
        rows_a, rows_b, args.metrics, args.rel_tol, args.abs_tol
    )
    if not any(d.intervals for d in divergences):
        print("no overlapping (cycle, thread) intervals between the dumps")
        return 2
    print(render(divergences))
    diverged = [d for d in divergences if d.diverged]
    if diverged:
        print(
            f"\n{len(diverged)} of {len(divergences)} metric/thread series "
            "diverged beyond tolerance"
        )
        return 1
    print("\nall compared series agree within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
