#!/usr/bin/env python
"""Profile one co-scheduled run and print the hottest code paths.

The companion to the performance notes in docs/INTERNALS.md §6: run
this before and after touching the cycle loop to see where the time
actually goes.  Simulates a co-scheduled workload pair from scratch
(no cache layers) under cProfile and prints the top functions by
cumulative time.

    PYTHONPATH=src python tools/profile_run.py
    PYTHONPATH=src python tools/profile_run.py --policy FR-FCFS \
        --benchmarks vpr art --cycles 40000 --top 30
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sim.runner import default_warmup, run_workload  # noqa: E402
from repro.workloads.spec2000 import profile as lookup_profile  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["vpr", "art"],
        help="benchmarks to co-schedule, one per core (default: vpr art)",
    )
    parser.add_argument("--policy", default="FQ-VFTF")
    parser.add_argument("--cycles", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--top", type=int, default=20, help="rows of profile output"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument(
        "--engine",
        choices=["cycle", "event"],
        default=None,
        help="simulation engine (default: REPRO_ENGINE or 'event')",
    )
    args = parser.parse_args(argv)

    profiles = [lookup_profile(name) for name in args.benchmarks]
    warmup = default_warmup(args.cycles)
    simulated = args.cycles + warmup

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_workload(
        profiles,
        args.policy,
        cycles=args.cycles,
        warmup=warmup,
        seed=args.seed,
        engine=args.engine,
    )
    profiler.disable()
    elapsed = time.perf_counter() - start

    names = "+".join(args.benchmarks)
    print(
        f"{names} under {args.policy}: {simulated:,} cycles in "
        f"{elapsed:.2f}s = {simulated / elapsed:,.0f} simulated cycles/sec"
    )
    steps = result.extras.get("engine_steps")
    if steps is not None:
        skipped = result.extras["engine_cycles_skipped"]
        ratio = result.extras["engine_skip_ratio"]
        mean_skip = skipped / steps if steps else 0.0
        print(
            f"event engine: {int(steps):,} cycles stepped, "
            f"{int(skipped):,} skipped ({ratio:.1%} skip ratio, "
            f"mean skip {mean_skip:.1f} cycles per step)"
        )
    else:
        print("cycle engine: every cycle stepped (differential oracle)")
    print()
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
