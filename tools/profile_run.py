#!/usr/bin/env python
"""Profile one co-scheduled run and print the hottest code paths.

The companion to the performance notes in docs/INTERNALS.md §6: run
this before and after touching the cycle loop to see where the time
actually goes.  Simulates a co-scheduled workload pair from scratch
(no cache layers) under cProfile and prints the top functions by
cumulative time.

    PYTHONPATH=src python tools/profile_run.py
    PYTHONPATH=src python tools/profile_run.py --policy FR-FCFS \
        --benchmarks vpr art --cycles 40000 --top 30

Regression hunts: save a baseline profile before a change, then diff
after it — the delta table shows exactly which functions got cheaper
or dearer, no manual pstats spelunking:

    PYTHONPATH=src python tools/profile_run.py --save before.prof
    ... make changes ...
    PYTHONPATH=src python tools/profile_run.py --diff before.prof
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sim.runner import default_warmup, run_workload  # noqa: E402
from repro.workloads.spec2000 import profile as lookup_profile  # noqa: E402

#: Accepted --sort spellings → the pstats sort key.  ``cumtime`` and
#: ``cumulative`` are the same thing; both are accepted because both
#: are common muscle memory.
SORT_KEYS = {
    "cumulative": "cumulative",
    "cumtime": "cumulative",
    "tottime": "tottime",
    "ncalls": "ncalls",
}


def _function_rows(stats: pstats.Stats):
    """Flatten a Stats object to {(file, line, func): (ncalls, tot, cum)}."""
    rows = {}
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows[func] = (nc, tt, ct)
    return rows


def _print_diff(baseline: pstats.Stats, current: pstats.Stats, sort: str, top: int) -> None:
    """Per-function delta table: current minus baseline, largest first.

    Functions present on only one side still appear (the other side
    counts as zero), so regressions from *new* code paths show up too.
    """
    before = _function_rows(baseline)
    after = _function_rows(current)
    deltas = []
    for func in set(before) | set(after):
        b_calls, b_tot, b_cum = before.get(func, (0, 0.0, 0.0))
        a_calls, a_tot, a_cum = after.get(func, (0, 0.0, 0.0))
        deltas.append(
            (
                func,
                a_calls - b_calls,
                a_tot - b_tot,
                a_cum - b_cum,
                a_tot,
                a_cum,
            )
        )
    rank = {"tottime": 2, "cumulative": 3, "ncalls": 1}[sort]
    deltas.sort(key=lambda row: abs(row[rank]), reverse=True)
    print(
        f"{'Δncalls':>10} {'Δtottime':>10} {'Δcumtime':>10} "
        f"{'tottime':>9} {'cumtime':>9}  function"
    )
    for func, d_calls, d_tot, d_cum, a_tot, a_cum in deltas[:top]:
        filename, lineno, name = func
        where = f"{Path(filename).name}:{lineno}({name})"
        print(
            f"{d_calls:>+10d} {d_tot:>+10.3f} {d_cum:>+10.3f} "
            f"{a_tot:>9.3f} {a_cum:>9.3f}  {where}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["vpr", "art"],
        help="benchmarks to co-schedule, one per core (default: vpr art)",
    )
    parser.add_argument("--policy", default="FQ-VFTF")
    parser.add_argument("--cycles", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--top", type=int, default=20, help="rows of profile output"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=sorted(SORT_KEYS),
        help="pstats sort key (cumtime is an alias for cumulative)",
    )
    parser.add_argument(
        "--engine",
        choices=["cycle", "event"],
        default=None,
        help="simulation engine (default: REPRO_ENGINE or 'event')",
    )
    parser.add_argument(
        "--save",
        metavar="OUT.prof",
        default=None,
        help="dump the raw profile for later --diff runs",
    )
    parser.add_argument(
        "--diff",
        metavar="BASELINE.prof",
        default=None,
        help="print the per-function delta vs a profile saved with --save",
    )
    args = parser.parse_args(argv)
    sort = SORT_KEYS[args.sort]

    baseline = None
    if args.diff is not None:
        path = Path(args.diff)
        if not path.exists():
            parser.error(f"--diff baseline not found: {path}")
        baseline = pstats.Stats(str(path)).strip_dirs()

    profiles = [lookup_profile(name) for name in args.benchmarks]
    warmup = default_warmup(args.cycles)
    simulated = args.cycles + warmup

    profiler = cProfile.Profile()
    start = time.perf_counter()  # lint: allow(DET002, profiling harness timing, not simulation state)
    profiler.enable()
    result = run_workload(
        profiles,
        args.policy,
        cycles=args.cycles,
        warmup=warmup,
        seed=args.seed,
        engine=args.engine,
    )
    profiler.disable()
    elapsed = time.perf_counter() - start  # lint: allow(DET002, profiling harness timing, not simulation state)

    names = "+".join(args.benchmarks)
    print(
        f"{names} under {args.policy}: {simulated:,} cycles in "
        f"{elapsed:.2f}s = {simulated / elapsed:,.0f} simulated cycles/sec"
    )
    steps = result.extras.get("engine_steps")
    if steps is not None:
        skipped = result.extras["engine_cycles_skipped"]
        ratio = result.extras["engine_skip_ratio"]
        mean_skip = skipped / steps if steps else 0.0
        print(
            f"event engine: {int(steps):,} cycles stepped, "
            f"{int(skipped):,} skipped ({ratio:.1%} skip ratio, "
            f"mean skip {mean_skip:.1f} cycles per step)"
        )
    else:
        print("cycle engine: every cycle stepped (differential oracle)")
    print()
    stats = pstats.Stats(profiler).strip_dirs()
    if args.save is not None:
        stats.dump_stats(args.save)
        print(f"profile written to {args.save}")
    if baseline is not None:
        _print_diff(baseline, stats, sort, args.top)
    else:
        stats.sort_stats(sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
