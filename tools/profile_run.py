#!/usr/bin/env python
"""Profile one co-scheduled run and print the hottest code paths.

The companion to the performance notes in docs/INTERNALS.md §6: run
this before and after touching the cycle loop to see where the time
actually goes.  Simulates a co-scheduled workload pair from scratch
(no cache layers) under cProfile and prints the top functions by
cumulative time.

    PYTHONPATH=src python tools/profile_run.py
    PYTHONPATH=src python tools/profile_run.py --policy FR-FCFS \
        --benchmarks vpr art --cycles 40000 --top 30

Regression hunts: save a baseline profile before a change, then diff
after it — the delta table shows exactly which functions got cheaper
or dearer, no manual pstats spelunking:

    PYTHONPATH=src python tools/profile_run.py --save before.prof
    ... make changes ...
    PYTHONPATH=src python tools/profile_run.py --diff before.prof

``--manifest OUT.json`` additionally writes the per-function table as
a profile-kind manifest (schema ``repro.obs/1``), so a profiling
session can be diffed with ``repro-fqms perf`` like any other
snapshot:

    PYTHONPATH=src python tools/profile_run.py --manifest before.json
    ... make changes ...
    PYTHONPATH=src python tools/profile_run.py --manifest after.json
    PYTHONPATH=src repro-fqms perf before.json after.json
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sim.runner import default_warmup, run_workload  # noqa: E402
from repro.workloads.spec2000 import profile as lookup_profile  # noqa: E402

#: Accepted --sort spellings → the pstats sort key.  ``cumtime`` and
#: ``cumulative`` are the same thing; both are accepted because both
#: are common muscle memory.
SORT_KEYS = {
    "cumulative": "cumulative",
    "cumtime": "cumulative",
    "tottime": "tottime",
    "ncalls": "ncalls",
}


def _function_rows(stats: pstats.Stats):
    """Flatten a Stats object to {(file, line, func): (ncalls, tot, cum)}."""
    rows = {}
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows[func] = (nc, tt, ct)
    return rows


def _print_diff(baseline: pstats.Stats, current: pstats.Stats, sort: str, top: int) -> None:
    """Per-function delta table: current minus baseline, largest first.

    Functions present on only one side still appear (the other side
    counts as zero), so regressions from *new* code paths show up too.
    """
    before = _function_rows(baseline)
    after = _function_rows(current)
    deltas = []
    for func in set(before) | set(after):
        b_calls, b_tot, b_cum = before.get(func, (0, 0.0, 0.0))
        a_calls, a_tot, a_cum = after.get(func, (0, 0.0, 0.0))
        deltas.append(
            (
                func,
                a_calls - b_calls,
                a_tot - b_tot,
                a_cum - b_cum,
                a_tot,
                a_cum,
            )
        )
    rank = {"tottime": 2, "cumulative": 3, "ncalls": 1}[sort]
    deltas.sort(key=lambda row: abs(row[rank]), reverse=True)
    print(
        f"{'Δncalls':>10} {'Δtottime':>10} {'Δcumtime':>10} "
        f"{'tottime':>9} {'cumtime':>9}  function"
    )
    for func, d_calls, d_tot, d_cum, a_tot, a_cum in deltas[:top]:
        filename, lineno, name = func
        where = f"{Path(filename).name}:{lineno}({name})"
        print(
            f"{d_calls:>+10d} {d_tot:>+10.3f} {d_cum:>+10.3f} "
            f"{a_tot:>9.3f} {a_cum:>9.3f}  {where}"
        )


def _write_manifest(path, args, stats, simulated, elapsed, top):
    """Emit the profile as a repro.obs/1 manifest for ``repro-fqms perf``.

    Function keys are ``file(func)`` — line numbers deliberately
    dropped so an unrelated edit shifting a function downward does not
    orphan its before/after pairing.  Seconds-valued metrics carry the
    ``_s`` suffix, so the perf CLI gates them lower-is-better.
    """
    from repro.obs.manifest import new_manifest, write_manifest

    metrics = {
        "elapsed_s": round(elapsed, 4),
        "cycles_per_second": round(simulated / elapsed, 1),
    }
    ranked = sorted(
        _function_rows(stats).items(), key=lambda kv: kv[1][2], reverse=True
    )
    for (filename, _lineno, funcname), (ncalls, tot, cum) in ranked[:top]:
        key = f"{Path(filename).name}({funcname})"
        metrics[f"function.{key}.ncalls"] = float(ncalls)
        metrics[f"function.{key}.tottime_s"] = round(tot, 6)
        metrics[f"function.{key}.cumtime_s"] = round(cum, 6)
    payload = new_manifest(
        "profile",
        metrics=metrics,
        labels={
            "profile.workload": "+".join(args.benchmarks),
            "profile.policy": args.policy,
        },
        command="profile_run.py "
        f"--benchmarks {' '.join(args.benchmarks)} --policy {args.policy} "
        f"--cycles {args.cycles} --seed {args.seed}",
    )
    write_manifest(path, payload)
    print(f"manifest written to {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["vpr", "art"],
        help="benchmarks to co-schedule, one per core (default: vpr art)",
    )
    parser.add_argument("--policy", default="FQ-VFTF")
    parser.add_argument("--cycles", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--top", type=int, default=20, help="rows of profile output"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=sorted(SORT_KEYS),
        help="pstats sort key (cumtime is an alias for cumulative)",
    )
    parser.add_argument(
        "--engine",
        choices=["cycle", "event"],
        default=None,
        help="simulation engine (default: REPRO_ENGINE or 'event')",
    )
    parser.add_argument(
        "--save",
        metavar="OUT.prof",
        default=None,
        help="dump the raw profile for later --diff runs",
    )
    parser.add_argument(
        "--diff",
        metavar="BASELINE.prof",
        default=None,
        help="print the per-function delta vs a profile saved with --save",
    )
    parser.add_argument(
        "--manifest",
        metavar="OUT.json",
        default=None,
        help="write the per-function table as a profile-kind manifest "
        "(repro.obs/1) for repro-fqms perf",
    )
    args = parser.parse_args(argv)
    sort = SORT_KEYS[args.sort]

    baseline = None
    if args.diff is not None:
        path = Path(args.diff)
        if not path.exists():
            parser.error(f"--diff baseline not found: {path}")
        baseline = pstats.Stats(str(path)).strip_dirs()

    profiles = [lookup_profile(name) for name in args.benchmarks]
    warmup = default_warmup(args.cycles)
    simulated = args.cycles + warmup

    profiler = cProfile.Profile()
    start = time.perf_counter()  # lint: allow(DET002, profiling harness timing, not simulation state)
    profiler.enable()
    result = run_workload(
        profiles,
        args.policy,
        cycles=args.cycles,
        warmup=warmup,
        seed=args.seed,
        engine=args.engine,
    )
    profiler.disable()
    elapsed = time.perf_counter() - start  # lint: allow(DET002, profiling harness timing, not simulation state)

    names = "+".join(args.benchmarks)
    print(
        f"{names} under {args.policy}: {simulated:,} cycles in "
        f"{elapsed:.2f}s = {simulated / elapsed:,.0f} simulated cycles/sec"
    )
    steps = result.extras.get("engine_steps")
    if steps is not None:
        skipped = result.extras["engine_cycles_skipped"]
        ratio = result.extras["engine_skip_ratio"]
        mean_skip = skipped / steps if steps else 0.0
        print(
            f"event engine: {int(steps):,} cycles stepped, "
            f"{int(skipped):,} skipped ({ratio:.1%} skip ratio, "
            f"mean skip {mean_skip:.1f} cycles per step)"
        )
    else:
        print("cycle engine: every cycle stepped (differential oracle)")
    print()
    stats = pstats.Stats(profiler).strip_dirs()
    if args.save is not None:
        stats.dump_stats(args.save)
        print(f"profile written to {args.save}")
    if args.manifest is not None:
        _write_manifest(args.manifest, args, stats, simulated, elapsed, args.top)
    if baseline is not None:
        _print_diff(baseline, stats, sort, args.top)
    else:
        stats.sort_stats(sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
