"""Re-calibrate all 20 benchmark profiles and print frozen definitions.

Uses the current profiles in ``repro.workloads.spec2000`` as templates
and re-solves each one's intensity against its entry in
``TARGET_SOLO_UTILIZATION``.  Run this after any change to the core
model, prefetcher, or DRAM timing, then paste the output back into
``spec2000.py`` (and update the target table if the spectrum moved).

Usage: python tools/run_calibration.py
"""

import sys
import time

from repro.workloads.calibration import calibrate_intensity
from repro.workloads.spec2000 import BENCHMARKS, TARGET_SOLO_UTILIZATION


def main() -> None:
    lines = []
    for template in BENCHMARKS:
        target = TARGET_SOLO_UTILIZATION[template.name]
        t0 = time.time()  # lint: allow(DET002, calibration progress timing, not simulation state)
        profile, util = calibrate_intensity(template, target)
        elapsed = time.time() - t0  # lint: allow(DET002, calibration progress timing, not simulation state)
        print(
            f"{profile.name:10s} target={target:.3f} got={util:.3f} "
            f"gap={profile.inter_burst_gap:.0f} ({elapsed:.0f}s)",
            file=sys.stderr,
            flush=True,
        )
        p = profile
        ws = f"1 << {p.working_set_lines.bit_length() - 1}"
        lines.append(
            f'    BenchmarkProfile("{p.name}", {p.burst_len:g}, {p.burst_gap:g}, '
            f"{p.inter_burst_gap:.0f}, {p.row_locality:g}, {p.num_streams}, "
            f"{ws}, {p.dep_frac:g}, {p.write_frac:g}),  # ~{util:.3f}"
        )
    print("BENCHMARKS: List[BenchmarkProfile] = [")
    print("\n".join(lines))
    print("]")


if __name__ == "__main__":
    main()
