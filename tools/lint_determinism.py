#!/usr/bin/env python3
"""Determinism lint: static AST checks for reproducibility hazards.

The simulator's contract is bit-identical results from identical
inputs (the result cache, the differential checker, and every test
depend on it).  This lint walks the source tree and flags constructs
that historically break that contract:

DET001  unseeded randomness — module-level ``random.*`` calls (or
        ``from random import ...``); use an explicit seeded
        ``random.Random(seed)`` instance instead.
DET002  wall-clock reads — ``time.time()``, ``perf_counter()``,
        ``datetime.now()`` and friends; simulation logic must depend
        only on simulated time.
DET003  iteration over a set — ``for``/comprehension over a value that
        is statically a ``set``; set order varies with insertion
        history and hash seeding, so anything order-sensitive must
        iterate a list or wrap the set in ``sorted(...)``.  Iterations
        consumed by an order-insensitive reducer (``min``, ``max``,
        ``sum``, ``any``, ``all``, ``len``, ``sorted``, ``set``,
        ``frozenset``) are fine.
DET004  float equality on priority keys — ``==``/``!=`` against VTMS
        virtual-time fields; compare full ordering keys (which carry
        integer tie-breakers) instead.
DET005  mutable default argument — classic shared-state trap.
DET006  time/RNG imports inside ``src/repro/telemetry/`` — exporters
        must derive every timestamp from simulated cycles, so merely
        *importing* ``time``, ``datetime``, or ``random`` there is an
        error (stricter than DET001/DET002, which flag only calls).
DET007  time/RNG imports inside ``src/repro/policy/`` — scheduling
        decisions must be pure functions of simulated state (the
        result cache, the event engine's bit-identity proof, and the
        golden migration tests all assume it), so importing ``time``,
        ``datetime``, or ``random`` in a policy module is an error.

Suppress a deliberate use with a trailing ``# det: allow(reason)``
comment on the offending line.

Usage: ``python tools/lint_determinism.py PATH [PATH ...]``
Exits 1 if any finding survives suppression.

This script is a compatibility shim: the rules now live in the
``repro.lint`` framework (``repro.lint.determinism``), which also runs
them — alongside the contract passes — via ``repro-fqms lint``.  The
public surface here (``Finding``, ``lint_source``, ``lint_paths``,
``main``, the rule constants) is preserved verbatim and pinned by a
golden-corpus test against the pre-framework tool's output.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.core import Finding, SourceFile  # noqa: E402
from repro.lint.determinism import (  # noqa: E402,F401
    FLOAT_PRIORITY_ATTRS,
    GLOBAL_RANDOM_FUNCS,
    MUTABLE_DEFAULT_CALLS,
    ORDER_INSENSITIVE,
    POLICY_BANNED_MODULES,
    POLICY_PACKAGE,
    TELEMETRY_BANNED_MODULES,
    TELEMETRY_PACKAGE,
    WALL_CLOCK_CALLS,
    hazard_findings,
)


def lint_source(source: str, path: Path) -> List[Finding]:
    """Lint one file's source text; returns surviving findings."""
    file = SourceFile(path, source=source)
    if file.parse_error is not None:
        return [file.parse_error]
    return [f for f in hazard_findings(file) if not file.suppressed(f)]


def lint_paths(paths: List[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_source(file.read_text(), file))
    return findings


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    findings = lint_paths([Path(p) for p in argv])
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
