"""Telemetry overhead: tracing must be free when off, cheap when on.

Times the vpr+art pair under FQ-VFTF three ways:

* ``baseline`` — tracing explicitly off (``trace=False``), the shape
  every figure sweep and cached run takes;
* ``default`` — tracing resolved from the environment with
  ``REPRO_TRACE`` unset, i.e. the ``telemetry is None`` fast path that
  guards every hook site;
* ``traced`` — full lifecycle tracing + interval sampling attached.

The CI tripwire asserts the *default* path stays within
``DISABLED_SPEED_FLOOR`` of the explicit baseline: the observability
layer's disabled cost is a handful of ``is None`` checks per cycle,
so a miss here means a hook landed outside its guard.  The traced run
has no speed floor (it does real work) but must produce a
bit-identical ``SimResult`` and a Perfetto document that validates
clean — the overhead budget is meaningless if tracing perturbs the
run it observes.

Rates land in ``BENCH_telemetry.json`` at the repository root.
"""

import dataclasses
import json
import platform
from pathlib import Path
from time import perf_counter

from conftest import once

from repro import env
from repro.sim.runner import default_warmup, run_workload
from repro.sim.system import comparable_result
from repro.telemetry import TRACE_ENV_VAR
from repro.telemetry.driver import run_traced
from repro.telemetry.export import perfetto_trace, validate_trace
from repro.workloads.spec2000 import profile as lookup_profile

POLICY = "FQ-VFTF"
WORKLOAD = ("vpr", "art")
ROUNDS = 3

#: The env-resolved disabled path must stay within this fraction of the
#: explicit ``trace=False`` baseline.  Generous on purpose: a guard
#: regression costs integer multiples, runner noise costs a few
#: percent.
DISABLED_SPEED_FLOOR = 0.9

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def _rate(cycles: int, trace):
    """Best-of-N cyc/s for one tracing mode; returns (rate, last result)."""
    profiles = [lookup_profile(name) for name in WORKLOAD]
    warmup = default_warmup(cycles)
    simulated = cycles + warmup
    best = 0.0
    result = None
    for _ in range(ROUNDS):
        start = perf_counter()
        result = run_workload(
            profiles, POLICY, cycles=cycles, warmup=warmup, trace=trace
        )
        elapsed = perf_counter() - start
        best = max(best, simulated / elapsed)
    return best, result


def _measure_all(cycles: int):
    assert not env.raw(TRACE_ENV_VAR), (
        f"unset {TRACE_ENV_VAR} before benchmarking: the 'default' mode "
        "must measure the env-resolved disabled path"
    )
    rates = {}
    results = {}
    for mode, trace in (("baseline", False), ("default", None), ("traced", True)):
        rates[mode], results[mode] = _rate(cycles, trace)
    return rates, results


def test_telemetry_overhead(benchmark, cycles):
    rates, results = once(benchmark, lambda: _measure_all(cycles))
    print()
    for mode, rate in rates.items():
        relative = rate / rates["baseline"]
        print(f"  {mode:9s} {rate:12,.0f} cyc/s  ({relative:.2f}x baseline)")

    RESULT_PATH.write_text(
        json.dumps(
            {
                "measurement_cycles": cycles,
                "warmup_cycles": default_warmup(cycles),
                "rounds": ROUNDS,
                "python": platform.python_version(),
                "workload": "+".join(WORKLOAD),
                "policy": POLICY,
                "cycles_per_second": {
                    mode: round(rate, 1) for mode, rate in rates.items()
                },
                "traced_relative": round(rates["traced"] / rates["baseline"], 4),
            },
            indent=2,
        )
        + "\n"
    )

    # Tripwire 1: the disabled path is genuinely zero-cost (guards only).
    floor = DISABLED_SPEED_FLOOR * rates["baseline"]
    assert rates["default"] >= floor, (
        f"env-disabled tracing fell below {DISABLED_SPEED_FLOOR:.0%} of the "
        f"explicit trace=False baseline: {rates['default']:,.0f} vs "
        f"{rates['baseline']:,.0f} cyc/s — a telemetry hook is likely "
        "running outside its `telemetry is None` guard"
    )

    # Tripwire 2: tracing observes without perturbing.
    assert dataclasses.asdict(comparable_result(results["traced"])) == (
        dataclasses.asdict(comparable_result(results["baseline"]))
    ), "traced run diverged from the untraced baseline"

    # Tripwire 3: the enabled run yields a valid Perfetto document.
    run = run_traced(
        [lookup_profile(name) for name in WORKLOAD],
        POLICY,
        cycles=cycles,
        warmup=default_warmup(cycles),
        with_targets=False,
    )
    problems = validate_trace(perfetto_trace(run.telemetry))
    assert problems == [], "\n".join(problems)
