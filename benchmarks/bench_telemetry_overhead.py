"""Observability overhead: tracing and obs must be free when off.

Times the vpr+art pair under FQ-VFTF four ways:

* ``baseline`` — tracing explicitly off (``trace=False``), the shape
  every figure sweep and cached run takes;
* ``default`` — tracing resolved from the environment with
  ``REPRO_TRACE`` unset, i.e. the ``telemetry is None`` fast path that
  guards every hook site (and the ``obs``/``phases is None`` fast path
  of :mod:`repro.obs`, guarded the same way);
* ``traced`` — full lifecycle tracing + interval sampling attached;
* ``obs`` — the :mod:`repro.obs` metrics registry attached (no phase
  timing), the shape ``repro-fqms sweep --obs`` runs take.

The CI tripwire asserts the *default* path stays within
``DISABLED_SPEED_FLOOR`` of the explicit baseline: the observability
layers' disabled cost is a handful of ``is None`` checks per cycle,
so a miss here means a hook landed outside its guard.  The traced and
obs runs have no speed floor (they do real work) but must produce
bit-identical ``SimResult`` s — the overhead budget is meaningless if
observation perturbs the run it observes.

Rates land in ``BENCH_telemetry.json`` at the repository root, written
through the shared manifest envelope (:mod:`repro.obs.manifest`).
"""

import dataclasses
import os
from pathlib import Path
from time import perf_counter

from conftest import once

from repro import env
from repro.obs import OBS_ENV_VAR
from repro.obs.manifest import write_bench_record
from repro.sim.runner import default_warmup, run_workload
from repro.sim.system import comparable_result
from repro.telemetry import TRACE_ENV_VAR
from repro.telemetry.driver import run_traced
from repro.telemetry.export import perfetto_trace, validate_trace
from repro.workloads.spec2000 import profile as lookup_profile

POLICY = "FQ-VFTF"
WORKLOAD = ("vpr", "art")
ROUNDS = 3

#: The env-resolved disabled path must stay within this fraction of the
#: explicit ``trace=False`` baseline.  Tightened from 0.90 when the obs
#: guards joined the per-cycle path: the disabled cost of *both*
#: observability layers together is a handful of ``is None`` checks,
#: and holding the floor at 95% keeps "cheap guard creep" from hiding
#: inside runner noise.
DISABLED_SPEED_FLOOR = 0.95

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def _rate(cycles: int, trace, obs_env=None):
    """Best-of-N cyc/s for one observation mode; returns (rate, last result)."""
    profiles = [lookup_profile(name) for name in WORKLOAD]
    warmup = default_warmup(cycles)
    simulated = cycles + warmup
    best = 0.0
    result = None
    saved = os.environ.get(OBS_ENV_VAR)
    if obs_env is not None:
        os.environ[OBS_ENV_VAR] = obs_env
    try:
        for _ in range(ROUNDS):
            start = perf_counter()
            result = run_workload(
                profiles, POLICY, cycles=cycles, warmup=warmup, trace=trace
            )
            elapsed = perf_counter() - start
            best = max(best, simulated / elapsed)
    finally:
        if obs_env is not None:
            if saved is None:
                os.environ.pop(OBS_ENV_VAR, None)
            else:
                os.environ[OBS_ENV_VAR] = saved
    return best, result


def _measure_all(cycles: int):
    assert not env.raw(TRACE_ENV_VAR), (
        f"unset {TRACE_ENV_VAR} before benchmarking: the 'default' mode "
        "must measure the env-resolved disabled path"
    )
    assert not env.raw(OBS_ENV_VAR), (
        f"unset {OBS_ENV_VAR} before benchmarking: the 'default' mode "
        "must measure the env-resolved disabled path"
    )
    rates = {}
    results = {}
    for mode, trace in (("baseline", False), ("default", None), ("traced", True)):
        rates[mode], results[mode] = _rate(cycles, trace)
    rates["obs"], results["obs"] = _rate(cycles, False, obs_env="1")
    return rates, results


def test_telemetry_overhead(benchmark, cycles):
    rates, results = once(benchmark, lambda: _measure_all(cycles))
    print()
    for mode, rate in rates.items():
        relative = rate / rates["baseline"]
        print(f"  {mode:9s} {rate:12,.0f} cyc/s  ({relative:.2f}x baseline)")

    write_bench_record(
        RESULT_PATH,
        "telemetry_overhead",
        {
            "measurement_cycles": cycles,
            "warmup_cycles": default_warmup(cycles),
            "rounds": ROUNDS,
            "workload": "+".join(WORKLOAD),
            "policy": POLICY,
            "cycles_per_second": {
                mode: round(rate, 1) for mode, rate in rates.items()
            },
            "traced_relative": round(rates["traced"] / rates["baseline"], 4),
            "obs_relative": round(rates["obs"] / rates["baseline"], 4),
        },
        strict_gate=env.truthy("REPRO_BENCH_STRICT"),
    )

    # Tripwire 1: the disabled path is genuinely zero-cost (guards only).
    floor = DISABLED_SPEED_FLOOR * rates["baseline"]
    assert rates["default"] >= floor, (
        f"env-disabled observability fell below {DISABLED_SPEED_FLOOR:.0%} of "
        f"the explicit trace=False baseline: {rates['default']:,.0f} vs "
        f"{rates['baseline']:,.0f} cyc/s — a telemetry or obs hook is likely "
        "running outside its `is None` guard"
    )

    # Tripwire 2: tracing observes without perturbing.
    assert dataclasses.asdict(comparable_result(results["traced"])) == (
        dataclasses.asdict(comparable_result(results["baseline"]))
    ), "traced run diverged from the untraced baseline"

    # Tripwire 2b: the obs registry observes without perturbing.
    assert dataclasses.asdict(comparable_result(results["obs"])) == (
        dataclasses.asdict(comparable_result(results["baseline"]))
    ), "obs-instrumented run diverged from the uninstrumented baseline"

    # Tripwire 3: the enabled run yields a valid Perfetto document.
    run = run_traced(
        [lookup_profile(name) for name in WORKLOAD],
        POLICY,
        cycles=cycles,
        warmup=default_warmup(cycles),
        with_targets=False,
    )
    problems = validate_trace(perfetto_trace(run.telemetry))
    assert problems == [], "\n".join(problems)
