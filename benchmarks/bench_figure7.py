"""Figure 7: aggregate performance improvement and memory throughput.

Paper numbers: FQ-VFTF improves system performance by 31% on average
(up to 76%) over FR-FCFS; data-bus utilizations stay high for all
three schedulers (FR-FCFS best, FR-VFTF 94%, FQ-VFTF 92%); bank
utilization rises under the QoS schedulers.
"""

from conftest import once

from repro.experiments.figure7 import run_figure7


def test_figure7(benchmark, pair_outcomes):
    result = once(benchmark, lambda: run_figure7(outcomes=pair_outcomes))
    print()
    print(result.render())

    # System performance: FQ clearly positive on average, with a large
    # best case (paper: +31% average, +76% max).
    assert result.mean_improvement("FQ-VFTF") > 0.10
    assert result.max_improvement("FQ-VFTF") > 0.40

    # Throughput: the QoS schedulers keep data-bus utilization within a
    # few percent of the throughput-optimized FR-FCFS baseline.
    fr_bus = result.mean_bus_utilization("FR-FCFS")
    assert fr_bus > 0.8
    assert result.mean_bus_utilization("FQ-VFTF") > 0.93 * fr_bus
    assert result.mean_bus_utilization("FR-VFTF") > 0.93 * fr_bus

    # Bank utilization: offering QoS costs bank bandwidth, never less
    # than the baseline by much.
    assert result.mean_bank_utilization("FQ-VFTF") > 0.9 * result.mean_bank_utilization(
        "FR-FCFS"
    )
