"""Figure 9: normalized latency vs normalized target bus utilization.

Paper numbers: FR-FCFS normalized target-utilization spread — mean
.88, range [.28, 2.1], variance .20; FQ-VFTF — mean .88, range
[.73, .98], variance .0058 (the headline 34× variance reduction).
"""

from conftest import once

from repro.experiments.figure9 import run_figure9


def test_figure9(benchmark, quad_outcomes, cycles):
    result = once(
        benchmark, lambda: run_figure9(cycles=cycles, outcomes=quad_outcomes)
    )
    print()
    print(result.render())

    fr_var = result.utilization_variance("FR-FCFS")
    fq_var = result.utilization_variance("FQ-VFTF")

    # The headline: an order-of-magnitude variance reduction.
    assert fq_var < fr_var / 5

    # FR-FCFS shows a wild spread; FQ clusters near (slightly left of)
    # the ideal line at one.
    fr_lo, fr_hi = result.utilization_range("FR-FCFS")
    fq_lo, fq_hi = result.utilization_range("FQ-VFTF")
    assert fr_hi - fr_lo > 2 * (fq_hi - fq_lo)
    assert 0.7 <= result.mean_normalized_utilization("FQ-VFTF") <= 1.1
    assert fq_hi <= 1.3

    # Latency rises with delivered bandwidth under FQ (the paper's
    # closing observation supporting its fairness policy): the more
    # utilized half has higher mean normalized latency.
    points = sorted(
        result.for_policy("FQ-VFTF"), key=lambda p: p.normalized_utilization
    )
    half = len(points) // 2
    low = sum(p.normalized_latency for p in points[:half]) / half
    high = sum(p.normalized_latency for p in points[half:]) / (len(points) - half)
    assert high > low
