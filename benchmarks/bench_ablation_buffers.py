"""Ablation C: per-thread buffer partition sizing.

The paper statically partitions the transaction buffer (16 entries per
thread) and write buffer (8) and notes that more flexible partitioning
is future work.  The sweep varies the partition size under FQ-VFTF:
small partitions throttle the aggressive thread's lookahead (more
protection, less throughput); large ones approach an unpartitioned
buffer.
"""

from conftest import once

from repro.experiments.ablations import render_buffer_sweep, sweep_buffers
from repro.sim.runner import DEFAULT_CYCLES


def test_buffer_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_buffers(cycles=DEFAULT_CYCLES))
    print()
    print(render_buffer_sweep(rows))

    # QoS holds at the paper's 16-entry design point.
    paper_row = next(r for r in rows if r.read_entries == 16)
    assert paper_row.subject_norm_ipc > 0.9

    # Bus utilization grows with buffer depth (more scheduler lookahead)
    # and saturates.
    utils = [r.data_bus_utilization for r in rows]
    assert utils[0] < utils[-1] + 0.02
    assert utils[-1] > 0.8
