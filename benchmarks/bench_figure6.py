"""Figure 6: the background thread's (art's) normalized IPC.

Paper shape: against subjects that demand more than half the memory
system, the background's normalized IPC is close to one (bandwidth
split evenly); it rises steadily as subjects get less demanding and
art receives the excess service.
"""

from conftest import once

from repro.experiments.figure6 import run_figure6


def test_figure6(benchmark, pair_outcomes):
    result = once(benchmark, lambda: run_figure6(outcomes=pair_outcomes))
    print()
    print(result.render())

    series = result.series("FQ-VFTF")

    # Background always receives its share (normalized IPC near or
    # above one even against the heaviest subjects).
    assert min(series) > 0.8

    # Excess flows to the background as subjects weaken: the mean over
    # the five least-demanding subjects clearly exceeds the mean over
    # the five most-demanding ones.
    heavy = sum(series[:5]) / 5
    light = sum(series[-5:]) / 5
    assert light > 1.3 * heavy
