"""Policy-subsystem overhead: registry dispatch must stay free.

The ``repro.policy`` refactor routed every scheduling decision through
the :class:`~repro.policy.base.SchedulingPolicy` protocol.  For the
paper's stateless policies the bank scheduler keeps its pre-refactor
fast path (memoized keys, inlined first-ready loop), so the refactor
must not cost measurable throughput.  This benchmark measures:

* the paper policies (FR-FCFS, FQ-VFTF) on both engines — the numbers
  the 0.95x pre-refactor gate applies to;
* a no-op *hooked* FR-FCFS clone that deliberately takes the generic
  scheduling path (keys recomputed every pass, all four hooks
  dispatched) — the worst-case protocol overhead, tripwired relative
  to fast-path FR-FCFS within the same run, so the check is
  machine-independent;
* the stateful policies (BLISS, MISE), recorded for the trajectory.

Everything lands in ``BENCH_policies.json`` at the repository root.
The ``pre_refactor`` baselines were measured at the commit preceding
the refactor on the reference machine; since absolute rates do not
transfer across machines, the 0.95x gate against them is enforced only
when ``REPRO_BENCH_STRICT`` is set (the relative tripwire always is).
"""

from pathlib import Path
from time import perf_counter

from conftest import once

from repro import env
from repro.obs.manifest import write_bench_record
from repro.policy import SchedulingPolicy, register
from repro.policy.packing import SEQ_BITS, TIME_BITS, KeyField
from repro.sim.runner import default_warmup, run_workload
from repro.workloads.spec2000 import profile as lookup_profile

WORKLOAD = ("vpr", "art")
ENGINES = ("cycle", "event")
GATED_POLICIES = ("FR-FCFS", "FQ-VFTF")
RECORDED_POLICIES = ("BLISS", "MISE")
ROUNDS = 3

#: Post-refactor throughput must stay within this fraction of the
#: pre-refactor baseline (enforced under ``REPRO_BENCH_STRICT``).
PRE_REFACTOR_FLOOR = 0.95

#: The deliberately-pessimized hooked clone must stay within this
#: fraction of fast-path FR-FCFS in the same run.  The generic path
#: recomputes priority keys on every scheduling pass, so some cost is
#: expected; a protocol regression (hook dispatch on the controller
#: hot path, a broken fast-path guard) shows up far below this.
HOOKED_FLOOR = 0.5

#: Rates measured at the commit preceding the ``repro.policy``
#: refactor (reference machine, 30 000-cycle window + 25% warmup,
#: best across repeated best-of-3 runs — run-to-run noise on a shared
#: machine is ±10%, so singles are meaningless).  Regenerate only
#: alongside a deliberate perf change.
PRE_REFACTOR = {
    "FR-FCFS": {"cycle": 62576.7, "event": 96866.8},
    "FQ-VFTF": {"cycle": 59635.1, "event": 86467.7},
}

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_policies.json"


class _HookedFrFcfs(SchedulingPolicy):
    """FR-FCFS ordering through the most expensive protocol route."""

    name = "NOOP-HOOKED"
    memoize_keys = False  # force the generic recompute-keys path
    has_hooks = True      # force all four controller hook sites

    def request_key(self, request):
        return (request.arrival_time, request.seq)

    def key_field_specs(self):
        return (
            KeyField("arrival_time", TIME_BITS),
            KeyField("seq", SEQ_BITS),
        )

    def packed_key(self, request):
        # memoize_keys stays False, so this runs on every scheduling
        # pass — exactly the generic-path cost the tripwire measures,
        # now in its packed-key form.
        return (request.arrival_time << SEQ_BITS) | request.seq


register("NOOP-HOOKED", lambda ctx: _HookedFrFcfs())


def _measure(policy: str, engine: str, cycles: int) -> float:
    """Best-of-N simulated-cycles-per-second for one fresh run."""
    profiles = [lookup_profile(name) for name in WORKLOAD]
    warmup = default_warmup(cycles)
    simulated = cycles + warmup
    best = 0.0
    for _ in range(ROUNDS):
        start = perf_counter()
        run_workload(profiles, policy, cycles=cycles, warmup=warmup, engine=engine)
        best = max(best, simulated / (perf_counter() - start))
    return best


def _measure_all(cycles: int):
    rates = {}
    for policy in GATED_POLICIES + ("NOOP-HOOKED",) + RECORDED_POLICIES:
        rates[policy] = {
            engine: round(_measure(policy, engine, cycles), 1)
            for engine in ENGINES
        }
    return rates


def test_policy_dispatch_overhead(benchmark, cycles):
    rates = once(benchmark, lambda: _measure_all(cycles))
    print()
    for policy, engines in rates.items():
        for engine, rate in engines.items():
            print(f"  {policy:12s} {engine:6s} {rate:10,.0f} cyc/s")

    strict = env.truthy("REPRO_BENCH_STRICT")
    if strict:
        # Fail loudly — not with a KeyError deep in the gate loop —
        # when the gate is armed but the baseline block it compares
        # against is incomplete.  An armed gate with missing baselines
        # would otherwise "pass" by never comparing anything.
        missing = [
            f"{policy}/{engine}"
            for policy in GATED_POLICIES
            for engine in ENGINES
            if engine not in PRE_REFACTOR.get(policy, {})
        ]
        assert not missing, (
            "REPRO_BENCH_STRICT is set but the pre_refactor baseline "
            f"block lacks entries for: {', '.join(missing)}. Restore "
            "the baselines (or unset the env var) before trusting this "
            "run."
        )
    write_bench_record(
        RESULT_PATH,
        "policy_overhead",
        {
            "workload": "+".join(WORKLOAD),
            "measurement_cycles": cycles,
            "warmup_cycles": default_warmup(cycles),
            "rounds": ROUNDS,
            "cycles_per_second": rates,
            "pre_refactor": PRE_REFACTOR,
            "pre_refactor_floor": PRE_REFACTOR_FLOOR,
            "hooked_floor": HOOKED_FLOOR,
        },
        strict_gate=strict,
    )

    for policy, engines in rates.items():
        for engine, rate in engines.items():
            assert rate > 0, f"{policy}/{engine} reported non-positive rate"

    # Always-on, machine-independent tripwire: the pessimized clone vs
    # the fast path, measured seconds apart on the same machine.
    for engine in ENGINES:
        floor = HOOKED_FLOOR * rates["FR-FCFS"][engine]
        assert rates["NOOP-HOOKED"][engine] >= floor, (
            f"generic policy path under {engine} fell below "
            f"{HOOKED_FLOOR:.0%} of fast-path FR-FCFS: "
            f"{rates['NOOP-HOOKED'][engine]:,.0f} vs "
            f"{rates['FR-FCFS'][engine]:,.0f} cyc/s"
        )

    # Absolute gate against the pre-refactor baseline; rates only mean
    # something on the machine that recorded the baseline, so this
    # arms via REPRO_BENCH_STRICT.
    if strict:
        for policy in GATED_POLICIES:
            for engine in ENGINES:
                floor = PRE_REFACTOR_FLOOR * PRE_REFACTOR[policy][engine]
                assert rates[policy][engine] >= floor, (
                    f"{policy}/{engine} regressed past "
                    f"{PRE_REFACTOR_FLOOR:.0%} of pre-refactor: "
                    f"{rates[policy][engine]:,.0f} vs baseline "
                    f"{PRE_REFACTOR[policy][engine]:,.0f} cyc/s"
                )
