"""Ablation B: asymmetric service shares (OS/VMM allocation).

The paper evaluates only equal shares but designs the φ registers for
arbitrary allocations.  This sweep checks the QoS objective under
φ = ¼, ½, ¾ for the subject: its delivered bandwidth must grow with
its share, and its normalized IPC against the matching 1/φ-scaled
baseline must stay at or above the QoS line.
"""

from conftest import once

from repro.experiments.ablations import render_share_sweep, sweep_shares
from repro.sim.runner import DEFAULT_CYCLES


def test_share_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_shares(cycles=DEFAULT_CYCLES))
    print()
    print(render_share_sweep(rows))

    # QoS at every allocation.
    for row in rows:
        assert row.subject_norm_ipc > 0.9

    # Delivered bandwidth increases with the allocated share.
    utils = [r.subject_bus_utilization for r in rows]
    assert utils[0] < utils[1] < utils[2] * 1.05
    # And the background's share shrinks correspondingly.
    bg = [r.background_bus_utilization for r in rows]
    assert bg[0] > bg[-1]
