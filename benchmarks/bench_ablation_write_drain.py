"""Ablation F: write scheduling — FCFS vs watermark draining.

The paper schedules writebacks with the same FCFS/VFTF priority as
reads.  Real controllers often hold writes until the write buffer
passes a high watermark, then drain them in a burst, avoiding
read/write bus turnarounds (t_WTR) on the read critical path.  This
bench quantifies that trade under both the baseline and FQ schedulers
on a write-heavy pair (swim at 40% stores + art).
"""

from conftest import once

from repro.experiments.ablations import (
    render_write_drain_sweep,
    sweep_write_drain,
)
from repro.sim.runner import DEFAULT_CYCLES


def test_write_drain_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_write_drain(cycles=DEFAULT_CYCLES))
    print()
    print(render_write_drain_sweep(rows))

    def pick(policy, drain):
        return next(
            r for r in rows if r.policy == policy and r.write_drain == drain
        )

    for policy in ("FR-FCFS", "FQ-VFTF"):
        fcfs = pick(policy, "fcfs")
        watermark = pick(policy, "watermark")
        # Draining must not sacrifice throughput...
        assert watermark.data_bus_utilization > 0.93 * fcfs.data_bus_utilization
        # ...and should keep reads at or below the FCFS read latency.
        assert watermark.mean_read_latency < 1.05 * fcfs.mean_read_latency
