"""FairJobQueue throughput: scheduling must never be the bottleneck.

The experiment service tags and heap-orders every job through
:class:`repro.serve.queue.FairJobQueue`.  A real sweep dispatches at
most a few jobs per second (each one is a multi-thousand-cycle
simulation), so the queue has six orders of magnitude of headroom to
burn — but an accidental O(n²) (say, a linear scan sneaking into
``submit`` or ``pop``) would erode it quietly.  This benchmark
measures:

* ``submit_then_drain`` — one tenant, ``JOBS`` submissions followed by
  a full drain: the pure heap cost;
* ``interleaved`` — ``TENANTS`` tenants with distinct φ shares,
  submissions and pops interleaved with periodic ``charge`` calls: the
  service's actual access pattern;
* a paired run at 4× the job count whose per-job rate must stay within
  ``SCALING_FLOOR`` of the small run — the machine-independent
  tripwire that catches super-logarithmic growth.

Everything lands in ``BENCH_serve.json`` at the repository root.
"""

from pathlib import Path
from time import perf_counter

from conftest import once

from repro.obs.manifest import write_bench_record
from repro.serve.queue import FairJobQueue
from repro.sim.parallel import group_spec

JOBS = 20_000
TENANTS = 8
ROUNDS = 3

#: Per-job throughput at 4x the job count must stay within this
#: fraction of the small-run rate.  A heap is O(log n) per op, so the
#: honest expectation is ~1.0; a linear scan would land near 0.25.
SCALING_FLOOR = 0.6

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: One spec shared by every job — the queue never looks inside it, so
#: reusing one object keeps the benchmark measuring the queue alone.
SPEC = group_spec(("vpr", "art"), "FR-FCFS", 600, 150, 0)


def _submit_then_drain(jobs: int) -> float:
    """Jobs/second for a single-tenant submit burst plus full drain."""
    best = 0.0
    for _ in range(ROUNDS):
        queue = FairJobQueue()
        start = perf_counter()
        for _ in range(jobs):
            queue.submit("alice", SPEC, 750.0)
        while queue.pop() is not None:
            pass
        best = max(best, jobs / (perf_counter() - start))
    return best


def _interleaved(jobs: int) -> float:
    """Jobs/second under the service's real pattern: many tenants with
    distinct shares, submissions racing pops, finished jobs charged."""
    best = 0.0
    for _ in range(ROUNDS):
        queue = FairJobQueue()
        for i in range(TENANTS):
            queue.tenant(f"tenant-{i}", weight=float(i + 1))
        start = perf_counter()
        backlog = 0
        submitted = 0
        popped = 0
        while popped < jobs:
            # Keep a rolling backlog: submit two, pop one, like a
            # service whose submissions outpace its workers.
            while submitted < jobs and backlog < 64:
                queue.submit(
                    f"tenant-{submitted % TENANTS}", SPEC, 750.0
                )
                submitted += 1
                backlog += 1
            job = queue.pop()
            if job is None:
                break
            backlog -= 1
            popped += 1
            queue.charge(job, busy_s=0.001, turnaround_s=0.002)
        queue.fairness()
        best = max(best, popped / (perf_counter() - start))
    return best


def _measure_all():
    return {
        "submit_then_drain": round(_submit_then_drain(JOBS), 1),
        "interleaved": round(_interleaved(JOBS), 1),
        "submit_then_drain_4x": round(_submit_then_drain(4 * JOBS), 1),
    }


def test_fair_job_queue_throughput(benchmark):
    rates = once(benchmark, _measure_all)
    print()
    for scenario, rate in rates.items():
        print(f"  {scenario:22s} {rate:12,.0f} jobs/s")

    write_bench_record(
        RESULT_PATH,
        "serve_queue",
        {
            "jobs": JOBS,
            "tenants": TENANTS,
            "rounds": ROUNDS,
            "jobs_per_second": rates,
            "scaling_floor": SCALING_FLOOR,
        },
    )

    for scenario, rate in rates.items():
        assert rate > 0, f"{scenario} reported non-positive rate"

    # Machine-independent scaling tripwire: per-job cost at 4x the
    # queue depth must stay near the small-run cost.
    floor = SCALING_FLOOR * rates["submit_then_drain"]
    assert rates["submit_then_drain_4x"] >= floor, (
        f"queue throughput degraded super-logarithmically with depth: "
        f"{rates['submit_then_drain_4x']:,.0f} jobs/s at {4 * JOBS} "
        f"jobs vs {rates['submit_then_drain']:,.0f} at {JOBS}"
    )
