"""Many-core scaling: wake-index engine vs the linear-scan oracle.

The scan engine's event targeting is O(cores + channels) per event and
its ``step()`` broadcast-ticks every component, so per-event cost grows
linearly with the thread count — the loop the ROADMAP names as the
blocker for 16/64-thread scale-out.  The wake index replaces both loops
(sharded heap peek for targeting, due-only dispatch for stepping), so
its per-event cost should stay near-flat as cores are added.

This benchmark sweeps a synthetic CMP from 4 to 32 cores — a
moderate-intensity mix (crafty+parser+vpr+twolf) tiled outward, one
channel per four cores — and times the *same* event engine twice per
size: once through the wake index and once through the scan oracle
(``wake_index=False``, the ``REPRO_WAKE_INDEX=0`` path).  The mix
matters: art-style prefetch streams saturate every channel, so per-step
cost drowns in scheduler work both engines share; the irregular/ILP
four keep channels active but unsaturated, which is exactly the regime
where the engines' own per-component overhead — the quantity under
test — dominates.  Both runs produce bit-identical
results (the differential suites enforce it), so the per-step wall cost
is directly comparable.  Rates, per-step costs, and engine internals
land in ``BENCH_scale.json`` at the repository root.

Run length follows ``REPRO_SIM_CYCLES`` scaled down 4x (32-core runs
are heavy); CI smokes it shorter still.  The tripwire: at 16 cores the
indexed engine must beat the scan oracle outright, and under
``REPRO_BENCH_STRICT=1`` by at least ``STRICT_SPEEDUP_FLOOR``.
"""

from pathlib import Path
from time import perf_counter

from conftest import once

from repro import env
from repro.obs.manifest import write_bench_record
from repro.sim.config import SystemConfig
from repro.sim.runner import default_warmup
from repro.sim.system import CmpSystem
from repro.workloads.spec2000 import profile as lookup_profile

MIX = ("crafty", "parser", "vpr", "twolf")
CORE_COUNTS = (4, 8, 16, 32)
POLICY = "FQ-VFTF"
#: Cores per memory channel (each channel is one wake-index shard).
CORES_PER_CHANNEL = 4

#: At 16 cores the indexed engine must beat the scan oracle by this
#: factor before the strict (full-window) run is considered healthy.
STRICT_SPEEDUP_FLOOR = 1.5
TRIPWIRE_CORES = 16

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def _build(num_cores: int, wake_index: bool) -> CmpSystem:
    profiles = [
        lookup_profile(MIX[i % len(MIX)]) for i in range(num_cores)
    ]
    config = SystemConfig(
        policy=POLICY,
        num_cores=num_cores,
        num_channels=max(1, num_cores // CORES_PER_CHANNEL),
        engine="event",
    )
    return CmpSystem(config, profiles, wake_index=wake_index)


def _measure(num_cores: int, wake_index: bool, cycles: int):
    warmup = default_warmup(cycles)
    system = _build(num_cores, wake_index)
    start = perf_counter()
    result = system.run(cycles, warmup=warmup)
    elapsed = perf_counter() - start
    extras = result.extras
    steps = extras.get("engine_steps", 0.0) or 1.0
    row = {
        "cycles_per_second": round((cycles + warmup) / elapsed, 1),
        "us_per_step": round(1e6 * elapsed / steps, 3),
        "engine_steps": int(steps),
        "skip_ratio": round(extras.get("engine_skip_ratio", 0.0), 4),
        "target_calls_per_step": round(
            extras.get("engine_event_target_calls", 0.0) / steps, 4
        ),
    }
    if wake_index:
        publishes = extras.get("engine_wake_publishes", 0.0) or 1.0
        row["stale_pop_rate"] = round(
            extras.get("engine_stale_pops", 0.0) / publishes, 4
        )
        row["sparse_tick_fraction"] = round(
            extras.get("engine_sparse_tick_fraction", 0.0), 4
        )
    return row


def _measure_all(cycles: int):
    sweep = {}
    for num_cores in CORE_COUNTS:
        indexed = _measure(num_cores, True, cycles)
        scan = _measure(num_cores, False, cycles)
        sweep[str(num_cores)] = {
            "indexed": indexed,
            "scan": scan,
            "speedup": round(
                indexed["cycles_per_second"] / scan["cycles_per_second"], 3
            ),
        }
    return sweep


def test_engine_scaling(benchmark, cycles):
    # A 32-core run simulates 8x the work of the pair benchmarks at the
    # same window; a quarter window keeps the sweep tractable while the
    # per-step costs (the quantity under test) stay stable.
    window = max(2_000, cycles // 4)
    sweep = once(benchmark, lambda: _measure_all(window))
    print()
    for num_cores, row in sweep.items():
        idx, scan = row["indexed"], row["scan"]
        print(
            f"  {num_cores:>3s} cores  indexed {idx['us_per_step']:7.2f} us/step"
            f"  scan {scan['us_per_step']:7.2f} us/step"
            f"  speedup {row['speedup']:.2f}x"
            f"  sparse ticks {idx['sparse_tick_fraction']:.1%}"
        )

    write_bench_record(
        RESULT_PATH,
        "engine_scaling",
        {
            "measurement_cycles": window,
            "warmup_cycles": default_warmup(window),
            "policy": POLICY,
            "mix": list(MIX),
            "cores_per_channel": CORES_PER_CHANNEL,
            "sweep": sweep,
        },
        strict_gate=env.flag("REPRO_BENCH_STRICT"),
    )

    tripwire = sweep[str(TRIPWIRE_CORES)]
    assert tripwire["speedup"] > 1.0, (
        f"wake index slower than the scan oracle at {TRIPWIRE_CORES} "
        f"cores: {tripwire['speedup']:.2f}x"
    )
    if env.flag("REPRO_BENCH_STRICT"):
        assert tripwire["speedup"] >= STRICT_SPEEDUP_FLOOR, (
            f"wake index below the {STRICT_SPEEDUP_FLOOR:.1f}x floor at "
            f"{TRIPWIRE_CORES} cores: {tripwire['speedup']:.2f}x"
        )
