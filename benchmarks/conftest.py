"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's evaluation figures and
prints the corresponding rows/series.  Figures 5–7 share one set of
two-processor runs and Figures 8–9 one set of four-processor runs;
the session-scoped fixtures below make the sharing explicit, so
``pytest benchmarks/ --benchmark-only`` simulates each workload once.

Run length follows ``REPRO_SIM_CYCLES`` (default 60,000 cycles of
measurement per run, preceded by a 25% warmup).  Independent runs fan
out across ``REPRO_JOBS`` worker processes, and completed runs persist
in the on-disk result cache (``REPRO_CACHE_DIR``, disable with
``REPRO_NO_CACHE=1``), so a re-invocation at the same settings replays
from disk instead of re-simulating.
"""

import pytest

from repro.experiments.pairs import run_pairs
from repro.experiments.quads import run_quads
from repro.sim.parallel import default_jobs
from repro.sim.runner import DEFAULT_CYCLES


@pytest.fixture(scope="session")
def cycles():
    return DEFAULT_CYCLES


@pytest.fixture(scope="session")
def jobs():
    return default_jobs()


@pytest.fixture(scope="session")
def pair_outcomes(cycles, jobs):
    """The 19 subject+art co-runs under all three policies."""
    return run_pairs(cycles=cycles, jobs=jobs)


@pytest.fixture(scope="session")
def quad_outcomes(cycles, jobs):
    """The four 4-thread desktop workloads under FR-FCFS and FQ-VFTF."""
    return run_quads(cycles=cycles, jobs=jobs)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
