"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's evaluation figures and
prints the corresponding rows/series.  Figures 5–7 share one set of
two-processor runs and Figures 8–9 one set of four-processor runs;
the session-scoped fixtures below make the sharing explicit, so
``pytest benchmarks/ --benchmark-only`` simulates each workload once.

Run length follows ``REPRO_SIM_CYCLES`` (default 60,000 cycles of
measurement per run, preceded by a 25% warmup).
"""

import pytest

from repro.experiments.pairs import run_pairs
from repro.experiments.quads import run_quads
from repro.sim.runner import DEFAULT_CYCLES


@pytest.fixture(scope="session")
def cycles():
    return DEFAULT_CYCLES


@pytest.fixture(scope="session")
def pair_outcomes(cycles):
    """The 19 subject+art co-runs under all three policies."""
    return run_pairs(cycles=cycles)


@pytest.fixture(scope="session")
def quad_outcomes(cycles):
    """The four 4-thread desktop workloads under FR-FCFS and FQ-VFTF."""
    return run_quads(cycles=cycles)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
