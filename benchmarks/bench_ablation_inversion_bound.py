"""Ablation A: the FQ bank scheduler's priority-inversion bound x.

The paper fixes x = t_RAS (180 processor cycles) as "a tight bound on
priority inversion blocking time, which offers better QoS, but may
decrease data bus utilization."  The sweep exposes the trade-off:
small x protects the subject, large x recovers throughput, and x → ∞
degenerates to FR-VFTF (pure first-ready, vulnerable to chaining).
"""

from conftest import once

from repro.experiments.ablations import (
    render_inversion_sweep,
    sweep_inversion_bound,
)
from repro.sim.runner import DEFAULT_CYCLES


def test_inversion_bound_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_inversion_bound(cycles=DEFAULT_CYCLES))
    print()
    print(render_inversion_sweep(rows))

    by_bound = {r.bound: r for r in rows}

    # Every bounded configuration keeps the subject near or above the
    # QoS objective against the aggressive background.
    for row in rows:
        assert row.subject_norm_ipc > 0.85

    # Tight bounds sacrifice some bus utilization relative to the most
    # permissive configurations (the paper's stated trade-off).
    tight = by_bound[0].data_bus_utilization
    loose = max(r.data_bus_utilization for r in rows if r.bound != 0)
    assert tight <= loose + 0.02
