"""Figure 1: vpr alone / +crafty / +art under FR-FCFS.

Paper numbers: vpr's memory latency goes from ~150 cycles alone to
~1070 cycles with art, a ~60% IPC loss; crafty has no visible effect.
"""

from conftest import once

from repro.experiments.figure1 import run_figure1


def test_figure1(benchmark, cycles):
    result = once(benchmark, lambda: run_figure1(cycles=cycles))
    print()
    print(result.render())

    alone = result.row("vpr alone")
    with_crafty = result.row("vpr + crafty")
    with_art = result.row("vpr + art")

    # Shape: crafty leaves vpr untouched; art devastates it.
    assert abs(with_crafty.ipc - alone.ipc) / alone.ipc < 0.1
    assert with_art.read_latency > 3 * alone.read_latency
    assert with_art.ipc < 0.6 * alone.ipc
