"""Figure 4: solo data-bus utilization of the twenty benchmarks.

Paper shape: a spectrum from art (most aggressive) down to crafty
(~1%), with the top six subjects each demanding more than half the
memory bandwidth and the bottom three under 2%.
"""

from conftest import once

from repro.experiments.figure4 import run_figure4


def test_figure4(benchmark, cycles):
    result = once(benchmark, lambda: run_figure4(cycles=cycles))
    print()
    print(result.render())

    utils = result.utilizations()
    ordered = [r.bus_utilization for r in result.rows]

    # art leads; vpr sits near the paper's 14%; the excluded tail is
    # under 2%; and the top benchmarks demand more than half the bus.
    assert utils["art"] >= 0.95 * max(ordered)
    assert 0.08 <= utils["vpr"] <= 0.22
    for name in ("sixtrack", "perlbmk", "crafty"):
        assert utils[name] < 0.03
    for row in result.rows[:6]:
        assert row.bus_utilization > 0.5
    # Broadly decreasing spectrum (each at most slightly above its
    # predecessor, allowing sampling noise).
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier * 1.25 + 0.02
