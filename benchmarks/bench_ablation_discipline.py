"""Ablation E: virtual finish-time vs virtual start-time priority.

Paper §2.3 notes fair-queuing schedulers may prioritize packets by
earliest virtual start-time (VirtualClock-style) or earliest virtual
finish-time (WFQ-style, the memory scheduler's choice, equivalent to
earliest-deadline-first over VTMS deadlines).  Both share the same
VTMS accounting; this bench confirms both isolate the subject and that
the finish-time discipline is at least as protective.
"""

from conftest import once

from repro.experiments.ablations import render_discipline_sweep, sweep_discipline
from repro.sim.runner import DEFAULT_CYCLES


def test_discipline_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_discipline(cycles=DEFAULT_CYCLES))
    print()
    print(render_discipline_sweep(rows))

    vftf = next(r for r in rows if r.policy == "FQ-VFTF")
    vstf = next(r for r in rows if r.policy == "FQ-VSTF")

    # Both disciplines provide QoS against the aggressive background.
    assert vftf.subject_norm_ipc > 0.9
    assert vstf.subject_norm_ipc > 0.8

    # Both keep the memory system efficient.
    assert vftf.data_bus_utilization > 0.7
    assert vstf.data_bus_utilization > 0.7

    # The paper's choice is at least competitive on the QoS metric.
    assert vftf.subject_norm_ipc >= vstf.subject_norm_ipc - 0.1
