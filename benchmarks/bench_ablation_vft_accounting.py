"""Ablation D: deferred vs arrival-time virtual-finish-time computation.

Paper §3.2 describes two ways to resolve the unknown-bank-service
problem: (1) assume an average service at arrival, or (2) defer the
computation until the request is considered for scheduling.  The paper
evaluates (2) because (1) "is likely to penalize threads that have
lower average bank service requirements, e.g., threads with a large
number of open row buffer hits."  This bench runs both against each
other on a row-hit-heavy (swim) + irregular (ammp) pair.
"""

from conftest import once

from repro.experiments.ablations import (
    render_accounting_sweep,
    sweep_vft_accounting,
)
from repro.sim.runner import DEFAULT_CYCLES


def test_vft_accounting_sweep(benchmark):
    rows = once(benchmark, lambda: sweep_vft_accounting(cycles=DEFAULT_CYCLES))
    print()
    print(render_accounting_sweep(rows))

    deferred = next(r for r in rows if r.policy == "FQ-VFTF")
    arrival = next(r for r in rows if r.policy == "FQ-VFTF-ARR")

    # Both remain functional QoS schedulers.
    assert deferred.hit_heavy_norm_ipc > 0.5
    assert arrival.hit_heavy_norm_ipc > 0.3

    # The paper's prediction: arrival-time accounting over-charges the
    # row-hit-heavy thread relative to deferred accounting.  Compare
    # the hit-heavy thread's share of the pair's normalized throughput.
    def hit_share(row):
        return row.hit_heavy_norm_ipc / (
            row.hit_heavy_norm_ipc + row.random_norm_ipc
        )

    assert hit_share(deferred) >= hit_share(arrival) - 0.02
