"""Figure 5: subject QoS under FR-FCFS / FR-VFTF / FQ-VFTF.

Paper numbers: harmonic-mean normalized IPC .62 / .87 / 1.10; FQ-VFTF
meets the QoS objective on 18 of 19 subjects (vpr at .94 is the near
miss); subject read latency averages ~930 cycles under FR-FCFS against
a 180-cycle unloaded latency.
"""

from conftest import once

from repro.experiments.figure5 import run_figure5


def test_figure5(benchmark, pair_outcomes):
    result = once(benchmark, lambda: run_figure5(outcomes=pair_outcomes))
    print()
    print(result.render())

    fr = result.harmonic_mean_norm_ipc("FR-FCFS")
    vftf = result.harmonic_mean_norm_ipc("FR-VFTF")
    fq = result.harmonic_mean_norm_ipc("FQ-VFTF")

    # Ordering and magnitudes: FR-FCFS clearly below the QoS line, the
    # VFTF schedulers clearly above it, FQ at least as good as FR-VFTF.
    assert fr < 0.95
    assert fq > 1.0
    assert fq >= 0.97 * vftf

    # QoS counts: FQ meets the objective for nearly all subjects and
    # for far more than FR-FCFS; the worst FQ subject is a near miss.
    assert result.qos_met_count("FQ-VFTF") >= 16
    assert result.qos_met_count("FQ-VFTF") > result.qos_met_count("FR-FCFS") + 6
    worst_fq = min(r.norm_ipc for r in result.for_policy("FQ-VFTF"))
    assert worst_fq > 0.85

    # Latency: FR-FCFS subjects suffer several times the unloaded
    # latency; FQ restores most of it.
    assert result.mean_read_latency("FR-FCFS") > 3 * 180
    assert result.mean_read_latency("FQ-VFTF") < 0.7 * result.mean_read_latency(
        "FR-FCFS"
    )
