"""Extension: multi-channel scaling (the paper's stated future work).

The paper evaluates a single memory channel and leaves multi-channel
systems to future work.  This bench scales the channel count under
both FR-FCFS and FQ-VFTF for an aggressive pair and checks that (a)
aggregate throughput scales with channels and (b) the FQ scheduler's
QoS protection survives the extension (per-channel VTMS state).
"""

from conftest import once

from repro.sim.config import SystemConfig
from repro.sim.runner import DEFAULT_CYCLES, default_warmup, run_solo
from repro.sim.system import CmpSystem
from repro.stats.report import render_table
from repro.workloads.spec2000 import profile


def run_sweep(cycles):
    subject, background = profile("vpr"), profile("art")
    base = run_solo(subject, scale=2.0, cycles=cycles).threads[0].ipc
    rows = []
    for channels in (1, 2, 4):
        for policy in ("FR-FCFS", "FQ-VFTF"):
            config = SystemConfig(
                num_cores=2, policy=policy, num_channels=channels
            )
            system = CmpSystem(config, [subject, background])
            result = system.run(cycles, warmup=default_warmup(cycles))
            total_cas = sum(d.channel.cas_count for d in system.drams)
            rows.append(
                {
                    "channels": channels,
                    "policy": policy,
                    "subject_norm_ipc": result.threads[0].ipc / base,
                    "subject_latency": result.threads[0].mean_read_latency,
                    "total_cas": total_cas,
                    "agg_util": result.data_bus_utilization,
                }
            )
    return rows


def test_multichannel_scaling(benchmark):
    rows = once(benchmark, lambda: run_sweep(DEFAULT_CYCLES))
    print()
    print(
        render_table(
            ["channels", "policy", "vpr norm IPC", "vpr latency", "CAS", "util"],
            [
                (r["channels"], r["policy"], r["subject_norm_ipc"],
                 r["subject_latency"], r["total_cas"], r["agg_util"])
                for r in rows
            ],
        )
    )

    def pick(channels, policy):
        return next(
            r for r in rows if r["channels"] == channels and r["policy"] == policy
        )

    # Throughput scales with channel count for the bandwidth-bound pair.
    assert pick(2, "FR-FCFS")["total_cas"] > 1.3 * pick(1, "FR-FCFS")["total_cas"]

    # QoS extends to multi-channel: FQ keeps the subject at/above the
    # single-channel QoS baseline at every channel count, and beats
    # FR-FCFS wherever contention bites.
    for channels in (1, 2):
        fq = pick(channels, "FQ-VFTF")
        fr = pick(channels, "FR-FCFS")
        assert fq["subject_norm_ipc"] > 0.9
        assert fq["subject_latency"] <= fr["subject_latency"] * 1.05

    # More channels relieve vpr's latency even under FR-FCFS.
    assert (
        pick(4, "FR-FCFS")["subject_latency"]
        < pick(1, "FR-FCFS")["subject_latency"]
    )
