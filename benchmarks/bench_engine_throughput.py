"""Engine throughput: simulated cycles per wall-clock second.

Times the raw cycle loop (no result cache, no fan-out) on the paper's
flagship interference pair — vpr co-scheduled with art — under the
first-ready baseline and the fair-queuing scheduler.  The measured
rates land in ``BENCH_engine.json`` at the repository root so the
performance trajectory is tracked across changes.

Run length follows ``REPRO_SIM_CYCLES`` like every other benchmark, so
CI can smoke-test with a short run while local measurements use the
full default window.
"""

import json
import platform
from pathlib import Path
from time import perf_counter

from conftest import once

from repro.sim.runner import default_warmup, run_workload
from repro.workloads.spec2000 import profile as lookup_profile

POLICIES = ("FR-FCFS", "FQ-VFTF")
ROUNDS = 3

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _cycles_per_second(policy: str, cycles: int) -> float:
    """Best-of-N throughput of one fresh vpr+art simulation."""
    profiles = [lookup_profile("vpr"), lookup_profile("art")]
    warmup = default_warmup(cycles)
    simulated = cycles + warmup
    best = 0.0
    for _ in range(ROUNDS):
        start = perf_counter()
        run_workload(profiles, policy, cycles=cycles, warmup=warmup)
        elapsed = perf_counter() - start
        best = max(best, simulated / elapsed)
    return best


def test_engine_throughput(benchmark, cycles):
    rates = once(
        benchmark,
        lambda: {p: _cycles_per_second(p, cycles) for p in POLICIES},
    )
    print()
    for policy, rate in rates.items():
        print(f"  {policy:12s} {rate:10,.0f} simulated cycles/sec")

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "vpr+art",
                "measurement_cycles": cycles,
                "warmup_cycles": default_warmup(cycles),
                "rounds": ROUNDS,
                "python": platform.python_version(),
                "cycles_per_second": {p: round(r, 1) for p, r in rates.items()},
            },
            indent=2,
        )
        + "\n"
    )

    # Sanity floor only: absolute rates vary wildly across machines.
    for policy, rate in rates.items():
        assert rate > 0, f"{policy} reported non-positive throughput"
