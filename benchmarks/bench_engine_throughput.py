"""Engine throughput: simulated cycles per wall-clock second.

Times both simulation engines (the event-driven skip-to-next-event
loop and the per-cycle oracle) on two workloads — the paper's flagship
interference pair, vpr co-scheduled with art, and a four-processor mix
(art+vpr+parser+crafty) — under the first-ready baseline and the
fair-queuing scheduler.  No result cache, no fan-out.  The measured
rates and the event engine's skip ratios land in ``BENCH_engine.json``
at the repository root — written through the shared manifest envelope
(:mod:`repro.obs.manifest`), so ``repro-fqms perf`` can diff snapshots
— and the performance trajectory is tracked across changes.

Run length follows ``REPRO_SIM_CYCLES`` like every other benchmark, so
CI can smoke-test with a short run while local measurements use the
full default window.  CI's smoke-perf job additionally asserts the
tripwire below: the event engine must not fall behind the per-cycle
oracle on the pair workload.
"""

from pathlib import Path
from time import perf_counter

from conftest import once

from repro import env
from repro.obs.manifest import write_bench_record
from repro.sim.runner import default_warmup, run_workload
from repro.workloads.spec2000 import profile as lookup_profile

POLICIES = ("FR-FCFS", "FQ-VFTF")
ENGINES = ("cycle", "event")
WORKLOADS = {
    "vpr+art": ("vpr", "art"),
    "art+vpr+parser+crafty": ("art", "vpr", "parser", "crafty"),
}
ROUNDS = 3

#: The event engine must stay at least this fraction of the per-cycle
#: oracle's throughput on the pair workload.  Deliberately generous —
#: an engine regression shows up as a large multiple, not a few
#: percent — so machine noise never trips it.
EVENT_SPEED_FLOOR = 0.8

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _measure(workload, policy: str, engine: str, cycles: int):
    """Best-of-N throughput of one fresh simulation; returns one row."""
    profiles = [lookup_profile(name) for name in workload]
    warmup = default_warmup(cycles)
    simulated = cycles + warmup
    best = 0.0
    extras = {}
    for _ in range(ROUNDS):
        start = perf_counter()
        result = run_workload(
            profiles, policy, cycles=cycles, warmup=warmup, engine=engine
        )
        elapsed = perf_counter() - start
        best = max(best, simulated / elapsed)
        extras = result.extras
    row = {
        "cycles_per_second": round(best, 1),
        "skip_ratio": round(extras.get("engine_skip_ratio", 0.0), 4),
    }
    steps = extras.get("engine_steps", 0.0)
    if steps:
        # Wake-index internals (PR 8): how often targeting runs per
        # stepped cycle, how much heap garbage the epoch invalidation
        # leaves behind, and what fraction of component ticks the
        # sparse dispatch actually performs vs the broadcast oracle.
        row["target_calls_per_step"] = round(
            extras.get("engine_event_target_calls", 0.0) / steps, 4
        )
        publishes = extras.get("engine_wake_publishes", 0.0)
        if publishes:
            row["stale_pop_rate"] = round(
                extras.get("engine_stale_pops", 0.0) / publishes, 4
            )
        if "engine_sparse_tick_fraction" in extras:
            row["sparse_tick_fraction"] = round(
                extras["engine_sparse_tick_fraction"], 4
            )
    return row


def _measure_all(cycles: int):
    rows = {}
    for tag, workload in WORKLOADS.items():
        rows[tag] = {}
        for policy in POLICIES:
            rows[tag][policy] = {}
            for engine in ENGINES:
                rows[tag][policy][engine] = _measure(
                    workload, policy, engine, cycles
                )
    return rows


def test_engine_throughput(benchmark, cycles):
    rows = once(benchmark, lambda: _measure_all(cycles))
    print()
    for tag, policies in rows.items():
        for policy, engines in policies.items():
            for engine, row in engines.items():
                print(
                    f"  {tag:22s} {policy:8s} {engine:6s}"
                    f" {row['cycles_per_second']:10,.0f} cyc/s"
                    f"  skip {row['skip_ratio']:.1%}"
                )

    write_bench_record(
        RESULT_PATH,
        "engine_throughput",
        {
            "measurement_cycles": cycles,
            "warmup_cycles": default_warmup(cycles),
            "rounds": ROUNDS,
            "workloads": rows,
            # Back-compat summary: the pair workload's event-engine
            # rates under the original schema's key.
            "workload": "vpr+art",
            "cycles_per_second": {
                p: rows["vpr+art"][p]["event"]["cycles_per_second"]
                for p in POLICIES
            },
        },
        strict_gate=env.truthy("REPRO_BENCH_STRICT"),
    )

    for tag, policies in rows.items():
        for policy, engines in policies.items():
            for engine, row in engines.items():
                assert row["cycles_per_second"] > 0, (
                    f"{tag}/{policy}/{engine} reported non-positive throughput"
                )

    # CI tripwire: skipping must help (or at the very least not hurt)
    # on the pair workload.
    for policy in POLICIES:
        pair = rows["vpr+art"][policy]
        floor = EVENT_SPEED_FLOOR * pair["cycle"]["cycles_per_second"]
        assert pair["event"]["cycles_per_second"] >= floor, (
            f"event engine slower than {EVENT_SPEED_FLOOR:.0%} of the "
            f"per-cycle oracle under {policy}: "
            f"{pair['event']['cycles_per_second']:,.0f} vs "
            f"{pair['cycle']['cycles_per_second']:,.0f} cyc/s"
        )
