"""Figure 8: four-processor desktop workloads.

Paper shape: under FR-FCFS the most aggressive thread of workload 1
(art) receives the most service while the meek threads fall below the
QoS objective; under FQ-VFTF every thread's normalized IPC is at or
above one and bus shares are near-uniform.  Paper per-workload deltas:
+41%, −2%, −2%, +14% (+14% average).
"""

from conftest import once

from repro.experiments.figure8 import run_figure8


def test_figure8(benchmark, quad_outcomes):
    result = once(benchmark, lambda: run_figure8(outcomes=quad_outcomes))
    print()
    print(result.render())

    assert result.workloads[0] == ("art", "lucas", "apsi", "ammp")

    # FR-FCFS drops some thread far below the QoS objective; FQ lifts
    # the worst thread dramatically.
    assert result.min_norm_ipc("FR-FCFS") < 0.6
    assert result.min_norm_ipc("FQ-VFTF") > 2 * result.min_norm_ipc("FR-FCFS")

    # Aggregate performance: FQ never loses on any workload by more
    # than the paper's ±2% error margin, and wins on average.
    for index in range(4):
        delta = result.workload_improvement(index)["FQ-VFTF"]
        assert delta > -0.05
    assert result.mean_improvement("FQ-VFTF") > 0.05

    # Bandwidth distribution: within each workload, the spread of bus
    # shares narrows under FQ.
    for index in range(4):
        fr = [t.bus_utilization for t in result.for_workload(index, "FR-FCFS")]
        fq = [t.bus_utilization for t in result.for_workload(index, "FQ-VFTF")]
        assert max(fq) - min(fq) <= (max(fr) - min(fr)) * 1.05
