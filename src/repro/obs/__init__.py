"""Engine observability: metrics registry, manifests, fleet streaming.

``repro.obs`` watches the *simulator itself* the way ``repro.telemetry``
watches the simulated requests: wake-index churn, legality-kernel
traffic, policy-key memo effectiveness, event-loop phase times, and
``run_many`` fleet state.  Like the checker and telemetry layers it is
a pure observer — attaching it never changes a single result bit (the
differential tests in ``tests/obs/`` pin obs-on against obs-off across
both engines and every headline policy) — and its disabled cost is a
handful of ``x is None`` guards.

Layout:

* :mod:`repro.obs.registry` — the metrics registry plus the
  ``__slots__`` counter structs hot loops bump behind guards.
* :mod:`repro.obs.phases` — the event-loop phase timer; the single
  module in the tree allowed to read the wall clock (DET008).
* :mod:`repro.obs.engine` — harvests engine counters into canonical
  dotted metric names and owns the legacy ``engine_*`` extras block.
* :mod:`repro.obs.manifest` — the schema-validated run/bench/profile
  manifest records and the one shared writer.
* :mod:`repro.obs.fleet` — worker heartbeats over a multiprocessing
  queue and the live terminal fleet dashboard.
* :mod:`repro.obs.perfcli` / :mod:`repro.obs.sweepcli` — the
  ``repro-fqms perf`` and ``repro-fqms sweep`` subcommands.

Knobs (all semantics-free, all declared in :mod:`repro.env`):
``REPRO_OBS=1`` attaches the registry to every freshly simulated run;
``REPRO_OBS_PHASES=1`` additionally arms the phase timer;
``REPRO_OBS_MANIFEST=DIR`` makes runner/parallel write one manifest
per executed run into ``DIR``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .. import env
from .registry import KernelCounters, KeyCacheCounters, MetricsRegistry
from .phases import ENGINE_PHASES, PhaseTimer

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..controller.bank_scheduler import BankScheduler
    from ..sim.system import CmpSystem

OBS_ENV_VAR = "REPRO_OBS"
OBS_PHASES_ENV_VAR = "REPRO_OBS_PHASES"
OBS_MANIFEST_ENV_VAR = "REPRO_OBS_MANIFEST"


def obs_enabled() -> bool:
    """``REPRO_OBS`` as a flag (same convention as REPRO_CHECK/TRACE).

    Read at system construction so the parallel engine's worker
    processes inherit the choice through the environment.
    """
    return env.flag(OBS_ENV_VAR)


def phases_enabled() -> bool:
    """``REPRO_OBS_PHASES``: arm the wall-clock phase timer too."""
    return env.flag(OBS_PHASES_ENV_VAR)


def manifest_dir() -> Optional[str]:
    """``REPRO_OBS_MANIFEST``: directory for per-run manifests, or None."""
    value = env.raw(OBS_MANIFEST_ENV_VAR)
    return value if value else None


class RunObs:
    """One run's observability state: registry + hot counter structs.

    Mirrors :class:`repro.telemetry.RunTelemetry`'s attach pattern: the
    system constructs one instance and fans references out to every
    instrumented component; components bump plain attributes; the
    system calls :meth:`finalize` once after the run to harvest
    everything into :attr:`registry`.
    """

    def __init__(self, phase_timing: bool = False):
        self.registry = MetricsRegistry()
        self.legality = KernelCounters()
        self.keys = KeyCacheCounters()
        self.phases: Optional[PhaseTimer] = (
            PhaseTimer() if phase_timing else None
        )
        self._finalized = False

    # -- attachment --------------------------------------------------------

    def attach(self, system: "CmpSystem") -> None:
        """Wire this instance into ``system``'s hot components.

        Kernel counters go on every channel's legality kernel; key
        counters on every bank scheduler.  Memoizing schedulers get a
        counting ``_request_key``; non-memoizing ones get a counting
        ``_key_of`` (their keys are rebuilt every pass, so the split is
        ``uncached`` rather than hit/miss).  All rebinding happens here,
        at attach time — a run without obs keeps the original bound
        methods and pays nothing.
        """
        for dram in system.drams:
            dram.kernel.counters = self.legality
        for controller in system.controllers:
            for scheduler in controller.bank_schedulers:
                self._attach_scheduler(scheduler)

    def _attach_scheduler(self, scheduler: "BankScheduler") -> None:
        counters = self.keys
        scheduler.obs_keys = counters
        inner = scheduler._key_of
        if scheduler.policy.memoize_keys:
            def counting_request_key(request, _inner=inner, _c=counters):
                key = request.key_cache
                if key is None:
                    key = _inner(request)
                    request.key_cache = key
                    _c.misses += 1
                else:
                    _c.hits += 1
                return key

            scheduler._request_key = counting_request_key  # type: ignore[method-assign]
        else:
            def counting_key_of(request, _inner=inner, _c=counters):
                _c.uncached += 1
                return _inner(request)

            # Non-memoizing construction aliased _request_key to the raw
            # key function; keep the alias pointing at the counter.
            scheduler._key_of = counting_key_of  # type: ignore[method-assign]
            scheduler._request_key = counting_key_of  # type: ignore[method-assign]

    # -- finalize ----------------------------------------------------------

    def finalize(self, system: "CmpSystem") -> None:
        """Harvest engine/component counters into the registry (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        from . import engine as obs_engine

        obs_engine.harvest(system, self)

    def metrics(self):
        """Convenience: the registry's numeric metrics table."""
        return self.registry.metrics()


__all__ = [
    "ENGINE_PHASES",
    "KernelCounters",
    "KeyCacheCounters",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "OBS_MANIFEST_ENV_VAR",
    "OBS_PHASES_ENV_VAR",
    "PhaseTimer",
    "RunObs",
    "manifest_dir",
    "obs_enabled",
    "phases_enabled",
]
