"""Fleet progress streaming for ``run_many`` worker pools.

Workers heartbeat (run id, state, simulated-cycle progress) over a
``multiprocessing.Manager`` queue to a live terminal dashboard in the
parent — the ``repro-fqms sweep --progress`` view.

The one hard constraint is bit-identity: progress reporting must not
perturb the simulation.  Chunking ``run_cycles`` to emit between
chunks would change ``engine_event_target_calls`` in the result
extras, forking cached results — so instead each worker runs the
simulation exactly as before and a daemon *thread* samples
``system.now`` (a single int attribute read, safe under the GIL) every
:data:`HEARTBEAT_INTERVAL_S` seconds and posts it to the queue.  The
simulation thread never blocks on, or branches for, the heartbeat.

Queue plumbing: ``run_many`` passes the Manager queue's picklable
proxy to each pool worker through the pool initializer
(:func:`init_worker`); ``execute_spec`` picks it up from the module
global.  The parent drains events with :class:`FleetMonitor` between
``wait()`` timeouts.  A worker that dies mid-run simply stops
heartbeating; :meth:`FleetState.finish` converts every still-running
entry to the terminal ``lost`` state so truncated streams are visible
rather than eternally "running".
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from .registry import MetricsRegistry  # noqa: F401  (re-export convenience)
from ..stats.report import sparkline

#: Seconds between worker heartbeat samples.
HEARTBEAT_INTERVAL_S = 0.2

#: States a run can report; ``lost`` is synthesized by the monitor and
#: ``retried`` marks a crash-orphaned run awaiting resubmission (the
#: retry loop in :mod:`repro.sim.parallel` and the serve scheduler).
RUN_STATES = ("queued", "running", "retried", "done", "cached", "error", "lost")

#: States that end a run's stream.
TERMINAL_STATES = ("done", "cached", "error", "lost")

# Queue handed to pool workers via the initializer (see init_worker).
_worker_queue: Optional[Any] = None


def init_worker(queue: Any) -> None:
    """Pool initializer: stash the heartbeat queue proxy for this worker."""
    global _worker_queue
    _worker_queue = queue


def worker_queue() -> Optional[Any]:
    """The heartbeat queue for this process, or None (heartbeats off)."""
    return _worker_queue


def heartbeat_event(
    run_id: str, state: str, cycle: int = 0, total: int = 0
) -> Dict[str, Any]:
    """One picklable heartbeat record (the only shape on the queue)."""
    return {"run": run_id, "state": state, "cycle": int(cycle), "total": int(total)}


def post(queue: Any, event: Dict[str, Any]) -> None:
    """Best-effort put: a dead manager must not take the simulation down."""
    try:
        queue.put_nowait(event)
    except Exception:
        pass


class WorkerHeartbeat:
    """Samples a running system's clock from a daemon thread.

    ``start`` launches the sampler; ``finish`` stops it and posts the
    terminal event.  Reading ``system.now`` from another thread is safe
    (single int attribute, GIL-atomic) and free for the simulation —
    the engine neither checks a flag nor takes a lock.
    """

    __slots__ = ("_queue", "_run_id", "_total", "_system", "_stop", "_thread")

    def __init__(self, queue: Any, run_id: str, total_cycles: int):
        self._queue = queue
        self._run_id = run_id
        self._total = int(total_cycles)
        self._system: Any = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self, system: Any) -> None:
        self._system = system
        post(self._queue, heartbeat_event(self._run_id, "running", 0, self._total))
        thread = threading.Thread(target=self._sample, daemon=True)
        self._thread = thread
        thread.start()

    def _sample(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL_S):
            post(
                self._queue,
                heartbeat_event(
                    self._run_id, "running", self._system.now, self._total
                ),
            )

    def finish(self, state: str = "done") -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        cycle = self._system.now if self._system is not None else 0
        post(self._queue, heartbeat_event(self._run_id, state, cycle, self._total))


class RunProgress:
    """Dashboard state for one run: latest sample plus cycle history."""

    __slots__ = ("run_id", "state", "cycle", "total", "history", "retries")

    def __init__(self, run_id: str):
        self.run_id = run_id
        self.state = "queued"
        self.cycle = 0
        self.total = 0
        self.history: List[float] = []
        #: Crash resubmissions observed for this run (``retried`` events).
        self.retries = 0

    @property
    def fraction(self) -> float:
        return self.cycle / self.total if self.total else 0.0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class FleetState:
    """Aggregates heartbeat events into a renderable fleet picture."""

    def __init__(self) -> None:
        self.runs: Dict[str, RunProgress] = {}

    def expect(self, run_id: str) -> RunProgress:
        """Pre-register a run so the dashboard shows it as queued."""
        progress = self.runs.get(run_id)
        if progress is None:
            progress = RunProgress(run_id)
            self.runs[run_id] = progress
        return progress

    def observe(self, event: Dict[str, Any]) -> None:
        """Fold one heartbeat into the picture (malformed events ignored)."""
        if not isinstance(event, dict):
            return
        run_id = event.get("run")
        state = event.get("state")
        if not isinstance(run_id, str) or state not in RUN_STATES:
            return
        progress = self.expect(run_id)
        if progress.terminal:
            return  # late heartbeat from an already-finished run
        if state == "retried":
            progress.retries += 1
        progress.state = state
        cycle = event.get("cycle")
        total = event.get("total")
        if isinstance(cycle, int) and cycle >= 0:
            progress.cycle = cycle
            progress.history.append(float(cycle))
        if isinstance(total, int) and total > 0:
            progress.total = total

    def finish(self) -> List[str]:
        """Close the stream: non-terminal runs become ``lost``.

        Returns the ids marked lost — a nonempty list means a worker
        crashed (or the queue died) mid-run.
        """
        lost = []
        for progress in self.runs.values():
            if not progress.terminal:
                progress.state = "lost"
                lost.append(progress.run_id)
        return lost

    @property
    def done_count(self) -> int:
        return sum(1 for p in self.runs.values() if p.terminal)

    def render(self, width: int = 16) -> str:
        """The dashboard block: one sparkline-annotated line per run."""
        lines = [
            f"fleet: {self.done_count}/{len(self.runs)} runs finished"
        ]
        label_width = max((len(r) for r in self.runs), default=0)
        for run_id in sorted(self.runs):
            progress = self.runs[run_id]
            spark = sparkline(
                progress.history, lo=0.0, hi=float(progress.total or 1), width=width
            ).ljust(width)
            pct = f"{progress.fraction * 100.0:5.1f}%"
            lines.append(
                f"  {run_id.ljust(label_width)}  [{spark}] {pct}  {progress.state}"
            )
        return "\n".join(lines)


class FleetMonitor:
    """Parent-side pump: drains the heartbeat queue, updates the state.

    ``run_many`` calls :meth:`pump` between scheduling waits and
    :meth:`close` once the pool is done; the sweep CLI passes a
    ``render`` callback to repaint the dashboard on change.
    """

    def __init__(self, queue: Any, state: Optional[FleetState] = None):
        self.queue = queue
        self.state = state if state is not None else FleetState()
        self._on_update: Optional[Any] = None

    def on_update(self, callback: Any) -> None:
        self._on_update = callback

    def pump(self) -> int:
        """Drain every queued event; returns how many were folded in."""
        drained = 0
        while True:
            try:
                event = self.queue.get_nowait()
            except Exception:
                break
            self.state.observe(event)
            drained += 1
        if drained and self._on_update is not None:
            self._on_update(self.state)
        return drained

    def close(self) -> List[str]:
        """Final drain + lost-run sweep; returns the lost run ids."""
        self.pump()
        lost = self.state.finish()
        if self._on_update is not None:
            self._on_update(self.state)
        return lost
