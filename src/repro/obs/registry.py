"""The metrics registry: named counters, gauges, and timers.

The registry is the *cold* half of the observability layer: a flat
``dotted.name -> float`` table plus a parallel string-label table,
filled in at finalize time and serialized into run manifests.  The
*hot* half is a handful of ``__slots__`` counter structs
(:class:`KernelCounters`, :class:`KeyCacheCounters`) that hot loops
bump through plain attribute adds behind ``x is None`` guards — the
same shape as the checker/telemetry hooks — and that
:meth:`~repro.obs.RunObs.finalize` harvests into the registry once per
run.  Nothing on a hot path ever touches a dict lookup or a string.

Metric names are dotted paths (``engine.steps``,
``wakeindex.stale_pops``, ``phase.targeting_s``); the manifest schema
flattens nested structures to the same convention, so
``repro-fqms perf`` compares every source of numbers through one key
space.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class MetricsRegistry:
    """Flat table of named counters/gauges (floats) and labels (strings)."""

    __slots__ = ("_metrics", "_labels")

    def __init__(self) -> None:
        self._metrics: Dict[str, float] = {}
        self._labels: Dict[str, str] = {}

    # -- writers -----------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        self._metrics[name] = self._metrics.get(name, 0.0) + float(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` (last write wins)."""
        self._metrics[name] = float(value)

    def timer(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the timer ``name``.

        Timers are counters in seconds; the ``_s`` suffix convention
        marks them in manifests.
        """
        self.count(name, seconds)

    def label(self, name: str, value: str) -> None:
        """Attach a string-valued annotation (backend names, modes)."""
        self._labels[name] = str(value)

    # -- readers -----------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Name-sorted copy of every numeric metric."""
        return {name: self._metrics[name] for name in sorted(self._metrics)}

    def labels(self) -> Dict[str, str]:
        """Name-sorted copy of every string label."""
        return {name: self._labels[name] for name in sorted(self._labels)}

    def get(self, name: str, default: float = 0.0) -> float:
        return self._metrics.get(name, default)

    def items(self) -> Iterable[Tuple[str, float]]:
        return self.metrics().items()

    def __len__(self) -> int:
        return len(self._metrics)


class KernelCounters:
    """Hot counters for one legality kernel (attached when obs is on).

    ``queries`` counts scalar ``earliest_issue`` calls,
    ``batch_queries`` the batched ``horizon`` reductions, ``rebuilds``
    lazy numpy combined-array rebuilds, and ``syncs`` full mirror
    rebuilds (``sync_all``).  All are bumped behind
    ``counters is not None`` guards, so a disabled run pays one
    attribute test per query and nothing else.
    """

    __slots__ = ("queries", "batch_queries", "rebuilds", "syncs")

    def __init__(self) -> None:
        self.queries = 0
        self.batch_queries = 0
        self.rebuilds = 0
        self.syncs = 0


class KeyCacheCounters:
    """Hot counters for the per-request policy-key memo.

    ``hits``/``misses`` track the ``request.key_cache`` memo on the
    memoizing scheduler paths; ``uncached`` counts key builds by
    policies that opted out of the memo (``memoize_keys=False`` —
    BLISS, MISE), where hit/miss is not a meaningful split.
    """

    __slots__ = ("hits", "misses", "uncached")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.uncached = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
