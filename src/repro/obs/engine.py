"""Engine-internals harvesting: extras keys and canonical metrics.

Two jobs, both about keeping the engine's free-running counters in one
place instead of scattered across ``CmpSystem._result`` and ad-hoc
bench scripts:

* :func:`engine_extras` builds the back-compat ``SimResult.extras``
  block (``engine_*`` keys) exactly as PR 8 shipped it — these keys
  are part of the cached-result payload, so their names and values are
  frozen here and stripped by ``comparable_result`` via the shared
  :data:`ENGINE_EXTRA_PREFIX`.
* :func:`harvest` translates the same counters — plus the obs-only
  ones (legality kernel, policy-key memo, phase timer) — into the
  canonical dotted registry names that manifests and ``repro-fqms
  perf`` speak.  :data:`EXTRA_ALIASES` records the mapping from
  canonical name to legacy extras key so the two vocabularies can
  never silently drift.

``engine_extras`` is computed from engine counters alone and is
identical whether obs is attached or not — the obs-on/off bit-identity
differentials depend on that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..sim.system import CmpSystem
    from . import RunObs

#: Extras keys carrying execution (not simulation) facts; stripped by
#: ``comparable_result`` so results compare across engines.
ENGINE_EXTRA_PREFIX = "engine_"

#: Canonical registry name → legacy ``SimResult.extras`` key, for every
#: engine counter that predates the registry.  ``perf`` uses this to
#: line historical cache entries up against manifest metrics.
EXTRA_ALIASES = {
    "engine.steps": "engine_steps",
    "engine.cycles_skipped": "engine_cycles_skipped",
    "engine.skip_ratio": "engine_skip_ratio",
    "engine.event_target_calls": "engine_event_target_calls",
    "engine.wake_index": "engine_wake_index",
    "wakeindex.stale_pops": "engine_stale_pops",
    "wakeindex.publishes": "engine_wake_publishes",
    "engine.component_ticks": "engine_component_ticks",
    "engine.sparse_tick_fraction": "engine_sparse_tick_fraction",
}


def engine_extras(system: "CmpSystem") -> Dict[str, float]:
    """The ``engine_*`` extras block for one finished run.

    Byte-for-byte the block ``CmpSystem._result`` used to assemble
    inline: empty for per-cycle runs (no steps, no skips), engine
    counters for event runs, wake-index internals only when the sharded
    index drove the run.
    """
    extras: Dict[str, float] = {}
    total = system.engine_steps + system.engine_cycles_skipped
    if total:
        extras["engine_steps"] = float(system.engine_steps)
        extras["engine_cycles_skipped"] = float(system.engine_cycles_skipped)
        extras["engine_skip_ratio"] = system.engine_cycles_skipped / total
        extras["engine_event_target_calls"] = float(
            system.engine_event_target_calls
        )
        windex = system._windex
        if windex is not None:
            # Wake-index internals: stale-entry collection rate and the
            # fraction of component-ticks the sparse stepper actually
            # executed (1.0 would be the broadcast engine).
            extras["engine_wake_index"] = 1.0
            extras["engine_stale_pops"] = float(windex.stale_pops)
            extras["engine_wake_publishes"] = float(windex.publishes)
            extras["engine_component_ticks"] = float(
                system.engine_component_ticks
            )
            possible = system.engine_steps * system._num_slots
            extras["engine_sparse_tick_fraction"] = (
                system.engine_component_ticks / possible if possible else 0.0
            )
    return extras


def harvest(system: "CmpSystem", obs: "RunObs") -> None:
    """Fold a finished system's counters into ``obs.registry``.

    Canonical names only; the legacy extras block stays the province of
    :func:`engine_extras`.  Safe to call once per run, at finalize.
    """
    registry = obs.registry
    registry.gauge("engine.steps", system.engine_steps)
    registry.gauge("engine.cycles_skipped", system.engine_cycles_skipped)
    total = system.engine_steps + system.engine_cycles_skipped
    registry.gauge(
        "engine.skip_ratio",
        system.engine_cycles_skipped / total if total else 0.0,
    )
    registry.gauge("engine.event_target_calls", system.engine_event_target_calls)
    registry.gauge("engine.component_ticks", system.engine_component_ticks)
    windex = system._windex
    registry.gauge("engine.wake_index", 1.0 if windex is not None else 0.0)
    if windex is not None:
        registry.gauge("wakeindex.stale_pops", windex.stale_pops)
        registry.gauge("wakeindex.publishes", windex.publishes)
        possible = system.engine_steps * system._num_slots
        registry.gauge(
            "engine.sparse_tick_fraction",
            system.engine_component_ticks / possible if possible else 0.0,
        )
    kernel = obs.legality
    registry.gauge("legality.queries", kernel.queries)
    registry.gauge("legality.batch_queries", kernel.batch_queries)
    registry.gauge("legality.rebuilds", kernel.rebuilds)
    registry.gauge("legality.syncs", kernel.syncs)
    registry.label("legality.backend", system.dram.kernel.backend)
    keys = obs.keys
    registry.gauge("policy_keys.hits", keys.hits)
    registry.gauge("policy_keys.misses", keys.misses)
    registry.gauge("policy_keys.uncached", keys.uncached)
    registry.gauge("policy_keys.hit_ratio", keys.hit_ratio)
    if obs.phases is not None:
        obs.phases.end()
        for phase, seconds in obs.phases.totals().items():
            registry.timer(f"phase.{phase}_s", seconds)
        registry.timer("phase.total_s", obs.phases.total_seconds())
