"""Event-loop phase timing: the one wall-clock module in the tree.

The engine's phase breakdown (targeting / delivery / scheduling /
dispatch) needs real elapsed time, which is exactly what the
determinism contract bans everywhere else: DET002 flags wall-clock
*calls* in simulation logic and DET008 bans ``time`` imports anywhere
under ``src/repro/obs/``.  This module is the single registered
exception — the import below carries the one reasoned suppression —
and it keeps the hazard contained by construction:

* Timings are **write-only** with respect to the simulation: nothing
  in ``repro.sim`` ever reads a :class:`PhaseTimer`; totals flow only
  into manifests and reports after the run ends.  Results stay
  bit-identical with phase timing on or off (the differential tests in
  ``tests/obs/`` pin this).
* The engine calls :meth:`PhaseTimer.begin`/:meth:`PhaseTimer.end`
  through ``phases is not None`` guards, so a run without
  ``REPRO_OBS_PHASES`` never reaches this module at all.
"""

from __future__ import annotations

from time import perf_counter  # lint: allow(DET008, the registered harness wall-clock: phase timings are write-only observability outputs, never simulation inputs)

from typing import Dict, Optional

#: Canonical engine phases, in the order the loop visits them.
ENGINE_PHASES = ("targeting", "delivery", "scheduling", "dispatch")


class PhaseTimer:
    """Accumulates wall seconds per named engine phase.

    ``begin(name)`` closes the currently open phase (crediting its
    elapsed time) and opens ``name``; ``end()`` closes without opening
    another.  One ``perf_counter`` read per transition, no allocation.
    """

    __slots__ = ("_totals", "_current", "_started")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._current: Optional[str] = None
        self._started = 0.0

    def begin(self, phase: str) -> None:
        stamp = perf_counter()
        current = self._current
        if current is not None:
            totals = self._totals
            totals[current] = totals.get(current, 0.0) + (stamp - self._started)
        self._current = phase
        self._started = stamp

    def end(self) -> None:
        current = self._current
        if current is not None:
            stamp = perf_counter()
            totals = self._totals
            totals[current] = totals.get(current, 0.0) + (stamp - self._started)
            self._current = None

    def totals(self) -> Dict[str, float]:
        """Name-sorted seconds per phase (open phase excluded until end)."""
        return {name: self._totals[name] for name in sorted(self._totals)}

    def total_seconds(self) -> float:
        return sum(self._totals.values())


def wall_clock() -> float:
    """Monotonic wall-clock seconds for harness-side rate reporting.

    The sanctioned accessor for observability code (fleet dashboards,
    bench writers) that needs elapsed time without importing ``time``
    itself and re-litigating the DET008 suppression.
    """
    return perf_counter()
