"""Schema-validated run/bench/profile manifests: one writer for all.

A *manifest* is the queryable record of one unit of measured work — a
simulation run, a benchmark invocation, or a profiling session.  Every
producer (the runner, ``run_many`` workers, the bench scripts,
``tools/profile_run.py``) writes through :func:`write_manifest`, so
every record shares one envelope::

    {
      "schema": "repro.obs/1",
      "kind": "run" | "bench" | "profile",
      "host": {"python": ..., "platform": ...},
      "env": {<declared REPRO_* knobs currently set>},
      "metrics": {"dotted.name": <number>, ...},
      "labels": {"dotted.name": "<string>", ...},
      ...kind-specific fields...
    }

``metrics`` is the flat numeric namespace ``repro-fqms perf`` compares
across snapshots; :func:`flatten` folds any nested JSON payload into it
(so migrated BENCH_*.json files keep their legacy ``data`` block
verbatim *and* expose every numeric leaf under dotted paths).

Deliberately absent: wall-clock timestamps.  A manifest describes a
deterministic computation; stamping write time would make re-emitting
the same run produce a different document.  Provenance beyond the host
stamp belongs to the filesystem and VCS.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import env

#: Manifest envelope schema identifier; bump on shape changes.
MANIFEST_SCHEMA = "repro.obs/1"

#: Accepted manifest kinds.
MANIFEST_KINDS = ("run", "bench", "profile")


def host_stamp() -> Dict[str, str]:
    """The interpreter/platform stamp shared by every manifest."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def flatten(
    payload: Any, prefix: str = "", out: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Numeric leaves of ``payload`` as a flat ``dotted.path -> float`` map.

    Dict keys and list indexes become path components; booleans and
    strings are skipped (they are labels, not metrics).  The map is the
    comparison namespace of ``repro-fqms perf``.
    """
    if out is None:
        out = {}
    if isinstance(payload, bool):
        return out
    if isinstance(payload, (int, float)):
        if prefix:
            out[prefix] = float(payload)
        return out
    if isinstance(payload, dict):
        for key in sorted(payload):
            sub = f"{prefix}.{key}" if prefix else str(key)
            flatten(payload[key], sub, out)
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            sub = f"{prefix}.{i}" if prefix else str(i)
            flatten(item, sub, out)
    return out


def new_manifest(
    kind: str,
    metrics: Optional[Dict[str, float]] = None,
    labels: Optional[Dict[str, str]] = None,
    **fields: Any,
) -> Dict[str, Any]:
    """A fresh envelope of ``kind`` with the shared header filled in."""
    payload: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "host": host_stamp(),
        "env": env.snapshot(),
        "metrics": dict(metrics or {}),
        "labels": dict(labels or {}),
    }
    payload.update(fields)
    return payload


# -- validation ------------------------------------------------------------


def _check_str_map(value: Any, where: str, problems: List[str]) -> None:
    if not isinstance(value, dict):
        problems.append(f"{where} must be an object")
        return
    for key, item in value.items():
        if not isinstance(key, str) or not isinstance(item, str):
            problems.append(f"{where}[{key!r}] must map string to string")
            return


def validate_manifest(payload: Any) -> List[str]:
    """Structural problems with ``payload`` (empty list = valid).

    Checks the envelope and the kind-specific required fields; the one
    gate every writer and loader shares, so corruption surfaces as a
    named problem instead of a downstream KeyError.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["manifest must be a JSON object"]
    if payload.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema must be {MANIFEST_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    kind = payload.get("kind")
    if kind not in MANIFEST_KINDS:
        problems.append(
            f"kind must be one of {MANIFEST_KINDS}, got {kind!r}"
        )
    host = payload.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("python"), str):
        problems.append("host must be an object with a 'python' string")
    _check_str_map(payload.get("env"), "env", problems)
    _check_str_map(payload.get("labels"), "labels", problems)
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for name, value in metrics.items():
            if (
                not isinstance(name, str)
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                problems.append(
                    f"metrics[{name!r}] must map string to number"
                )
                break
    if kind == "run":
        if not isinstance(payload.get("fingerprint"), str):
            problems.append("run manifest needs a 'fingerprint' string")
        if not isinstance(payload.get("policy"), str):
            problems.append("run manifest needs a 'policy' string")
        workload = payload.get("workload")
        if not isinstance(workload, list) or not all(
            isinstance(name, str) for name in workload
        ):
            problems.append("run manifest needs a 'workload' string list")
        window = payload.get("window")
        if not isinstance(window, dict) or not all(
            isinstance(window.get(k), int) for k in ("cycles", "warmup", "seed")
        ):
            problems.append(
                "run manifest needs a 'window' object with integer "
                "cycles/warmup/seed"
            )
        result = payload.get("result")
        if not isinstance(result, dict) or not isinstance(
            result.get("digest"), str
        ):
            problems.append(
                "run manifest needs a 'result' object with a 'digest' string"
            )
    elif kind == "bench":
        if not isinstance(payload.get("bench"), str):
            problems.append("bench manifest needs a 'bench' string")
        if not isinstance(payload.get("data"), dict):
            problems.append("bench manifest needs a 'data' object")
        if not isinstance(payload.get("strict_gate"), (bool, type(None))):
            problems.append("bench 'strict_gate' must be boolean or null")
    elif kind == "profile":
        if not isinstance(payload.get("command"), str):
            problems.append("profile manifest needs a 'command' string")
    return problems


class ManifestError(ValueError):
    """An invalid manifest reached a writer or loader."""


def write_manifest(path: Union[str, os.PathLike], payload: Dict[str, Any]) -> Path:
    """Validate and atomically write ``payload``; returns the final path.

    The single choke point every producer goes through: an invalid
    document can never land on disk, and concurrent writers (pool
    workers) can never leave a torn file behind.
    """
    problems = validate_manifest(payload)
    if problems:
        raise ManifestError("; ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:16]}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_manifest(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read and validate one manifest; raises :class:`ManifestError`."""
    with open(path) as handle:
        payload = json.load(handle)
    problems = validate_manifest(payload)
    if problems:
        raise ManifestError(f"{path}: " + "; ".join(problems))
    return payload


def load_metrics(path: Union[str, os.PathLike]) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """(payload, flat metrics) for a manifest *or* a legacy BENCH file.

    Pre-migration ``BENCH_*.json`` files carry no ``schema`` key; their
    numeric leaves are flattened directly so ``repro-fqms perf`` can
    compare historical snapshots against migrated ones.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "schema" in payload:
        problems = validate_manifest(payload)
        if problems:
            raise ManifestError(f"{path}: " + "; ".join(problems))
        return payload, dict(payload["metrics"])
    return payload, flatten(payload)


# -- run manifests ---------------------------------------------------------


def result_digest(result: Any) -> str:
    """Content hash of a :class:`~repro.sim.system.SimResult`.

    Built on the cache's canonical JSON form, so two bit-identical
    results always digest identically (and an engine or obs toggle
    that changed anything shows up as a digest change).
    """
    from ..sim.cache import result_to_json  # lazy: avoids import cycle

    blob = json.dumps(result_to_json(result), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_manifest(
    *,
    fingerprint: str,
    policy: str,
    workload: Sequence[str],
    cycles: int,
    warmup: int,
    seed: int,
    result: Any,
    source: str = "fresh",
    obs: Optional[Any] = None,
    attempts: int = 0,
    tenant: Optional[str] = None,
    spec_payload: Optional[Dict[str, Any]] = None,
    embed_result: bool = False,
) -> Dict[str, Any]:
    """The manifest payload for one finished simulation run.

    ``source`` labels how the result was obtained (``fresh``, ``memo``,
    ``disk``, ``cache``, ``store``); ``obs`` (a :class:`~repro.obs.RunObs`)
    contributes the engine-internals metrics when the run carried one.

    The serve-store extensions are all optional and additive:
    ``attempts`` counts crash resubmissions the run survived (surfacing
    ``retried`` jobs in the durable record), ``tenant`` labels the
    submitting tenant, ``spec_payload`` preserves the declarative
    :class:`~repro.sim.parallel.RunSpec` fields, and ``embed_result``
    inlines the full cache-canonical result JSON so the document alone
    can reconstitute a ``SimResult`` (what makes the result store
    *queryable* rather than digest-only).
    """
    metrics: Dict[str, float] = {}
    labels: Dict[str, str] = {"run.source": str(source)}
    if tenant is not None:
        labels["run.tenant"] = str(tenant)
    if obs is not None:
        metrics.update(obs.registry.metrics())
        labels.update(obs.registry.labels())
    metrics["run.attempts"] = float(attempts)
    metrics["result.cycles"] = float(result.cycles)
    for i, thread in enumerate(result.threads):
        metrics[f"thread.{i}.ipc"] = thread.ipc
        metrics[f"thread.{i}.mean_read_latency"] = thread.mean_read_latency
    for key, value in result.extras.items():
        metrics[f"extras.{key}"] = float(value)
    from ..sim.cache import active_cache  # lazy: avoids import cycle

    disk = active_cache()
    if disk is not None:
        metrics["result_cache.hits"] = float(disk.hits)
        metrics["result_cache.misses"] = float(disk.misses)
        metrics["result_cache.stores"] = float(disk.stores)
    result_field: Dict[str, Any] = {"digest": result_digest(result)}
    if embed_result:
        from ..sim.cache import result_to_json  # lazy: avoids import cycle

        result_field["payload"] = result_to_json(result)
    fields: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "policy": policy,
        "workload": list(workload),
        "window": {"cycles": int(cycles), "warmup": int(warmup), "seed": int(seed)},
        "result": result_field,
    }
    if spec_payload is not None:
        fields["spec"] = dict(spec_payload)
    return new_manifest("run", metrics=metrics, labels=labels, **fields)


def emit_run_manifest(
    directory: Union[str, os.PathLike],
    **kwargs: Any,
) -> Path:
    """Write one run manifest into ``directory`` (fingerprint-named).

    Filenames are content-derived, so re-running the same spec
    overwrites its own record instead of accumulating duplicates.
    """
    payload = run_manifest(**kwargs)
    name = f"run-{payload['fingerprint'][:16]}.json"
    return write_manifest(Path(directory) / name, payload)


# -- bench records ---------------------------------------------------------


def bench_record(
    name: str,
    data: Dict[str, Any],
    strict_gate: Optional[bool] = None,
) -> Dict[str, Any]:
    """A bench-kind manifest wrapping a script's measurement payload.

    ``data`` is preserved verbatim (the shape each script historically
    wrote) and every numeric leaf is additionally exposed under
    ``metrics`` for ``repro-fqms perf``.
    """
    return new_manifest(
        "bench",
        metrics=flatten(data),
        bench=name,
        data=dict(data),
        strict_gate=strict_gate,
    )


def write_bench_record(
    path: Union[str, os.PathLike],
    name: str,
    data: Dict[str, Any],
    strict_gate: Optional[bool] = None,
) -> Path:
    """The shared BENCH_*.json writer used by every benchmark script."""
    return write_manifest(path, bench_record(name, data, strict_gate=strict_gate))
