"""``repro-fqms sweep``: batch runs with live fleet progress.

Builds one co-scheduled run per (workload mix, policy), executes the
batch through :func:`repro.sim.parallel.run_many` (dedup + both cache
layers + process pool), and prints a per-run summary table.  With
``--progress`` the parent renders a live dashboard — one
sparkline-annotated line per run, fed by the worker heartbeats in
:mod:`repro.obs.fleet` — repainting in place on a TTY and printing a
single final snapshot otherwise.

With ``--manifest-dir`` every run (fresh or cache-served) leaves a
schema-validated run manifest behind: fresh runs write theirs from the
worker (with engine metrics when ``REPRO_OBS`` is set); cache-served
results are backfilled here with ``run.source = cache``.  Manifest
filenames are fingerprint-derived, so the directory converges instead
of accumulating.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Optional, Sequence

from ..policy import canonical, registered_names
from ..stats.report import render_table
from . import OBS_ENV_VAR, OBS_MANIFEST_ENV_VAR
from .fleet import FleetMonitor, FleetState


def _parse_mixes(values: Sequence[str]) -> List[List[str]]:
    mixes = []
    for value in values:
        names = [n.strip() for n in value.split(",") if n.strip()]
        if not names:
            raise SystemExit("sweep: --workload must name at least one benchmark")
        mixes.append(names)
    return mixes


def _make_queue(jobs: int):
    """(queue, jobs): a Manager queue, degrading to in-process on failure.

    Restricted sandboxes (no semaphores) cannot start a Manager; those
    environments also cannot run a process pool, so the degraded path
    pairs a plain in-process queue with ``jobs=1``.
    """
    try:
        from multiprocessing import Manager

        manager = Manager()
        return manager, manager.Queue(), jobs
    except (OSError, PermissionError, NotImplementedError):
        import queue

        return None, queue.Queue(), 1


class _Dashboard:
    """Repaints the fleet block in place on a TTY; else stays quiet."""

    def __init__(self, stream: Any):
        self._stream = stream
        self._tty = bool(getattr(stream, "isatty", lambda: False)())
        self._lines = 0

    def __call__(self, state: FleetState) -> None:
        if not self._tty:
            return
        block = state.render()
        if self._lines:
            # Cursor up over the previous block, clear to end of screen.
            self._stream.write(f"\x1b[{self._lines}F\x1b[J")
        self._stream.write(block + "\n")
        self._stream.flush()
        self._lines = block.count("\n") + 1

    def final(self, state: FleetState) -> None:
        if self._tty:
            self(state)
        else:
            self._stream.write(state.render() + "\n")
            self._stream.flush()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms sweep",
        description=(
            "Run a (workload mix x policy) batch through the parallel "
            "runner, with optional live fleet progress and per-run "
            "manifests."
        ),
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="A,B,...",
        help="comma-separated benchmark mix; repeat for several mixes "
        "(default vpr,art)",
    )
    parser.add_argument(
        "--policies",
        default=None,
        help="comma-separated policies (default: every registered policy; "
        f"registered: {', '.join(registered_names())})",
    )
    parser.add_argument("--cycles", type=int, default=20000, help="measurement window per run (default %(default)s)")
    parser.add_argument("--warmup", type=int, default=None, help="warmup cycles (default cycles//4)")
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream worker heartbeats to a live fleet dashboard",
    )
    parser.add_argument(
        "--manifest-dir",
        metavar="DIR",
        default=None,
        help="write one schema-validated run manifest per run into DIR "
        "(equivalent to REPRO_OBS_MANIFEST=DIR)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="attach the engine-internals metrics registry to every "
        "freshly simulated run; equivalent to REPRO_OBS=1",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this invocation",
    )
    return parser


def main(argv: Sequence[str]) -> int:
    args = build_parser().parse_args(list(argv))
    if args.jobs is not None and args.jobs <= 0:
        print("sweep: --jobs must be positive")
        return 2
    from ..sim import parallel
    from ..sim.cache import configure_cache

    mixes = _parse_mixes(args.workload or ["vpr,art"])
    try:
        if args.policies is None:
            policies = list(registered_names())
        else:
            policies = [
                canonical(p.strip())
                for p in args.policies.split(",")
                if p.strip()
            ]
    except ValueError as exc:
        print(f"sweep: {exc}")
        return 2
    if args.obs:
        # Via the environment so pool workers inherit it (same plumbing
        # as --check/--trace in the main CLI).
        os.environ[OBS_ENV_VAR] = "1"
    if args.manifest_dir:
        os.environ[OBS_MANIFEST_ENV_VAR] = args.manifest_dir
    configure_cache(enabled=not args.no_cache)

    warmup = args.cycles // 4 if args.warmup is None else args.warmup
    specs = [
        parallel.group_spec(mix, policy, args.cycles, warmup, args.seed)
        for mix in mixes
        for policy in policies
    ]

    jobs = parallel.resolve_jobs(args.jobs)
    monitor = None
    manager = None
    dashboard = None
    if args.progress:
        manager, queue, jobs = _make_queue(jobs)
        monitor = FleetMonitor(queue)
        dashboard = _Dashboard(sys.stdout)
        monitor.on_update(dashboard)
        for spec in specs:
            monitor.state.expect(parallel.run_label(spec))

    try:
        results = parallel.run_many(specs, jobs=jobs, monitor=monitor)
    finally:
        lost: List[str] = []
        if monitor is not None:
            lost = monitor.close()
            if dashboard is not None:
                dashboard.final(monitor.state)
        if manager is not None:
            manager.shutdown()
    for run_id in lost:
        print(f"sweep: run {run_id} was lost (worker died mid-run)")
    if monitor is not None:
        for run_id in sorted(monitor.state.runs):
            retries = monitor.state.runs[run_id].retries
            if retries:
                print(
                    f"sweep: run {run_id} was retried {retries}x "
                    "(crashed worker resubmitted)"
                )

    if args.manifest_dir:
        _backfill_manifests(args.manifest_dir, specs, results)

    rows = []
    for spec in specs:
        result = results[spec]
        ipcs = ", ".join(f"{t.ipc:.3f}" for t in result.threads)
        rows.append(
            ("+".join(spec.names), spec.policy, result.cycles, ipcs)
        )
    print(render_table(["mix", "policy", "cycles", "ipc/thread"], rows))
    if args.manifest_dir:
        print(f"sweep: manifests in {args.manifest_dir}")
    return 1 if lost else 0


def _backfill_manifests(directory: str, specs, results) -> None:
    """Write manifests for cache-served runs (fresh runs wrote their own).

    Fingerprint-named files make this idempotent: a manifest already
    present (written by the worker that simulated the run, with its
    engine metrics) is left untouched.
    """
    from pathlib import Path

    from .manifest import emit_run_manifest

    for spec in specs:
        fingerprint = spec.fingerprint()
        path = Path(directory) / f"run-{fingerprint[:16]}.json"
        if path.exists():
            continue
        emit_run_manifest(
            directory,
            fingerprint=fingerprint,
            policy=spec.policy,
            workload=spec.names,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            result=results[spec],
            source="cache",
        )
