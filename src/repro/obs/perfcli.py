"""``repro-fqms perf``: compare performance snapshots, gate regressions.

Loads two snapshots — obs manifests, migrated bench records, or legacy
(pre-schema) ``BENCH_*.json`` files — flattens both into the shared
``dotted.name -> float`` metric namespace, prints per-metric deltas,
and exits nonzero when a *gated* metric regressed beyond the
threshold.

Gating is directional and name-driven, matching the conventions the
bench suite already uses:

* throughput metrics (``cycles_per_second`` anywhere in the name) are
  higher-better;
* latency/time metrics (``_s`` suffix, ``us_per_step``, ``latency``)
  are lower-better;
* everything else (counts, ratios, config echoes) is shown for context
  but never gates — a changed ``engine_steps`` is information, not a
  regression.

Exit codes: 0 = within threshold, 1 = regression, 2 = usage/load
error.  CI runs the identity compare (a snapshot against itself, must
exit 0) and a synthetic ``0.85×`` throughput injection (must exit 1)
so the verdict logic itself is regression-tested.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats.report import render_table
from .manifest import ManifestError, load_metrics

#: Fractional slowdown tolerated on gated metrics before failing.
DEFAULT_THRESHOLD = 0.10

#: Substrings marking a metric as higher-better (gates on decrease).
HIGHER_BETTER_MARKERS = ("cycles_per_second",)

#: Name shapes marking a metric as lower-better (gates on increase).
LOWER_BETTER_SUFFIXES = ("_s",)
LOWER_BETTER_MARKERS = ("us_per_step", "latency")


def metric_direction(name: str) -> Optional[int]:
    """+1 if higher is better, -1 if lower is better, None if ungated."""
    if any(marker in name for marker in HIGHER_BETTER_MARKERS):
        return 1
    if name.endswith(LOWER_BETTER_SUFFIXES):
        return -1
    if any(marker in name for marker in LOWER_BETTER_MARKERS):
        return -1
    return None


class MetricDelta:
    """One metric's baseline→candidate movement and verdict."""

    __slots__ = ("name", "baseline", "candidate", "direction")

    def __init__(self, name: str, baseline: float, candidate: float):
        self.name = name
        self.baseline = baseline
        self.candidate = candidate
        self.direction = metric_direction(name)

    @property
    def change(self) -> float:
        """Fractional change, positive = candidate larger."""
        if self.baseline == 0.0:
            return 0.0 if self.candidate == 0.0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)

    def regressed(self, threshold: float) -> bool:
        if self.direction is None:
            return False
        if self.direction > 0:
            return self.change < -threshold
        return self.change > threshold


def compare_metrics(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    match: Optional[str] = None,
) -> List[MetricDelta]:
    """Deltas for every metric present in both snapshots (name-sorted)."""
    deltas = []
    for name in sorted(set(baseline) & set(candidate)):
        if match and match not in name:
            continue
        deltas.append(MetricDelta(name, baseline[name], candidate[name]))
    return deltas


def _fmt_change(delta: MetricDelta) -> str:
    change = delta.change
    if change == float("inf"):
        return "+inf"
    return f"{change * 100.0:+.1f}%"


def render_deltas(
    deltas: Sequence[MetricDelta], threshold: float, show_all: bool
) -> str:
    """The delta table: gated metrics always, ungated only with --all."""
    rows: List[Tuple[str, float, float, str, str]] = []
    for delta in deltas:
        gated = delta.direction is not None
        if not gated and not show_all:
            continue
        if gated:
            verdict = "REGRESSED" if delta.regressed(threshold) else "ok"
        else:
            verdict = "-"
        rows.append(
            (delta.name, delta.baseline, delta.candidate, _fmt_change(delta), verdict)
        )
    if not rows:
        return "(no comparable metrics)"
    return render_table(
        ["metric", "baseline", "candidate", "change", "verdict"], rows
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms perf",
        description=(
            "Compare two performance snapshots (obs manifests or BENCH "
            "files) and fail on regressions beyond the threshold."
        ),
    )
    parser.add_argument("baseline", help="baseline snapshot (JSON)")
    parser.add_argument("candidate", help="candidate snapshot (JSON)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression tolerance on gated metrics "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--metric",
        default=None,
        help="only compare metrics whose dotted name contains this substring",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="also list ungated (informational) metrics",
    )
    return parser


def main(argv: Sequence[str]) -> int:
    args = build_parser().parse_args(list(argv))
    if args.threshold < 0:
        print("perf: --threshold must be non-negative")
        return 2
    try:
        _, base_metrics = load_metrics(args.baseline)
        _, cand_metrics = load_metrics(args.candidate)
    except (OSError, ValueError) as exc:  # ManifestError is a ValueError
        kind = "manifest" if isinstance(exc, ManifestError) else "snapshot"
        print(f"perf: failed to load {kind}: {exc}")
        return 2
    deltas = compare_metrics(base_metrics, cand_metrics, match=args.metric)
    print(f"perf: {args.baseline} -> {args.candidate}")
    print(render_deltas(deltas, args.threshold, args.all))
    regressions = [d for d in deltas if d.regressed(args.threshold)]
    gated = sum(1 for d in deltas if d.direction is not None)
    if regressions:
        print(
            f"perf: REGRESSION — {len(regressions)}/{gated} gated metrics "
            f"beyond {args.threshold * 100.0:.0f}%:"
        )
        for delta in regressions:
            print(f"  {delta.name}: {_fmt_change(delta)}")
        return 1
    print(
        f"perf: ok — {gated} gated metrics within "
        f"{args.threshold * 100.0:.0f}%"
    )
    return 0
