"""Memory-reference traces.

The paper drives its simulator with 100M-instruction sampled SPEC 2000
traces (proprietary).  We use the same *filtered trace* methodology as
classic trace-driven studies (cf. Iyengar et al. [HPCA'96]): a trace
record is a memory reference that reached beyond the L1, annotated
with the number of intervening instructions and a dependence marker.
The instruction gap carries the cost of all L1-hit work, so record
streams stay compact even for cache-friendly benchmarks.

Records can be materialized to disk (one record per line) or streamed
lazily from a generator, which is how the synthetic workloads run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference.

    Attributes:
        inst_gap: Instructions executed since the previous record (the
            record's own instruction is not included).
        is_write: Store (True) or load (False).
        address: Physical byte address.
        dep: Dependence distance — this reference cannot issue until
            the ``dep``-th previous reference has completed; 0 means
            independent.  Dependence chains are how low
            memory-level-parallelism benchmarks (vpr, twolf) are
            expressed.
    """

    inst_gap: int
    is_write: bool
    address: int
    dep: int = 0

    def __post_init__(self) -> None:
        if self.inst_gap < 0:
            raise ValueError(f"inst_gap must be >= 0, got {self.inst_gap}")
        if self.address < 0:
            raise ValueError(f"address must be >= 0, got {self.address}")
        if self.dep < 0:
            raise ValueError(f"dep must be >= 0, got {self.dep}")


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records to ``path`` (text, one record per line); returns count."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            op = "S" if record.is_write else "L"
            handle.write(
                f"{record.inst_gap} {op} {record.address:#x} {record.dep}\n"
            )
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from a file written by :func:`write_trace`."""
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"{path}:{line_no}: malformed record {line!r}")
            gap, op, addr, dep = parts
            if op not in ("L", "S"):
                raise ValueError(f"{path}:{line_no}: bad op {op!r}")
            yield TraceRecord(
                inst_gap=int(gap),
                is_write=(op == "S"),
                address=int(addr, 0),
                dep=int(dep),
            )


def trace_from_list(records: List[TraceRecord]) -> Iterator[TraceRecord]:
    """Adapt a list into the iterator interface cores consume."""
    return iter(records)
