"""Processor substrate: traces, caches, and the out-of-order core model."""

from .cache import Cache, CacheConfig, L1D_CONFIG, L1I_CONFIG, L2_CONFIG, MshrFile
from .core_model import CoreConfig, CoreStats, OooCore
from .hierarchy import AccessResult, CacheHierarchy
from .trace import TraceRecord, read_trace, trace_from_list, write_trace

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CoreConfig",
    "CoreStats",
    "L1D_CONFIG",
    "L1I_CONFIG",
    "L2_CONFIG",
    "MshrFile",
    "OooCore",
    "TraceRecord",
    "read_trace",
    "trace_from_list",
    "write_trace",
]
