"""Set-associative write-back caches with LRU replacement and MSHRs.

Models the private cache levels of the paper's Table 5 configuration.
The cache operates on line addresses; the hierarchy layer handles
line-size alignment, fills, and writeback propagation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 2
    mshrs: int = 16

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"size {self.size_bytes} not divisible by assoc*line "
                f"({self.assoc}*{self.line_bytes})"
            )
        num_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if num_sets & (num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


#: Paper Table 5 cache levels.
L1I_CONFIG = CacheConfig(size_bytes=32 * 1024, assoc=4, latency=2, mshrs=8)
L1D_CONFIG = CacheConfig(size_bytes=32 * 1024, assoc=4, latency=2, mshrs=16)
L2_CONFIG = CacheConfig(size_bytes=512 * 1024, assoc=8, latency=12, mshrs=16)


class Cache:
    """One cache level.  Keys are line addresses (byte addr >> offset)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_for(self, line: int) -> "OrderedDict[int, bool]":
        return self._sets[line & self._set_mask]

    def lookup(self, line: int, mark_dirty: bool = False) -> bool:
        """Probe for ``line``; updates LRU and dirty state on a hit."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            if mark_dirty:
                cache_set[line] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Probe without disturbing LRU or counters (for tests/invariants)."""
        return line in self._set_for(line)

    def is_dirty(self, line: int) -> bool:
        cache_set = self._set_for(line)
        return cache_set.get(line, False)

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install ``line``; returns the evicted (line, was_dirty) if any."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            if dirty:
                cache_set[line] = True
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if len(cache_set) >= self.config.assoc:
            victim, victim_dirty = cache_set.popitem(last=False)
            evicted = (victim, victim_dirty)
            if victim_dirty:
                self.writebacks += 1
        cache_set[line] = dirty
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; returns True if it was present and dirty."""
        cache_set = self._set_for(line)
        return bool(cache_set.pop(line, False))

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class MshrFile:
    """Miss-status handling registers: outstanding line misses with merging.

    Multiple references to the same missing line share one entry (a
    *secondary* miss); the entry count bounds a core's memory-level
    parallelism exactly as in the paper's configuration.
    """

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"need at least one MSHR, got {entries}")
        self.entries = entries
        self._outstanding: Dict[int, List[object]] = {}

    def __len__(self) -> int:
        return len(self._outstanding)

    @property
    def full(self) -> bool:
        return len(self._outstanding) >= self.entries

    def outstanding(self, line: int) -> bool:
        return line in self._outstanding

    def allocate(self, line: int, waiter: object) -> bool:
        """Register ``waiter`` for ``line``.

        Returns True if the line now has an MSHR (newly allocated or
        merged); False when the file is full and the line is new.
        """
        if line in self._outstanding:
            self._outstanding[line].append(waiter)
            return True
        if self.full:
            return False
        self._outstanding[line] = [waiter]
        return True

    def complete(self, line: int) -> List[object]:
        """Retire the MSHR for ``line``; returns its waiters."""
        if line not in self._outstanding:
            raise KeyError(f"no MSHR outstanding for line {line:#x}")
        return self._outstanding.pop(line)
