"""Private per-core cache hierarchy (paper Table 5).

Each core owns an L1 instruction cache, an L1 data cache, and a
private 512KB L2.  The memory system is the only shared resource, as
in the paper's methodology.  Demand accesses flow L1D → L2 → memory;
dirty evictions propagate down and ultimately become writeback
requests to the memory controller.

Traces are *L1-filtered* (see :mod:`repro.cpu.trace`), so the common
entry point is :meth:`access`, which probes the L2 directly and
charges the L2 latency on a hit.  The unfiltered path
(:meth:`access_unfiltered`) exercises the L1D as well and is used by
unit tests and by unfiltered trace workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from .cache import Cache, CacheConfig, L1D_CONFIG, L1I_CONFIG, L2_CONFIG


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a hierarchy probe.

    Attributes:
        hit_level: "l1", "l2", or None for a memory access.
        latency: Load-to-use latency for hits; None when the line must
            come from memory.
        line: The line address probed.
    """

    hit_level: Optional[str]
    latency: Optional[int]
    line: int


class CacheHierarchy:
    """L1I + L1D + private L2 for one core."""

    def __init__(
        self,
        l1i: CacheConfig = L1I_CONFIG,
        l1d: CacheConfig = L1D_CONFIG,
        l2: CacheConfig = L2_CONFIG,
    ):
        if not (l1i.line_bytes == l1d.line_bytes == l2.line_bytes):
            raise ValueError("all levels must share one line size")
        self.line_bytes = l2.line_bytes
        self._offset_bits = l2.line_bytes.bit_length() - 1
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2)
        #: Dirty lines evicted from the L2, waiting to become writeback
        #: requests to the memory controller (FIFO; drained head-first
        #: every core cycle, hence a deque).
        self.pending_writebacks: Deque[int] = deque()

    def line_of(self, address: int) -> int:
        return address >> self._offset_bits

    def line_address(self, line: int) -> int:
        return line << self._offset_bits

    # -- filtered path (L2 probe) ------------------------------------------

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Probe the L2 with an L1-filtered reference."""
        line = self.line_of(address)
        if self.l2.lookup(line, mark_dirty=is_write):
            return AccessResult("l2", self.l2.config.latency, line)
        return AccessResult(None, None, line)

    # -- unfiltered path (L1D then L2) ---------------------------------------

    def access_unfiltered(self, address: int, is_write: bool) -> AccessResult:
        """Probe L1D then L2 with a raw reference."""
        line = self.line_of(address)
        if self.l1d.lookup(line, mark_dirty=is_write):
            return AccessResult("l1", self.l1d.config.latency, line)
        if self.l2.lookup(line, mark_dirty=False):
            self._fill_l1(line, dirty=is_write)
            return AccessResult("l2", self.l2.config.latency, line)
        return AccessResult(None, None, line)

    def _fill_l1(self, line: int, dirty: bool) -> None:
        evicted = self.l1d.fill(line, dirty=dirty)
        if evicted is not None:
            victim, victim_dirty = evicted
            if victim_dirty and self.l2.contains(victim):
                self.l2.lookup(victim, mark_dirty=True)

    # -- fills from memory ------------------------------------------------------

    def fill_from_memory(self, line: int, dirty: bool, filtered: bool = True) -> None:
        """Install a returned line; queue any dirty L2 victim for writeback.

        Args:
            line: The line address being filled.
            dirty: Whether the triggering access was a store (the line
                is installed dirty, to be written back on eviction).
            filtered: Filtered traces bypass the L1D.
        """
        evicted = self.l2.fill(line, dirty=dirty)
        if evicted is not None:
            victim, victim_dirty = evicted
            self.l1d.invalidate(victim)
            if victim_dirty:
                self.pending_writebacks.append(victim)
        if not filtered:
            self._fill_l1(line, dirty=dirty)

    def pop_writeback(self) -> Optional[int]:
        """Take one queued writeback line, oldest first."""
        if self.pending_writebacks:
            return self.pending_writebacks.popleft()
        return None

    def writeback_pressure(self) -> int:
        return len(self.pending_writebacks)
