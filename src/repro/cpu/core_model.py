"""Out-of-order core approximation (interval model).

The paper uses a proprietary latch-level IBM 970 derivative.  What the
memory-scheduling study needs from a core is the *memory request
process* it generates and the latency→rate feedback of a closed
system.  This model preserves those:

* a reorder buffer of ``rob_size`` instructions — retirement stalls
  when the oldest incomplete load is at the ROB head, so long memory
  latencies throttle the core exactly as in the paper's Figure 1;
* dependence-aware lookahead — independent references inside the ROB
  window issue concurrently (memory-level parallelism), bounded by the
  MSHR file, while dependence chains serialize (vpr/twolf-style
  latency sensitivity);
* limited issue ports and per-thread NACK back-pressure from the
  memory controller.

Non-memory instructions retire at ``retire_width`` per cycle; their
cost is carried by each trace record's instruction gap.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Set, Tuple

from ..controller.request import MemoryRequest, RequestKind
from .cache import MshrFile
from .hierarchy import CacheHierarchy
from .prefetch import PrefetchConfig, StreamPrefetcher
from .trace import TraceRecord

#: Returns True when the request was accepted, False on NACK.
SubmitFn = Callable[[MemoryRequest], bool]


@dataclass(frozen=True)
class CoreConfig:
    """Core microarchitecture parameters (paper Table 5 defaults)."""

    rob_size: int = 128
    retire_width: float = 4.0
    issue_ports: int = 2
    #: Outstanding line misses per core.  Table 5 gives the D-cache 16
    #: MSHRs *and* the private L2 32 transaction-buffer entries; line
    #: misses merge upstream, so the L2's 32 entries are the per-thread
    #: bound on memory-level parallelism seen by the memory system.
    mshrs: int = 32
    lsq_size: int = 32
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)

    def __post_init__(self) -> None:
        if self.rob_size <= 0 or self.issue_ports <= 0 or self.lsq_size <= 0:
            raise ValueError("core resources must be positive")
        if self.retire_width <= 0:
            raise ValueError(f"retire_width must be positive, got {self.retire_width}")
        if self.mshrs <= 0:
            raise ValueError(f"mshrs must be positive, got {self.mshrs}")


class _OpState:
    WAIT_DEP = 0
    READY = 1
    OUTSTANDING = 2


#: Marker waiter occupying an MSHR allocated by the prefetcher.
_PREFETCH_SENTINEL = object()


@dataclass
class WindowOp:
    """A memory reference in flight inside the core's window."""

    pos: int
    mem_index: int
    is_write: bool
    address: int
    line: int
    dep_index: int
    state: int = _OpState.WAIT_DEP
    issued_at: Optional[int] = None


@dataclass
class CoreStats:
    instructions: float = 0.0
    cycles: int = 0
    loads_issued: int = 0
    stores_issued: int = 0
    memory_reads: int = 0
    l2_hits: int = 0
    nacks: int = 0
    mshr_stall_cycles: int = 0
    head_block_cycles: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class OooCore:
    """One hardware thread: trace consumer, cache hierarchy driver."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Iterator[TraceRecord],
        hierarchy: CacheHierarchy,
        submit: SubmitFn,
    ):
        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.submit = submit
        self.stats = CoreStats()
        #: Optional run telemetry (repro.telemetry); None in normal
        #: runs, so submit/fill hooks cost one attribute test each.
        self.telemetry = None
        # The MSHR file holds demand and prefetch misses together (so a
        # demand miss merges with an in-flight prefetch); each kind has
        # its own allocation budget.
        self.mshr = MshrFile(config.mshrs + config.prefetch.budget)
        self.prefetcher = StreamPrefetcher(config.prefetch)
        self._prefetch_lines: Set[int] = set()
        self._demand_outstanding = 0
        self._trace = trace
        self._trace_done = False
        #: Position (instruction index) the next unfetched record holds.
        self._next_pos: Optional[int] = None
        self._next_record: Optional[TraceRecord] = None
        self._mem_ops_fetched = 0
        #: Instructions retired so far (fractional widths accumulate).
        self._retired = 0.0
        self._window: List[WindowOp] = []
        #: Memory-op indices fetched but not yet complete (dep tracking).
        self._incomplete: Set[int] = set()
        #: Stall fast path: the core made no progress last cycle and
        #: nothing can change until a fill arrives.
        self._asleep = False
        #: A submit was NACKed this cycle; the core must stay awake to
        #: retry even though it made no other progress.
        self._nack_blocked = False
        #: Local completions (cache hits): heap of (time, mem_index, op).
        self._local_done: List[Tuple[int, int, WindowOp]] = []
        self._advance_trace(initial=True)

    # -- trace feed -------------------------------------------------------

    def _advance_trace(self, initial: bool = False) -> None:
        prev_pos = -1 if initial else (self._next_pos or 0)
        try:
            record = next(self._trace)
        except StopIteration:
            self._trace_done = True
            self._next_record = None
            self._next_pos = None
            return
        self._next_record = record
        self._next_pos = prev_pos + record.inst_gap + 1

    @property
    def finished(self) -> bool:
        """True when the trace is exhausted and all work has drained."""
        return (
            self._trace_done
            and not self._window
            and not self.hierarchy.pending_writebacks
            and len(self.mshr) == 0
        )

    # -- per-cycle step -----------------------------------------------------

    def tick(self, now: int) -> None:
        """Advance the core by one cycle."""
        self.stats.cycles += 1
        if self._asleep:
            # Fully stalled on memory: every op waits on a dependence or
            # an outstanding miss, retirement is blocked at the oldest
            # incomplete load, and nothing can change until a fill.
            self.stats.head_block_cycles += 1
            return
        activity_mark = (
            self.stats.loads_issued
            + self.stats.stores_issued
            + self._mem_ops_fetched
        )
        retired_mark = self._retired
        prefetch_mark = self.prefetcher.issued
        self._nack_blocked = False
        if self._local_done:
            self._complete_local(now)
        if self.hierarchy.pending_writebacks:
            self._drain_writebacks(now)
        self._fetch(now)
        self._issue(now)
        self._retire(now)
        made_progress = (
            self.stats.loads_issued
            + self.stats.stores_issued
            + self._mem_ops_fetched
            != activity_mark
            or self._retired != retired_mark
            or self.prefetcher.issued != prefetch_mark
            or self._local_done
            or self.hierarchy.pending_writebacks
        )
        if not made_progress and self._window and not self._nack_blocked:
            self._asleep = True

    def _complete_local(self, now: int) -> None:
        while self._local_done and self._local_done[0][0] <= now:
            _, _, op = heapq.heappop(self._local_done)
            self._finish_op(op)

    def _finish_op(self, op: WindowOp) -> None:
        self._incomplete.discard(op.mem_index)
        if op in self._window:
            self._window.remove(op)
        # Wake dependents.
        for other in self._window:
            if other.state == _OpState.WAIT_DEP and other.dep_index not in self._incomplete:
                other.state = _OpState.READY

    def _drain_writebacks(self, now: int) -> None:
        while self.hierarchy.pending_writebacks:
            line = self.hierarchy.pending_writebacks[0]
            request = MemoryRequest(
                thread_id=self.core_id,
                kind=RequestKind.WRITE,
                address=self.hierarchy.line_address(line),
                arrival_time=now,
            )
            if not self.submit(request):
                self.stats.nacks += 1
                break
            if self.telemetry is not None:
                self.telemetry.on_core_submit(request, line, now)
            self.hierarchy.pending_writebacks.popleft()

    def _fetch(self, now: int) -> None:
        while (
            self._next_record is not None
            and len(self._window) < self.config.lsq_size
            and self._next_pos is not None
            and self._next_pos <= self._retired + self.config.rob_size
        ):
            record = self._next_record
            dep_index = (
                self._mem_ops_fetched - record.dep if record.dep > 0 else -1
            )
            op = WindowOp(
                pos=self._next_pos,
                mem_index=self._mem_ops_fetched,
                is_write=record.is_write,
                address=record.address,
                line=self.hierarchy.line_of(record.address),
                dep_index=dep_index,
            )
            if dep_index >= 0 and dep_index in self._incomplete:
                op.state = _OpState.WAIT_DEP
            else:
                op.state = _OpState.READY
            self._window.append(op)
            self._incomplete.add(op.mem_index)
            self._mem_ops_fetched += 1
            self._advance_trace()

    def _issue(self, now: int) -> None:
        ports = self.config.issue_ports
        blocked_on_mshr = False
        for op in self._window:
            if ports <= 0:
                break
            if op.state != _OpState.READY:
                continue
            result = self.hierarchy.access(op.address, op.is_write)
            self.prefetcher.train(result.line, now)
            if result.hit_level is not None:
                op.state = _OpState.OUTSTANDING
                op.issued_at = now
                heapq.heappush(
                    self._local_done, (now + result.latency, op.mem_index, op)
                )
                self.stats.l2_hits += 1
                self._count_issue(op)
                ports -= 1
                continue
            # L2 miss: needs memory.
            if self.mshr.outstanding(result.line):
                # Merge — possibly into an in-flight prefetch.
                self.mshr.allocate(result.line, op)
                if result.line in self._prefetch_lines:
                    self.prefetcher.note_useful()
                op.state = _OpState.OUTSTANDING
                op.issued_at = now
                self._count_issue(op)
                ports -= 1
                continue
            if self._demand_outstanding >= self.config.mshrs:
                blocked_on_mshr = True
                continue
            request = MemoryRequest(
                thread_id=self.core_id,
                kind=RequestKind.READ,
                address=self.hierarchy.line_address(result.line),
                arrival_time=now,
            )
            if not self.submit(request):
                self.stats.nacks += 1
                # Controller back-pressure: retry next cycle.
                self._nack_blocked = True
                break
            if self.telemetry is not None:
                self.telemetry.on_core_submit(request, result.line, now)
            self.mshr.allocate(result.line, op)
            self._demand_outstanding += 1
            op.state = _OpState.OUTSTANDING
            op.issued_at = now
            self.stats.memory_reads += 1
            self._count_issue(op)
            ports -= 1
        if blocked_on_mshr:
            self.stats.mshr_stall_cycles += 1
        self._issue_prefetches(now)

    def _issue_prefetches(self, now: int) -> None:
        for line in self.prefetcher.candidates(len(self._prefetch_lines), now):
            if self.mshr.outstanding(line) or self.hierarchy.l2.contains(line):
                continue
            request = MemoryRequest(
                thread_id=self.core_id,
                kind=RequestKind.READ,
                address=self.hierarchy.line_address(line),
                arrival_time=now,
                prefetch=True,
            )
            if not self.submit(request):
                # Prefetches are hints: a NACKed one is simply dropped.
                self.stats.nacks += 1
                break
            if self.telemetry is not None:
                self.telemetry.on_core_submit(request, line, now)
            self.mshr.allocate(line, _PREFETCH_SENTINEL)
            self._prefetch_lines.add(line)

    def _count_issue(self, op: WindowOp) -> None:
        if op.is_write:
            self.stats.stores_issued += 1
        else:
            self.stats.loads_issued += 1

    def _retire(self, now: int) -> None:
        target = self._retired + self.config.retire_width
        # The oldest incomplete *load* blocks retirement at its position;
        # stores drain through the store queue without blocking.
        blocker = None
        for op in self._window:
            if not op.is_write:
                blocker = op.pos
                break
        if blocker is not None and target > blocker:
            target = float(blocker)
            self.stats.head_block_cycles += 1
        # Never retire past the fetch frontier (program order).
        if self._next_pos is not None and target > self._next_pos:
            target = float(self._next_pos)
        if target > self._retired:
            self.stats.instructions += target - self._retired
            self._retired = target

    # -- memory completion ---------------------------------------------------

    def on_fill(self, line: int, now: int) -> None:
        """A read for ``line`` returned from the memory system."""
        if self.telemetry is not None:
            self.telemetry.on_core_fill(self.core_id, line, now)
        self._asleep = False
        waiters = self.mshr.complete(line)
        if line in self._prefetch_lines:
            self._prefetch_lines.discard(line)
        else:
            self._demand_outstanding -= 1
        dirty = any(op.is_write for op in waiters if isinstance(op, WindowOp))
        self.hierarchy.fill_from_memory(line, dirty=dirty)
        for op in waiters:
            if isinstance(op, WindowOp):
                self._finish_op(op)

    # -- event-driven engine support --------------------------------------------
    #
    # The engine may jump the global clock from ``now`` to some
    # ``target`` provided every intervening cycle is provably a no-op
    # for every component, up to counters that can be replicated in
    # bulk.  For a core that contract splits three ways:
    #
    # * **asleep** — every op waits on a miss and retirement is blocked;
    #   only a fill (delivered by the system) changes anything, so
    #   :meth:`wake_time` returns None and :meth:`sleep_skip` accounts
    #   the span.
    # * **quiescent** — pure compute; the only future event is reaching
    #   the next fetch point as the ROB retires toward it.
    # * **active** — ops in flight but nothing issuable *this* cycle: no
    #   READY op (issuing would touch cache LRU state and train the
    #   prefetcher), no fetch headroom, no local completion due, no
    #   prefetch the stream engine would emit.  Such a cycle only
    #   advances retirement (a pure function of the frozen window) and,
    #   when a credit-blocked writeback is pending, records one NACK —
    #   both replicated exactly by :meth:`skip`.
    #
    # Wake times are conservative: answering *early* merely steps a
    # no-op cycle, answering late would diverge from the cycle oracle.
    #
    # Under the sharded wake index the answer is also *consumed*: the
    # engine pops this core's heap entry when its wake comes due and
    # re-asks only after the next tick (the dirty-republish pass in
    # ``CmpSystem._event_target_indexed``).  A wake therefore covers
    # exactly the span until the core is next ticked or delivered to —
    # it must not bake in assumptions about state that a fill or an
    # accepted writeback could change in between, because no fresh
    # query happens until after that interaction.

    #: Cap on the retirement-recurrence walk inside :meth:`wake_time`.
    #: If the window's drain takes longer to converge, the wake time
    #: falls back to a conservative (early, therefore safe) bound.
    _RETIRE_WALK_LIMIT = 512

    @property
    def asleep(self) -> bool:
        """True while fully stalled on memory (wakes on the next fill)."""
        return self._asleep

    def sleep_skip(self, cycles: int) -> None:
        """Account ``cycles`` of fully-stalled time in one step."""
        if cycles <= 0:
            return
        self.stats.cycles += cycles
        self.stats.head_block_cycles += cycles

    def quiescent(self) -> bool:
        """True when the core cannot interact with memory until it fetches."""
        return (
            not self._window
            and not self.hierarchy.pending_writebacks
            and len(self.mshr) == 0
            and not self._local_done
        )

    def has_blocked_writeback(self) -> bool:
        """True when a pending writeback exists (head retried each cycle)."""
        return bool(self.hierarchy.pending_writebacks)

    def _retire_blocker(self) -> Optional[int]:
        """Position of the oldest incomplete load, as :meth:`_retire` sees it."""
        for op in self._window:
            if not op.is_write:
                return op.pos
        return None

    def wake_time(self, now: int) -> Optional[int]:
        """Earliest cycle ≥ ``now`` whose tick could do unskippable work.

        ``None`` means no self-generated event exists: only an external
        fill (tracked by the system's delivery heap) can change this
        core's state.  The caller must separately check whether a
        pending head writeback would be *accepted* this cycle — that
        depends on controller buffer state the core cannot see.
        """
        if self._asleep:
            return None
        if self.prefetcher.would_issue(len(self._prefetch_lines)):
            return now
        if self.quiescent():
            if self._next_pos is None:
                return None
            gap = self._next_pos - (self._retired + self.config.rob_size)
            if gap <= 0:
                return now
            return now + max(1, math.ceil(gap / self.config.retire_width))
        for op in self._window:
            if op.state == _OpState.READY:
                return now
        events: List[int] = []
        if self._local_done:
            head = self._local_done[0][0]
            if head <= now:
                return now
            events.append(head)
        retire_event = self._retire_walk(now)
        if retire_event is not None:
            if retire_event <= now:
                return now
            events.append(retire_event)
        if not events:
            return None
        return min(events)

    def _retire_walk(self, now: int) -> Optional[int]:
        """Earliest retirement-driven event ≥ ``now`` (fetch or stall).

        Walks the per-cycle retirement recurrence against the frozen
        window to find (a) the first cycle at which the fetch frontier
        comes within ROB reach, and (b) — when the core could fall
        asleep — the first cycle whose tick makes no progress, which
        must be stepped so ``tick`` performs the sleep transition.
        """
        width = self.config.retire_width
        rob = self.config.rob_size
        next_pos = self._next_pos
        blocker = self._retire_blocker()
        can_fetch = (
            self._next_record is not None
            and len(self._window) < self.config.lsq_size
        )
        # Cores holding writebacks (or due local completions) never pass
        # the made-progress test, so they cannot fall asleep mid-span.
        may_stall = (
            bool(self._window)
            and not self.hierarchy.pending_writebacks
            and not self._local_done
        )
        if blocker is None and next_pos is None:
            # Degenerate tail (trace exhausted, store-only window):
            # retirement advances unboundedly; don't skip.
            return now
        if can_fetch and next_pos is not None and next_pos <= self._retired + rob:
            return now
        if not can_fetch and not may_stall:
            return None
        retired = self._retired
        for k in range(self._RETIRE_WALK_LIMIT):
            target = retired + width
            if blocker is not None and target > blocker:
                target = float(blocker)
            if next_pos is not None and target > next_pos:
                target = float(next_pos)
            if target <= retired:
                # Tick at now + k retires nothing: the stall cycle.
                return now + k if may_stall else None
            retired = target
            if can_fetch and next_pos is not None and next_pos <= retired + rob:
                # Tick at now + k retires to ``retired``; the fetch at
                # now + k + 1 sees it within ROB reach.
                return now + k + 1
        return now + self._RETIRE_WALK_LIMIT

    def skip(self, now: int, target: int) -> None:
        """Bulk-account the no-op cycles ``[now, target)`` for this core.

        Legal only when the engine verified nothing unskippable happens
        in the span (see :meth:`wake_time`); replicates exactly what
        ``target - now`` consecutive ticks would have done.
        """
        if target <= now:
            return
        if self._asleep:
            self.sleep_skip(target - now)
        elif self.quiescent():
            self.skip_to(now, target)
        else:
            self._active_skip(now, target)

    def _active_skip(self, now: int, target: int) -> None:
        span = target - now
        self.stats.cycles += span
        if self.hierarchy.pending_writebacks:
            # One rejected head-of-queue submit per cycle (the engine
            # only skips while the head would be NACKed throughout).
            self.stats.nacks += span
        # Replicate _retire cycle by cycle against the frozen window;
        # float accumulation order must match the oracle exactly.
        width = self.config.retire_width
        next_pos = self._next_pos
        blocker = self._retire_blocker()
        retired = self._retired
        remaining = span
        while remaining > 0:
            target_r = retired + width
            blocked = blocker is not None and target_r > blocker
            if blocked:
                target_r = float(blocker)
            if next_pos is not None and target_r > next_pos:
                target_r = float(next_pos)
            if target_r > retired:
                if blocked:
                    self.stats.head_block_cycles += 1
                self.stats.instructions += target_r - retired
                retired = target_r
                remaining -= 1
            else:
                # Converged: every remaining cycle repeats identically.
                if blocked:
                    self.stats.head_block_cycles += remaining
                remaining = 0
        self._retired = retired

    def next_event_time(self, now: int) -> Optional[int]:
        """Next cycle this core could submit memory work, or None if done."""
        if not self.quiescent():
            return now + 1
        if self._next_pos is None:
            return None
        gap = self._next_pos - (self._retired + self.config.rob_size)
        if gap <= 0:
            return now + 1
        return now + max(1, math.ceil(gap / self.config.retire_width))

    def skip_to(self, now: int, target: int) -> None:
        """Bulk-retire pure-compute cycles from ``now`` to ``target``.

        Only legal while :meth:`quiescent`; the simulation engine
        guarantees ``target`` does not overshoot the next fetch point.
        """
        if target <= now:
            return
        cycles = target - now
        self.stats.cycles += cycles
        advance = cycles * self.config.retire_width
        limit = self._next_pos if self._next_pos is not None else self._retired
        new_retired = min(self._retired + advance, float(limit))
        if new_retired > self._retired:
            self.stats.instructions += new_retired - self._retired
            self._retired = new_retired
