"""Hardware stream prefetcher.

The paper's processor model derives from the IBM 970, whose L2 issues
sequential stream prefetches (eight concurrent streams).  Stream
prefetching is the mechanism that lets streaming benchmarks such as
*art* or *swim* demand well over half the data-bus bandwidth despite a
~180-cycle memory latency — and it is what makes them *aggressive*:
their prefetch-fed sequential bursts keep rows open and capture banks
under first-ready scheduling.

The prefetcher trains on L2-level demand accesses.  An ascending pair
of line addresses allocates a stream; a confirming access promotes it.
Confirmed streams run ahead of the demand pointer up to ``depth``
lines, bounded by an outstanding-prefetch budget.  Irregular reference
patterns (vpr, twolf) never confirm a stream, so the prefetcher is
inert for them, exactly as on real hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream prefetcher parameters (970-style defaults)."""

    enabled: bool = True
    streams: int = 8
    #: How far (in lines) a confirmed stream may run ahead of demand.
    depth: int = 16
    #: Maximum outstanding prefetch requests.
    budget: int = 16
    #: Prefetches issued per cycle at most.
    issue_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.streams <= 0 or self.depth <= 0 or self.budget <= 0:
            raise ValueError("prefetcher resources must be positive")
        if self.issue_per_cycle <= 0:
            raise ValueError("issue_per_cycle must be positive")


@dataclass
class _Stream:
    """One tracked sequential stream."""

    next_line: int
    #: Furthest line prefetched (exclusive frontier).
    frontier: int
    #: Consecutive sequential confirmations; gates the ramp.
    confirms: int = 0
    last_used: int = 0

    @property
    def confirmed(self) -> bool:
        return self.confirms >= 2


class StreamPrefetcher:
    """Sequential multi-stream prefetch engine for one core."""

    def __init__(self, config: PrefetchConfig):
        self.config = config
        self._streams: Deque[_Stream] = deque()
        self.issued = 0
        self.useful = 0

    def train(self, line: int, now: int) -> None:
        """Observe a demand L2 access to ``line``."""
        if not self.config.enabled:
            return
        for stream in self._streams:
            if line == stream.next_line:
                stream.confirms += 1
                stream.next_line = line + 1
                stream.frontier = max(stream.frontier, line + 1)
                stream.last_used = now
                return
            if stream.confirmed and stream.next_line <= line < stream.frontier:
                # Demand caught up inside the prefetched window.
                stream.confirms += 1
                stream.next_line = line + 1
                stream.last_used = now
                return
        # Allocate a new candidate stream expecting line + 1.
        stream = _Stream(next_line=line + 1, frontier=line + 1, last_used=now)
        self._streams.append(stream)
        if len(self._streams) > self.config.streams:
            # Evict the least-recently-used stream; keep the remaining
            # deque in LRU order exactly as the previous in-place sort
            # did, since stream order breaks ties in training.
            self._streams = deque(
                sorted(self._streams, key=lambda s: s.last_used)
            )
            self._streams.popleft()

    def would_issue(self, outstanding: int) -> bool:
        """True iff :meth:`candidates` would return a non-empty list.

        Side-effect-free twin of the issue decision, used by the
        event-driven engine: a cycle where this is False is provably
        prefetch-inert, so it can be skipped without consulting (and
        thereby mutating) the stream state.
        """
        if not self.config.enabled:
            return False
        if self.config.budget - outstanding <= 0:
            return False
        for stream in self._streams:
            if stream.confirms < 2:
                continue
            allowed = min(self.config.depth, 2 * (stream.confirms - 1))
            if stream.frontier - stream.next_line < allowed:
                return True
        return False

    def candidates(self, outstanding: int, now: int) -> List[int]:
        """Lines to prefetch this cycle, respecting depth and budget."""
        if not self.config.enabled:
            return []
        lines: List[int] = []
        budget = self.config.budget - outstanding
        if budget <= 0:
            return lines
        confirmed = [s for s in self._streams if s.confirms >= 2]
        if not confirmed:
            # Common case for irregular workloads: streams train but
            # never confirm, so there is nothing to sort or issue.
            return lines
        quota = min(self.config.issue_per_cycle, budget)
        for stream in sorted(confirmed, key=lambda s: s.frontier - s.next_line):
            # Ramp: a stream earns lookahead as it keeps confirming, so
            # short accidental runs (pointer-chasing codes) waste little
            # bandwidth while true streams reach full depth.
            allowed = min(self.config.depth, 2 * (stream.confirms - 1))
            while quota > 0 and stream.frontier - stream.next_line < allowed:
                lines.append(stream.frontier)
                stream.frontier += 1
                stream.last_used = now
                quota -= 1
            if quota <= 0:
                break
        self.issued += len(lines)
        return lines

    def note_useful(self) -> None:
        """A demand access hit a prefetched line (coverage statistics)."""
        self.useful += 1

    @property
    def active_streams(self) -> int:
        return sum(1 for s in self._streams if s.confirmed)
