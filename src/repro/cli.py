"""Command-line interface: regenerate any paper figure from a shell.

Examples::

    repro-fqms figure1
    repro-fqms figure5 --cycles 120000
    repro-fqms ablations
    repro-fqms all
    repro-fqms check --cycles 40000   # protocol/invariant sanitizers
    repro-fqms figure1 --check        # any run, with checkers attached
    repro-fqms trace --workload vpr,art --policy FQ-VFTF --out trace.json
    repro-fqms report --workload vpr,art --policy FR-FCFS
    repro-fqms compare                # rank every registered policy
    repro-fqms compare --policies FR-FCFS,FQ-VFTF,BLISS --json cmp.json
    repro-fqms sweep --progress --jobs 4       # live fleet dashboard
    repro-fqms perf BENCH_old.json BENCH_new.json --threshold 0.1
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from .experiments import (
    run_figure1,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_pairs,
    run_quads,
)
from .experiments.ablations import (
    render_accounting_sweep,
    render_buffer_sweep,
    render_discipline_sweep,
    render_inversion_sweep,
    render_share_sweep,
    sweep_buffers,
    sweep_discipline,
    sweep_inversion_bound,
    sweep_shares,
    sweep_vft_accounting,
    sweep_write_drain,
    render_write_drain_sweep,
)
from .policy import canonical, registered_names
from .sim.cache import configure_cache
from .sim.runner import DEFAULT_CYCLES

FIGURES = ("figure1", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9")


def _run_figure(
    name: str,
    cycles: int,
    seed: int,
    jobs: Optional[int] = None,
    store: Optional[Any] = None,
):
    if name == "figure1":
        return run_figure1(cycles=cycles, seed=seed, jobs=jobs, store=store)
    if name == "figure4":
        return run_figure4(cycles=cycles, seed=seed, jobs=jobs, store=store)
    if name in ("figure5", "figure6", "figure7"):
        outcomes = run_pairs(cycles=cycles, seed=seed, jobs=jobs, store=store)
        runner = {"figure5": run_figure5, "figure6": run_figure6, "figure7": run_figure7}
        return runner[name](outcomes=outcomes)
    if name in ("figure8", "figure9"):
        outcomes = run_quads(cycles=cycles, seed=seed, jobs=jobs, store=store)
        if name == "figure8":
            return run_figure8(outcomes=outcomes)
        return run_figure9(
            cycles=cycles, seed=seed, outcomes=outcomes, jobs=jobs, store=store
        )
    raise ValueError(f"unknown figure {name!r}")


def _figure_json(name: str, result) -> Dict[str, Any]:
    """Machine-readable dump of a figure result (dataclass rows only)."""
    payload: Dict[str, Any] = {"figure": name}
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, list) and value and dataclasses.is_dataclass(value[0]):
            payload[field.name] = [dataclasses.asdict(v) for v in value]
        elif isinstance(value, (list, tuple)):
            payload[field.name] = [
                list(v) if isinstance(v, tuple) else v for v in value
            ]
    return payload


def _run_ablations(cycles: int, seed: int) -> str:
    sections = [
        ("Ablation A: priority-inversion bound sweep",
         render_inversion_sweep(sweep_inversion_bound(cycles=cycles, seed=seed))),
        ("Ablation B: asymmetric service shares",
         render_share_sweep(sweep_shares(cycles=cycles, seed=seed))),
        ("Ablation C: buffer partition sizing",
         render_buffer_sweep(sweep_buffers(cycles=cycles, seed=seed))),
        ("Ablation D: deferred vs arrival-time finish-time computation",
         render_accounting_sweep(sweep_vft_accounting(cycles=cycles, seed=seed))),
        ("Ablation E: finish-time vs start-time priority",
         render_discipline_sweep(sweep_discipline(cycles=cycles, seed=seed))),
        ("Ablation F: write scheduling — FCFS vs watermark draining",
         render_write_drain_sweep(sweep_write_drain(cycles=cycles, seed=seed))),
    ]
    return "\n\n".join(f"{title}\n{body}" for title, body in sections)


def _run_trace(args, export: bool) -> str:
    """Run one telemetry-attached workload; render (and maybe export) it."""
    from .telemetry.driver import resolve_profiles, run_traced
    from .telemetry.export import (
        perfetto_trace,
        validate_trace,
        write_intervals_csv,
        write_intervals_jsonl,
        write_trace,
    )
    from .telemetry.report import render_summary_table, render_trace_report

    names = [n.strip() for n in args.workload.split(",") if n.strip()]
    if not names:
        raise SystemExit("--workload must name at least one benchmark")
    try:
        profiles = resolve_profiles(names)
    except KeyError as exc:
        raise SystemExit(f"repro-fqms: error: {exc.args[0]}") from exc
    run = run_traced(
        profiles,
        args.policy,
        cycles=args.cycles,
        seed=args.seed,
        engine=args.engine,
        sample_period=args.period,
    )
    title = f"{'+'.join(names)} under {args.policy}"
    lines = [
        render_trace_report(
            run.telemetry.samples(),
            run.thread_names,
            run.fair_shares,
            title=title,
            policy=run.telemetry.policy_name,
            policy_key_fields=run.telemetry.policy_key_fields,
        ),
        "",
        render_summary_table(run.telemetry.summary()),
    ]
    if export:
        label = f"repro-fqms {title}"
        trace = perfetto_trace(run.telemetry, run.fair_shares, label=label)
        problems = validate_trace(trace)
        if problems:
            raise RuntimeError(f"generated an invalid trace: {problems[:3]}")
        out = args.out or "trace.json"
        write_trace(out, trace)
        lines.append("")
        lines.append(
            f"wrote Perfetto trace to {out} "
            "(load it at https://ui.perfetto.dev)"
        )
        if args.intervals:
            n = len(run.thread_names)
            if args.intervals.endswith(".jsonl"):
                write_intervals_jsonl(args.intervals, run.telemetry.samples(), n)
            else:
                write_intervals_csv(args.intervals, run.telemetry.samples(), n)
            lines.append(f"wrote interval metrics to {args.intervals}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: regenerate figures/ablations; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint subcommand has its own argument surface (paths,
        # --format, --rules, ...); dispatch before the experiment parser
        # so its choices= validation never sees it.
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "perf":
        # Same pre-dispatch pattern: 'perf' compares two performance
        # snapshots (obs manifests / BENCH files) and gates regressions.
        from .obs.perfcli import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "sweep":
        # And 'sweep' runs a (mix x policy) batch with optional live
        # fleet progress and per-run manifests.
        from .obs.sweepcli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "status", "results"):
        # The experiment-service family: 'serve' runs the fair-queued
        # async orchestrator, 'submit'/'status' talk to it over the
        # JSON-line protocol, 'results' queries the result store
        # directly (no service needed).
        from .serve.cli import main as serve_main

        return serve_main(argv)
    parser = argparse.ArgumentParser(
        prog="repro-fqms",
        description="Fair Queuing Memory Systems (MICRO 2006) reproduction; "
        "'repro-fqms lint' runs the contract-aware static analysis, "
        "'repro-fqms perf' compares performance snapshots, and "
        "'repro-fqms sweep' runs batches with live fleet progress, and "
        "'repro-fqms serve|submit|status|results' is the fair-queued "
        "experiment service (each has its own --help)",
    )
    parser.add_argument(
        "experiment",
        choices=FIGURES + ("ablations", "all", "check", "trace", "report", "compare"),
        help="which evaluation artifact to regenerate ('check' runs the "
        "protocol/invariant sanitizers differentially; 'trace' runs one "
        "workload with telemetry and exports a Perfetto trace; 'report' "
        "prints the interval-metrics dashboard; 'compare' ranks "
        "scheduling policies by fairness on the canonical mixes)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=DEFAULT_CYCLES,
        help=f"measurement window per run (default {DEFAULT_CYCLES}; "
        "REPRO_SIM_CYCLES also honoured)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write machine-readable figure rows to this JSON file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent runs (default REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persistent result-cache directory (default REPRO_CACHE_DIR "
        "or ~/.cache/repro-fqms)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this invocation",
    )
    parser.add_argument(
        "--store",
        metavar="ROOT",
        default=None,
        help="serve-service root whose result store figures/compare read "
        "through and record into (the directory 'repro-fqms serve --root' "
        "and 'repro-fqms results --root' use); runs already in the store "
        "are served from it, fresh runs become queryable",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="attach the repro.check runtime validators (DRAM protocol "
        "sanitizer + scheduler invariant checker) to every freshly "
        "simulated run; equivalent to REPRO_CHECK=1",
    )
    parser.add_argument(
        "--engine",
        choices=("cycle", "event"),
        default=None,
        help="simulation engine: 'event' (skip-to-next-event, the "
        "default) or 'cycle' (step every cycle; the differential "
        "oracle); equivalent to REPRO_ENGINE",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach the repro.telemetry observers (request-lifecycle "
        "tracer + interval sampler) to every freshly simulated run; "
        "equivalent to REPRO_TRACE=1 (results are unchanged; batch "
        "runs served from the result cache are not re-traced)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="attach the repro.obs engine-internals metrics registry to "
        "every freshly simulated run; equivalent to REPRO_OBS=1 "
        "(results are unchanged; see also REPRO_OBS_MANIFEST)",
    )
    parser.add_argument(
        "--workload",
        default="vpr,art",
        help="comma-separated benchmark names for 'trace'/'report' "
        "(default vpr,art)",
    )
    parser.add_argument(
        "--policy",
        default="FQ-VFTF",
        help="scheduling policy for 'trace'/'report' (default FQ-VFTF; "
        f"registered: {', '.join(registered_names())})",
    )
    parser.add_argument(
        "--policies",
        default=None,
        help="comma-separated policies for 'compare' (default: every "
        "registered policy)",
    )
    parser.add_argument(
        "--period",
        type=int,
        default=None,
        help="interval-sampler period in cycles for 'trace'/'report' "
        "(default 1000; REPRO_TRACE_PERIOD also honoured)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="Perfetto trace output path for 'trace' (default trace.json)",
    )
    parser.add_argument(
        "--intervals",
        metavar="PATH",
        default=None,
        help="also dump interval metrics for 'trace' (.csv or .jsonl by "
        "extension; the format tools/trace_compare.py diffs)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs <= 0:
        parser.error("--jobs must be positive")
    try:
        canonical(args.policy)
        if args.policies is not None:
            args.policies = [
                canonical(p.strip())
                for p in args.policies.split(",")
                if p.strip()
            ]
    except ValueError as exc:
        parser.error(str(exc))
    if args.check:
        # Via the environment so the parallel engine's worker processes
        # inherit it.  Note cached results are served without
        # re-simulating; use --no-cache to force every run through the
        # checkers.
        os.environ["REPRO_CHECK"] = "1"
    if args.engine is not None:
        # Same environment plumbing as --check: worker processes build
        # their configs from REPRO_ENGINE.  The fingerprint includes the
        # engine, so cached results never cross engines.
        os.environ["REPRO_ENGINE"] = args.engine
    if args.trace:
        # Same environment plumbing again; tracing never changes
        # results, so it is deliberately NOT in cache fingerprints.
        os.environ["REPRO_TRACE"] = "1"
    if args.obs:
        # And once more for the engine-internals metrics registry.
        os.environ["REPRO_OBS"] = "1"
    configure_cache(cache_dir=args.cache_dir, enabled=not args.no_cache)
    store = None
    if args.store:
        from pathlib import Path

        from .serve.store import ResultStore

        # Same layout the serve family uses: manifests + index live
        # under <root>/store, so 'repro-fqms results --root <ROOT>'
        # queries whatever the figures just recorded.
        store = ResultStore(Path(args.store) / "store")

    targets = FIGURES + ("ablations",) if args.experiment == "all" else (args.experiment,)
    json_payloads = []
    for target in targets:
        started = time.time()  # det: allow(wall-clock) user-facing timing
        if target == "ablations":
            body = _run_ablations(args.cycles, args.seed)
        elif target == "check":
            from .check.harness import differential_report

            body = differential_report(args.cycles, args.seed)
        elif target in ("trace", "report"):
            body = _run_trace(args, export=target == "trace")
        elif target == "compare":
            from .experiments.fairness import (
                fairness_payload,
                render_fairness,
                run_fairness,
            )

            outcomes = run_fairness(
                policies=args.policies,
                cycles=args.cycles,
                seed=args.seed,
                jobs=args.jobs,
                store=store,
            )
            body = render_fairness(outcomes)
            payload = fairness_payload(outcomes)
            payload["figure"] = "compare"
            json_payloads.append(payload)
        else:
            result = _run_figure(
                target, args.cycles, args.seed, jobs=args.jobs, store=store
            )
            body = result.render()
            json_payloads.append(_figure_json(target, result))
        elapsed = time.time() - started  # det: allow(wall-clock)
        print(f"=== {target} ({elapsed:.0f}s) ===")
        print(body)
        print()
    if args.json and json_payloads:
        with open(args.json, "w") as handle:
            json.dump(json_payloads, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
