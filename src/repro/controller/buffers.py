"""Per-thread partitioned controller buffers with NACK back-pressure.

The paper statically partitions the memory controller's transaction
buffer (16 entries per thread) and write buffer (8 entries per
thread).  When a thread's partition is full the controller NACKs new
requests from that thread, applying back-pressure to that thread
*independently* of the other threads on the CMP.
"""

from __future__ import annotations

from typing import Dict

from .request import MemoryRequest, RequestKind


class PartitionedBuffers:
    """Occupancy accounting for the transaction and write buffers."""

    def __init__(
        self,
        num_threads: int,
        read_entries_per_thread: int = 16,
        write_entries_per_thread: int = 8,
    ):
        if num_threads <= 0:
            raise ValueError(f"need at least one thread, got {num_threads}")
        if read_entries_per_thread <= 0 or write_entries_per_thread <= 0:
            raise ValueError("buffer partitions must hold at least one entry")
        self.num_threads = num_threads
        self.read_capacity = read_entries_per_thread
        self.write_capacity = write_entries_per_thread
        self._reads: Dict[int, int] = {t: 0 for t in range(num_threads)}
        self._writes: Dict[int, int] = {t: 0 for t in range(num_threads)}
        self.nack_count: Dict[int, int] = {t: 0 for t in range(num_threads)}
        #: Occupancy version, bumped on every reserve/release.  The
        #: event engine's acceptance and writeback-unblock probes are
        #: pure functions of occupancy, so a probe that came up negative
        #: stays negative until this counter moves — which lets the
        #: engine skip re-probing untouched channels entirely.
        self.version = 0

    def _counts(self, kind: RequestKind) -> Dict[int, int]:
        return self._reads if kind is RequestKind.READ else self._writes

    def _capacity(self, kind: RequestKind) -> int:
        return self.read_capacity if kind is RequestKind.READ else self.write_capacity

    def can_accept(self, thread_id: int, kind: RequestKind) -> bool:
        """True when thread ``thread_id`` has a free entry for ``kind``."""
        return self._counts(kind)[thread_id] < self._capacity(kind)

    def reserve(self, request: MemoryRequest) -> bool:
        """Claim an entry for ``request``; False (a NACK) when full."""
        counts = self._counts(request.kind)
        if counts[request.thread_id] >= self._capacity(request.kind):
            self.nack_count[request.thread_id] += 1
            return False
        counts[request.thread_id] += 1
        self.version += 1
        return True

    def release(self, request: MemoryRequest) -> None:
        """Free the entry held by a completed ``request``."""
        counts = self._counts(request.kind)
        if counts[request.thread_id] <= 0:
            raise ValueError(
                f"release without reserve: thread {request.thread_id} "
                f"{request.kind.value}"
            )
        counts[request.thread_id] -= 1
        self.version += 1

    def occupancy(self, thread_id: int, kind: RequestKind) -> int:
        return self._counts(kind)[thread_id]

    def total_occupancy(self) -> int:
        return sum(self._reads.values()) + sum(self._writes.values())

    def total_reads(self) -> int:
        return sum(self._reads.values())

    def total_writes(self) -> int:
        return sum(self._writes.values())
