"""The memory controller: buffers, schedulers, VTMS, statistics.

Ties together the paper's Figure 2 (transaction/write buffers, bank
schedulers, channel scheduler) and Figure 3 (per-thread VTMS registers
and finish-time logic).  The controller accepts cache-line requests
from the cores, NACKs a thread whose buffer partition is full, runs
one scheduling decision per cycle, and reports completed reads back to
the system.
"""

from __future__ import annotations

import heapq
from collections import deque, namedtuple
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..check import RunChecker

from ..core.policies import FR_FCFS
from ..core.shares import equal_shares, validate_shares
from ..policy.base import SchedulingPolicy
from ..core.vtms import VtmsState
from ..dram.commands import CommandType
from ..dram.dram_system import DramSystem
from .address_map import AddressMap
from .bank_scheduler import BankScheduler, CandidateCommand
from .buffers import PartitionedBuffers
from .channel_scheduler import ChannelScheduler
from .request import MemoryRequest


class ControllerStats:
    """Raw counters the metrics layer turns into paper numbers."""

    #: Power-of-two read-latency bucket boundaries (cycles).
    LATENCY_BUCKETS = (128, 256, 512, 1024, 2048, 4096)

    def __init__(self, num_threads: int):
        self.read_latency_sum = [0] * num_threads
        self.read_count = [0] * num_threads
        self.prefetch_count = [0] * num_threads
        self.write_count = [0] * num_threads
        self.cas_cycles = [0] * num_threads
        self.requests_accepted = [0] * num_threads
        self.requests_nacked = [0] * num_threads
        self.commands_issued: Dict[CommandType, int] = {k: 0 for k in CommandType}
        #: Per-thread histogram: bucket i counts latencies <= bound i,
        #: with one trailing overflow bucket.
        self.latency_histogram = [
            [0] * (len(self.LATENCY_BUCKETS) + 1) for _ in range(num_threads)
        ]

    def mean_read_latency(self, thread_id: int) -> float:
        if self.read_count[thread_id] == 0:
            return 0.0
        return self.read_latency_sum[thread_id] / self.read_count[thread_id]

    def record_latency(self, thread_id: int, latency: int) -> None:
        for i, bound in enumerate(self.LATENCY_BUCKETS):
            if latency <= bound:
                self.latency_histogram[thread_id][i] += 1
                return
        self.latency_histogram[thread_id][-1] += 1

    def latency_percentile(self, thread_id: int, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile.

        Returns the overflow marker (last bucket bound doubled) when the
        percentile lies beyond the tracked range.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        histogram = self.latency_histogram[thread_id]
        total = sum(histogram)
        if total == 0:
            return 0
        needed = fraction * total
        seen = 0
        for i, count in enumerate(histogram):
            seen += count
            if seen >= needed:
                if i < len(self.LATENCY_BUCKETS):
                    return self.LATENCY_BUCKETS[i]
                return self.LATENCY_BUCKETS[-1] * 2
        return self.LATENCY_BUCKETS[-1] * 2


#: One entry of the optional command log: what issued, where, when,
#: and on behalf of which thread (None for auto-precharges of unowned
#: rows).
LoggedCommand = namedtuple(
    "LoggedCommand", ["cycle", "kind", "rank", "bank", "row", "thread"]
)


class MemoryController:
    """A multi-thread DDR2 memory controller with pluggable scheduling."""

    def __init__(
        self,
        dram: DramSystem,
        address_map: AddressMap,
        num_threads: int,
        policy: SchedulingPolicy = FR_FCFS,
        shares: Optional[Sequence[float]] = None,
        read_entries_per_thread: int = 16,
        write_entries_per_thread: int = 8,
        row_policy: str = "closed",
        write_drain: str = "fcfs",
    ):
        if write_drain not in ("fcfs", "watermark"):
            raise ValueError(
                f"write_drain must be 'fcfs' or 'watermark', got {write_drain!r}"
            )
        self.dram = dram
        self.address_map = address_map
        self.num_threads = num_threads
        self.policy = policy
        self.buffers = PartitionedBuffers(
            num_threads, read_entries_per_thread, write_entries_per_thread
        )
        if shares is None:
            shares = equal_shares(num_threads)
        self.shares = validate_shares(shares)
        self.vtms: Optional[VtmsState] = None
        if policy.uses_vtms:
            # One VTMS bank register per (rank, bank) pair.
            self.vtms = VtmsState(
                self.shares, dram.num_banks * dram.num_ranks, dram.timing
            )
        bound = policy.inversion_bound
        if bound is None:
            bound = dram.timing.t_ras
        self.bank_schedulers: List[BankScheduler] = [
            BankScheduler(
                rank, bank.index, dram, policy, self.vtms, bound,
                row_policy=row_policy,
            )
            for rank, bank in dram.iter_banks()
        ]
        self._scheduler_index = {
            (s.rank, s.bank): s for s in self.bank_schedulers
        }
        self.channel_scheduler = ChannelScheduler(self.bank_schedulers)
        self.stats = ControllerStats(num_threads)
        #: Min-heap of (completion_time, seq, request) for in-flight data.
        self._in_flight: List[Tuple[int, int, MemoryRequest]] = []
        #: Scheduling sleep: no command can become ready before this
        #: cycle unless a new request arrives (which resets it).
        self._sleep_until = 0
        #: Optional bounded trace of issued commands (debug/analysis).
        self.command_log: Optional[deque] = None
        #: Write-drain policy: "fcfs" schedules writes like reads (the
        #: paper's behaviour); "watermark" holds writebacks until the
        #: write buffers fill past a high watermark (or no reads are
        #: pending), then drains them in a burst to the low watermark —
        #: trading write latency for fewer bus turnarounds.
        self.write_drain = write_drain
        total_write_capacity = write_entries_per_thread * num_threads
        self._drain_high = max(1, int(total_write_capacity * 0.75))
        self._drain_low = max(0, int(total_write_capacity * 0.25))
        self._drain_active = False
        #: Pending (queued but not CAS-issued) requests per thread, for
        #: Ra_i maintenance and occupancy queries.
        self._pending: List[Set[MemoryRequest]] = [set() for _ in range(num_threads)]
        #: Total size of the _pending sets, kept in lockstep so the
        #: busy/has-work probes are O(1).
        self._pending_total = 0
        #: FQ policies cache wake bounds that read VTMS registers, so
        #: every register mutation (all flow through try_enqueue and
        #: _issue) must drop every cached bound, not just the touched
        #: bank's.
        self._fq_invalidate = policy.fq_bank_rule and self.vtms is not None
        #: Stateful policies (BLISS, MISE, ...) get lifecycle hooks;
        #: None for the stateless paper policies, so the hook sites
        #: below cost one attribute test each.
        self._policy_hooks: Optional[SchedulingPolicy] = (
            policy if policy.has_hooks else None
        )
        #: Optional runtime checker (repro.check); None in normal runs,
        #: so the per-event hooks below cost one attribute test each.
        self.checker: Optional["RunChecker"] = None
        #: Optional run telemetry (repro.telemetry), same pattern.
        self.telemetry = None
        self.now = 0

    # -- request entry ---------------------------------------------------

    def try_enqueue(self, request: MemoryRequest) -> bool:
        """Accept ``request`` at the current cycle, or NACK (return False).

        On acceptance the request is decoded to SDRAM coordinates and
        placed in its bank scheduler's queue.
        """
        if not self.buffers.reserve(request):
            self.stats.requests_nacked[request.thread_id] += 1
            return False
        request.arrival_time = self.now
        request.rank, request.bank, request.row, request.column = (
            self.address_map.decode(request.address)
        )
        if self.vtms is not None:
            request.virtual_arrival = self.vtms.clock
        else:
            request.virtual_arrival = float(self.now)
        if self.vtms is not None and self.policy.arrival_accounting:
            # §3.2 solution 1: fix the finish-time now from an assumed
            # average bank service; no per-command updates later.
            flat_bank = request.rank * self.dram.num_banks + request.bank
            request.virtual_finish_time = self.vtms[
                request.thread_id
            ].on_request_arrival(
                flat_bank,
                request.virtual_arrival,
                self.dram.timing.service_closed,
            )
        self._scheduler_index[(request.rank, request.bank)].add(request)
        if self._fq_invalidate:
            # The arrival may move VTMS registers (oldest-arrival reset,
            # arrival accounting), which every bank's wake bound reads.
            self.channel_scheduler.invalidate_all()
        else:
            self.channel_scheduler.invalidate(request.rank, request.bank)
        self._pending[request.thread_id].add(request)
        self._pending_total += 1
        self._refresh_oldest_arrival(request.thread_id)
        self.stats.requests_accepted[request.thread_id] += 1
        self._sleep_until = 0
        if self.checker is not None:
            self.checker.on_accept(request, self.now)
        if self.telemetry is not None:
            self.telemetry.on_accept(request, self.now)
        if self._policy_hooks is not None:
            self._policy_hooks.on_arrival(request, self.now)
        return True

    def _refresh_oldest_arrival(self, thread_id: int) -> None:
        if self.vtms is None:
            return
        pending = self._pending[thread_id]
        oldest = min((r.virtual_arrival for r in pending), default=None)
        self.vtms.set_oldest_arrival(thread_id, oldest)

    # -- occupancy queries (used by cores for back-pressure) -----------------

    def pending_requests(self, thread_id: int) -> int:
        return len(self._pending[thread_id])

    def has_work(self) -> bool:
        """True when any request is queued or data is in flight."""
        return bool(self._in_flight) or self._pending_total > 0

    # -- per-cycle scheduling --------------------------------------------------

    def tick(self, now: int) -> List[MemoryRequest]:
        """Run one controller cycle; return reads whose data completed."""
        self.now = now
        if self._policy_hooks is not None:
            # No-op except at the boundaries the policy publishes via
            # next_event_time, which keeps the event engine
            # bit-identical (skipped cycles are provably no-ops).
            self._policy_hooks.on_cycle(now)
        completed = self._pop_completed(now)
        in_refresh = self.dram.in_refresh(now)

        if not in_refresh:
            draining = self.dram.refresh_due(now)
            if draining and self.dram.try_start_refresh(now):
                # Nothing can issue until the refresh completes, and the
                # start cycle itself counts as a refresh cycle.
                self._sleep_until = self.dram.refresh_end or now
                in_refresh = True
                # Refresh resets every bank (rows closed, t_rfc timing),
                # so cached wake bounds no longer describe anything.
                self.channel_scheduler.invalidate_all()
                if self.checker is not None:
                    self.checker.on_refresh(now)
            else:
                if self._update_write_drain():
                    # Eligibility flipped: previously computed sleep and
                    # wake bounds no longer describe the candidate set.
                    self._sleep_until = 0
                    self.channel_scheduler.invalidate_all()
                if now >= self._sleep_until:
                    cand = self.channel_scheduler.select(
                        now, draining_for_refresh=draining
                    )
                    if cand is not None:
                        self._issue(cand, now)
                        self._sleep_until = 0
                    else:
                        self._sleep_until = self._compute_sleep(now)

        if self.vtms is not None:
            self.vtms.tick(in_refresh=in_refresh)
        return completed

    def _update_write_drain(self) -> bool:
        """Refresh the write-drain gate; True when eligibility flipped."""
        if self.write_drain == "fcfs":
            return False
        writes = self.buffers.total_writes()
        reads = self.buffers.total_reads()
        if self._drain_active:
            if writes <= self._drain_low:
                self._drain_active = False
        elif writes >= self._drain_high:
            self._drain_active = True
        eligible = self._drain_active or reads == 0
        if eligible == self.bank_schedulers[0].writes_eligible:
            return False
        for scheduler in self.bank_schedulers:
            scheduler.writes_eligible = eligible
        return True

    def _compute_sleep(self, now: int) -> int:
        """First future cycle a command could become ready (no arrivals)."""
        wake = self.channel_scheduler.min_wake(now)
        if wake is None:
            # No queued work at all: sleep until something arrives
            # (arrival resets the sleep) or a refresh falls due.
            wake = now + self.dram.timing.t_refi
        if self.dram.enable_refresh and self.dram.next_refresh_due is not None:
            wake = min(wake, max(now + 1, self.dram.next_refresh_due))
        return wake

    def enable_command_log(self, capacity: int = 10_000) -> None:
        """Start recording issued commands (bounded ring buffer)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.command_log = deque(maxlen=capacity)

    def _issue(self, cand: CandidateCommand, now: int) -> None:
        self.dram.issue(cand.kind, cand.rank, cand.bank, cand.row, now)
        if self.checker is not None:
            self.checker.on_command(cand, now)
        self.stats.commands_issued[cand.kind] += 1
        if self.command_log is not None:
            self.command_log.append(
                LoggedCommand(
                    cycle=now,
                    kind=cand.kind,
                    rank=cand.rank,
                    bank=cand.bank,
                    row=cand.row,
                    thread=cand.charge_thread,
                )
            )
        scheduler = self._scheduler_index[(cand.rank, cand.bank)]
        scheduler.on_issue(cand, now)
        if self._policy_hooks is not None:
            self._policy_hooks.on_issue(cand, now)
        if self._fq_invalidate:
            # The issue moves VTMS registers (service accounting below,
            # oldest-arrival refresh on CAS); see _fq_invalidate.
            self.channel_scheduler.invalidate_all()
        else:
            self.channel_scheduler.invalidate(cand.rank, cand.bank)

        if (
            self.vtms is not None
            and cand.charge_thread is not None
            and not self.policy.arrival_accounting
        ):
            flat_bank = cand.rank * self.dram.num_banks + cand.bank
            self.vtms[cand.charge_thread].on_command_issued(
                cand.kind, flat_bank, cand.charge_arrival
            )

        request = cand.request
        if request is not None and cand.kind.is_cas:
            request.cas_issued_at = now
            if cand.kind is CommandType.READ:
                done = self.dram.read_data_available(now)
                if request.prefetch:
                    self.stats.prefetch_count[request.thread_id] += 1
                else:
                    self.stats.read_count[request.thread_id] += 1
            else:
                done = self.dram.write_data_done(now)
                self.stats.write_count[request.thread_id] += 1
            self.stats.cas_cycles[request.thread_id] += self.dram.timing.burst
            request.completed_at = done
            heapq.heappush(self._in_flight, (done, request.seq, request))
            pending = self._pending[request.thread_id]
            before = len(pending)
            pending.discard(request)
            self._pending_total -= before - len(pending)
            self._refresh_oldest_arrival(request.thread_id)

    def _pop_completed(self, now: int) -> List[MemoryRequest]:
        completed: List[MemoryRequest] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            _, _, request = heapq.heappop(self._in_flight)
            self.buffers.release(request)
            if self.checker is not None:
                self.checker.on_complete(request, now)
            if self.telemetry is not None:
                self.telemetry.on_complete(request, now)
            if self._policy_hooks is not None:
                self._policy_hooks.on_complete(request, now)
            if request.is_read:
                if not request.prefetch:
                    latency = request.latency()
                    self.stats.read_latency_sum[request.thread_id] += latency
                    self.stats.record_latency(request.thread_id, latency)
                completed.append(request)
        return completed

    # -- event-driven engine support ---------------------------------------------

    def next_event_time(self, now: int) -> Optional[int]:
        """Earliest cycle ≥ ``now`` at which this controller's tick could
        do real work — complete in-flight data, start or finish a
        refresh, or issue a command — assuming no new request is
        accepted first (an acceptance happens only at a stepped cycle
        and resets ``_sleep_until``).

        A conservative answer (too early) is always safe: the engine
        just steps a no-op cycle.  ``None`` means fully idle: nothing
        queued, nothing in flight, refresh disabled.
        """
        candidates: List[int] = []
        if self._in_flight:
            candidates.append(self._in_flight[0][0])
        refresh_end = self.dram.refresh_end
        if refresh_end is not None and refresh_end > now:
            # Mid-refresh: scheduling is blacked out until it completes
            # (data already in flight still drains via the bound above).
            candidates.append(refresh_end)
        elif self.dram.refresh_due(now):
            # Refresh pending: the drain — precharging open banks, then
            # the REF command once every bank is idle — is a
            # cycle-by-cycle negotiation, so step through it.  Bounded
            # by t_rp plus in-flight CAS completions, so it is short.
            candidates.append(now)
        else:
            busy = self._pending_total > 0 or self.dram.open_banks > 0
            if busy:
                # The scheduling sleep (set by the last tick) bounds
                # when a command could next become ready.
                candidates.append(max(now, self._sleep_until))
            if self.dram.enable_refresh and self.dram.next_refresh_due is not None:
                candidates.append(max(now, self.dram.next_refresh_due))
        if self._policy_hooks is not None:
            # Always fold the policy's boundary in — even when the
            # controller is otherwise idle — so epoch/interval ticks
            # (blacklist clears, slowdown snapshots) are stepped at
            # exactly the cycle the per-cycle engine would run them.
            wake = self._policy_hooks.next_event_time(now)
            if wake is not None:
                candidates.append(max(now, wake))
        if not candidates:
            return None
        return min(candidates)

    def skip_cycles(self, now: int, target: int) -> None:
        """Fast-forward over the no-op cycles ``[now, target)``.

        Only legal when :meth:`next_event_time` proved no tick in the
        span does real work.  The FQ real clock advances by the skipped
        span minus any overlap with an in-progress refresh (the clock
        freezes during refresh).  ``self.now`` lands on ``target - 1``
        — exactly where ``tick(target - 1)`` would have left it — so a
        request delivered at cycle ``target`` (delivery precedes the
        tick) stamps the same arrival time under both engines.
        """
        if target <= now:
            return
        if self.vtms is not None:
            skipped = target - now
            refresh_end = self.dram.refresh_end
            if refresh_end is not None and refresh_end > now:
                skipped -= min(refresh_end, target) - now
            self.vtms.clock += skipped
        self.now = target - 1

    def skip_interface_nacks(self, thread_id: int, cycles: int) -> None:
        """Account ``cycles`` of per-cycle head-of-queue retry NACKs.

        The system retries each non-empty interface queue's head once
        per cycle; over a skipped span in which the head would have
        been rejected throughout, that is one buffer NACK and one
        controller NACK per cycle.
        """
        if cycles <= 0:
            return
        self.stats.requests_nacked[thread_id] += cycles
        self.buffers.nack_count[thread_id] += cycles

    # -- reporting ----------------------------------------------------------------

    def data_bus_utilization(self, cycles: int) -> float:
        return self.dram.channel.utilization(cycles)

    def thread_bus_utilization(self, thread_id: int, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.stats.cas_cycles[thread_id] / cycles

    def bank_utilization(self, cycles: int) -> float:
        """Mean fraction of time banks spend between activate and precharge."""
        if cycles <= 0:
            return 0.0
        total = sum(
            bank.busy_cycles_at(self.now) for _, bank in self.dram.iter_banks()
        )
        return total / (cycles * self.dram.num_banks * self.dram.num_ranks)
