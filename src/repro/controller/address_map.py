"""Physical-address to SDRAM-coordinate mapping.

Implements the XOR bank mapping of Lin et al. [HPCA'01] used by the
paper: the bank index is XORed with the low-order row bits so that
strided streams that would otherwise camp on one bank spread across
all banks, while row locality within a bank is preserved.

Address layout (most-significant to least-significant):

    | row | rank | bank | column | channel | line offset |

Channel bits sit just above the line offset, so consecutive cache
lines interleave across channels (maximum bandwidth spreading) while
each channel still sees sequential columns within a row.  The paper's
evaluation is single-channel (channel bits absent); multi-channel
support is this reproduction's future-work extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


def _log2_exact(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Maps line-aligned physical addresses to (rank, bank, row, column).

    Attributes:
        line_bytes: Cache-line size in bytes (offset bits).
        num_ranks / num_banks: Memory topology (powers of two).
        columns_per_row: Cache lines per SDRAM row (row-buffer size /
            line size).  A 2KB page of 64-byte lines has 32 columns.
        num_channels: Independent memory channels (line-interleaved).
        xor_bank: Enable the XOR bank-index permutation.
    """

    line_bytes: int = 64
    num_ranks: int = 1
    num_banks: int = 8
    columns_per_row: int = 32
    num_channels: int = 1
    xor_bank: bool = True

    def __post_init__(self) -> None:
        _log2_exact(self.line_bytes, "line_bytes")
        _log2_exact(self.num_ranks, "num_ranks")
        _log2_exact(self.num_banks, "num_banks")
        _log2_exact(self.columns_per_row, "columns_per_row")
        _log2_exact(self.num_channels, "num_channels")

    @property
    def offset_bits(self) -> int:
        return _log2_exact(self.line_bytes, "line_bytes")

    @property
    def channel_bits(self) -> int:
        return _log2_exact(self.num_channels, "num_channels")

    @property
    def column_bits(self) -> int:
        return _log2_exact(self.columns_per_row, "columns_per_row")

    @property
    def bank_bits(self) -> int:
        return _log2_exact(self.num_banks, "num_banks")

    @property
    def rank_bits(self) -> int:
        return _log2_exact(self.num_ranks, "num_ranks")

    def channel_of(self, address: int) -> int:
        """The memory channel serving ``address``."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        return (address >> self.offset_bits) & (self.num_channels - 1)

    def decode(self, address: int) -> Tuple[int, int, int, int]:
        """Decode a physical byte address to (rank, bank, row, column).

        Channel bits are stripped: the coordinates are within the
        channel identified by :meth:`channel_of`.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line = address >> (self.offset_bits + self.channel_bits)
        column = line & (self.columns_per_row - 1)
        line >>= self.column_bits
        bank = line & (self.num_banks - 1)
        line >>= self.bank_bits
        rank = line & (self.num_ranks - 1)
        line >>= self.rank_bits
        row = line
        if self.xor_bank:
            bank ^= row & (self.num_banks - 1)
        return rank, bank, row, column

    def encode(
        self, rank: int, bank: int, row: int, column: int, channel: int = 0
    ) -> int:
        """Inverse of :meth:`decode`; returns the line's byte address."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= column < self.columns_per_row:
            raise ValueError(f"column {column} out of range")
        if not 0 <= channel < self.num_channels:
            raise ValueError(f"channel {channel} out of range")
        if row < 0:
            raise ValueError(f"row {row} out of range")
        if self.xor_bank:
            bank ^= row & (self.num_banks - 1)
        line = row
        line = (line << self.rank_bits) | rank
        line = (line << self.bank_bits) | bank
        line = (line << self.column_bits) | column
        line = (line << self.channel_bits) | channel
        return line << self.offset_bits
