"""Memory request objects and their lifecycle.

A request is created by a core's cache hierarchy (a demand read miss
or a dirty-line writeback), mapped to (rank, bank, row, column) by the
address mapper, and held in the controller's transaction buffer until
its CAS command has issued to the SDRAM.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class RequestKind(enum.Enum):
    """Demand read (fills a cache line) or writeback (evicted dirty line)."""

    READ = "read"
    WRITE = "write"


_sequence = itertools.count()


def _next_sequence() -> int:
    return next(_sequence)


@dataclass(eq=False)
class MemoryRequest:
    """One cache-line-sized memory transaction.

    Attributes:
        thread_id: Hardware thread (core) that generated the request.
        kind: Read or writeback.
        address: Physical byte address of the cache line.
        arrival_time: Cycle the request arrived at the memory controller.
        rank / bank / row / column: Decoded SDRAM coordinates.
        seq: Global monotonically increasing tie-breaker; two requests
            never compare equal under FCFS ordering.
        virtual_arrival: Arrival time on the FQ scheduler's real clock
            (which pauses during refresh periods).
        virtual_finish_time: Most recent VTMS finish-time estimate; set
            by the FQ scheduler each time the request is considered.
        cas_issued_at: Cycle the data-moving command issued, or None.
        completed_at: Cycle the last data beat transferred, or None.
    """

    thread_id: int
    kind: RequestKind
    address: int
    arrival_time: int
    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0
    seq: int = field(default_factory=_next_sequence)
    #: True for hardware-prefetch reads: they move data and consume
    #: bandwidth like demand reads but are excluded from the demand
    #: read-latency statistics.
    prefetch: bool = False
    virtual_arrival: float = 0.0
    virtual_start_time: float = 0.0
    virtual_finish_time: float = 0.0
    #: Cache stamps for the finish-time estimate — the owning thread's
    #: VTMS epoch and the bank's row epoch at the last recompute; the
    #: estimate is refreshed only when either moves.  -1 = never set.
    vft_thread_epoch: int = -1
    vft_row_epoch: int = -1
    #: Memoized policy ordering key (packed int or tuple, per the
    #: scheduler's key path); invalidated (set to ``None``) whenever the
    #: finish-time estimate is refreshed.  Policies whose keys are fixed
    #: at arrival never invalidate it.
    key_cache: Optional[object] = None
    cas_issued_at: Optional[int] = None
    completed_at: Optional[int] = None

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def latency(self) -> int:
        """Cycles from controller arrival to data completion."""
        if self.completed_at is None:
            raise ValueError("request has not completed")
        return self.completed_at - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.kind.value} t{self.thread_id} addr={self.address:#x} "
            f"b{self.bank} r{self.row} @{self.arrival_time}>"
        )
