"""Per-bank scheduler: request selection and command generation.

Each SDRAM bank has a logical priority queue and a bank scheduler
(paper §2.2, Figure 2).  Every cycle the bank scheduler nominates at
most one candidate SDRAM command to the channel scheduler:

* the next command of the pending request it currently favours
  (activate for a closed bank, CAS for an open-row hit, precharge for
  a conflict), or
* a closed-page auto-precharge when the open row has no pending
  accesses left.

Under FR policies the favourite is recomputed every cycle with
first-ready priority.  Under the FQ bank rule (paper §3.3) the bank
commits to the earliest-virtual-finish-time request once the bank has
been active for ``x`` cycles, bounding priority-inversion blocking
time at the cost of some data-bus utilization.

Two hot-path mechanisms keep selection cheap (docs/INTERNALS.md,
"Hot-path kernels"):

* **Packed keys** — policies that declare a key layout
  (``key_field_specs``) are compared as single ints; the full priority
  ``ready → CAS-over-RAS → key`` becomes one integer with penalty bits
  above the key width, so the selection loop does one C-level compare
  per request.  Policies without a layout (and every policy under
  ``REPRO_PACKED_KEYS=0``) run the original tuple loops, which remain
  the differential oracle.
* **Queue-shape counters** — the scheduler maintains read/write and
  row-hit counts, so "which command kinds does this bank need?"
  (:meth:`kind_mask`) is O(1) and wake bounds come from the DRAM
  system's batched legality kernel instead of a queue walk.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.vtms import VtmsState
from ..dram.commands import CommandType
from ..dram.dram_system import DramSystem
from ..dram.legality import MASK_ACT, MASK_PRE, MASK_READ, MASK_WRITE
from ..policy.base import SchedulingPolicy
from ..policy.packing import packed_keys_enabled, total_bits
from .request import MemoryRequest


class CandidateCommand:
    """A command a bank scheduler offers to the channel scheduler."""

    __slots__ = (
        "kind",
        "rank",
        "bank",
        "row",
        "ready",
        "key",
        "request",
        "charge_thread",
        "charge_arrival",
    )

    def __init__(
        self,
        kind: CommandType,
        rank: int,
        bank: int,
        row: int,
        ready: bool,
        key: object,
        request: Optional[MemoryRequest],
        charge_thread: Optional[int],
        charge_arrival: float,
    ):
        self.kind = kind
        self.rank = rank
        self.bank = bank
        self.row = row
        self.ready = ready
        #: Policy ordering key of the request being served (lower =
        #: higher priority): a packed int on the packed-key path, the
        #: policy's ordering tuple otherwise.  Auto-precharges sort
        #: after all request-driven work in either representation.
        self.key = key
        self.request = request
        #: Thread charged for this command in the VTMS update (the
        #: request's thread, or for auto-precharge the thread that
        #: opened the row).
        self.charge_thread = charge_thread
        #: Arrival time a_i^k used by the VTMS update equations.
        self.charge_arrival = charge_arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidateCommand(kind={self.kind!r}, rank={self.rank}, "
            f"bank={self.bank}, row={self.row}, ready={self.ready}, "
            f"key={self.key!r}, request={self.request!r})"
        )


#: Ordering key that sorts auto-precharge candidates after any request
#: (tuple path; the packed path uses ``1 << key_bits``).
_AUTO_PRECHARGE_KEY = (float("inf"),)

#: Wake bound meaning "this bank has no work at all"; stays cached
#: until a request arrives for the bank.
IDLE_BOUND = 1 << 62


class BankScheduler:
    """Scheduler and pending-request queue for one (rank, bank) pair."""

    def __init__(
        self,
        rank: int,
        bank: int,
        dram: DramSystem,
        policy: SchedulingPolicy,
        vtms: Optional[VtmsState],
        inversion_bound: int,
        row_policy: str = "closed",
    ):
        if row_policy not in ("closed", "open"):
            raise ValueError(f"row_policy must be 'closed' or 'open', got {row_policy!r}")
        self.rank = rank
        self.bank = bank
        self.dram = dram
        #: Direct reference to this scheduler's Bank object (created
        #: once by the DRAM system and never replaced).
        self._bank = dram.bank(rank, bank)
        self.policy = policy
        self.vtms = vtms
        self.inversion_bound = inversion_bound
        #: Flat (rank, bank) index into the per-thread VTMS bank
        #: registers — distinct banks in distinct ranks are distinct
        #: VTMS resources.  The legality kernel uses the same flat
        #: numbering.
        self.vtms_bank_index = rank * dram.num_banks + bank
        #: "closed" precharges a row once its pending accesses drain
        #: (the paper's choice); "open" leaves rows open until a
        #: conflicting request or a refresh needs the bank.
        self.row_policy = row_policy
        #: Write-drain gating (set each cycle by the controller): when
        #: False, write requests are held back so reads proceed without
        #: bus-turnaround penalties.
        self.writes_eligible = True
        #: Optional run telemetry (repro.telemetry); None in normal
        #: runs, so the issue hook costs one attribute test.
        self.telemetry = None
        #: Optional policy-key memo counters (repro.obs); None in
        #: normal runs.  RunObs.attach also rebinds ``_request_key`` /
        #: ``_key_of`` to counting closures, so only the two loops that
        #: inline the memo consult this attribute directly.
        self.obs_keys = None
        self.queue: List[MemoryRequest] = []
        #: Queue-shape counters over the FULL queue (ignoring the
        #: write-drain gate): request counts by kind and how many of
        #: each hit the currently open row.  They make the candidate
        #: prologue and :meth:`kind_mask` O(1).
        self._n_read = 0
        self._n_write = 0
        self._n_read_hit = 0
        self._n_write_hit = 0
        #: The open row the hit counters were computed against; when the
        #: bank's live row differs (state mutated without
        #: :meth:`on_issue`, e.g. tests poking the DRAM directly), the
        #: counters self-heal with a recount.
        self._counted_row: Optional[int] = None
        # Bookkeeping for charging auto-precharges to the thread that
        # opened the row.
        self.open_row_thread: Optional[int] = None
        self.open_row_arrival: float = 0.0
        #: Bumped when the bank's row state changes; finish-time
        #: estimates depend on it through Table 3's service times.
        self._row_epoch = 0
        #: Bumped on queue membership changes; part of the scan stamp
        #: that lets :meth:`_refresh_finish_times` skip entirely.
        self._queue_version = 0
        #: Inputs of the last finish-time scan (all three are monotone
        #: counters, so equality means "nothing moved").
        self._scan_global = -1
        self._scan_row = -1
        self._scan_queue = -1
        #: Packed-key path: the policy declares a key layout and packed
        #: keys are enabled.  Penalty bits sit above the key width so
        #: the full priority (ready, CAS-over-RAS, key) is one int.
        specs = policy.key_field_specs()
        self._packed = specs is not None and packed_keys_enabled()
        if self._packed:
            bits = total_bits(specs)
            self._key_bits = bits
            self._auto_key: object = 1 << bits
            self._cas_pen = 1 << (bits + 1)
            self._ready_pen = 1 << (bits + 2)
            self._sort_limit = 1 << (bits + 3)
            self._key_of = policy.packed_key
            if policy.memoize_keys and not policy.key_over_cas:
                self.candidate = self._candidate_packed  # type: ignore[method-assign]
            else:
                self.candidate = self._candidate_packed_generic  # type: ignore[method-assign]
        else:
            self._auto_key = _AUTO_PRECHARGE_KEY
            self._key_of = policy.request_key
            if not (policy.memoize_keys and not policy.key_over_cas):
                self.candidate = self._candidate_generic  # type: ignore[method-assign]
        if not policy.memoize_keys:
            self._request_key = self._key_of  # type: ignore[method-assign]
        if policy.uses_vtms and vtms is None:
            raise ValueError(f"policy {policy.name} requires VTMS state")

    # -- queue management --------------------------------------------------

    def add(self, request: MemoryRequest) -> None:
        self._ensure_counts()
        self.queue.append(request)
        self._queue_version += 1
        if request.is_read:
            self._n_read += 1
            if request.row == self._counted_row:
                self._n_read_hit += 1
        else:
            self._n_write += 1
            if request.row == self._counted_row:
                self._n_write_hit += 1

    def remove(self, request: MemoryRequest) -> None:
        self._ensure_counts()
        self.queue.remove(request)
        self._queue_version += 1
        if request.is_read:
            self._n_read -= 1
            if request.row == self._counted_row:
                self._n_read_hit -= 1
        else:
            self._n_write -= 1
            if request.row == self._counted_row:
                self._n_write_hit -= 1

    def _ensure_counts(self) -> None:
        if self._bank.open_row != self._counted_row:
            self._recount_hits()

    def _recount_hits(self) -> None:
        """Rebuild the row-hit counters against the bank's live open row."""
        open_row = self._bank.open_row
        read_hit = write_hit = 0
        if open_row is not None:
            for request in self.queue:
                if request.row == open_row:
                    if request.is_read:
                        read_hit += 1
                    else:
                        write_hit += 1
        self._n_read_hit = read_hit
        self._n_write_hit = write_hit
        self._counted_row = open_row

    def __len__(self) -> int:
        return len(self.queue)

    # -- helpers -------------------------------------------------------------

    def _bank_state(self):
        return self._bank

    def _request_key(self, request: MemoryRequest) -> object:
        """Policy ordering key (packed int or tuple), memoized per request.

        FR-FCFS keys are fixed at arrival; VTMS keys change only when
        :meth:`_refresh_finish_times` recomputes a request's estimate,
        which clears ``key_cache`` — so the key is rebuilt exactly when
        its inputs changed.  Policies whose keys read mutable policy
        state opt out of the memo (``memoize_keys`` False):
        construction rebinds this name to the raw key function, so they
        recompute every call and the memoizing path stays branch-free.
        """
        key = request.key_cache
        if key is None:
            key = self._key_of(request)
            request.key_cache = key
        return key

    def _next_command_kind(self, request: MemoryRequest) -> CommandType:
        """The first SDRAM command ``request`` needs in the current state."""
        bank = self._bank_state()
        if bank.open_row is None:
            return CommandType.ACTIVATE
        if bank.open_row == request.row:
            return CommandType.READ if request.is_read else CommandType.WRITE
        return CommandType.PRECHARGE

    def _refresh_finish_times(self) -> None:
        """Recompute each pending request's VFT from live VTMS registers.

        Implements the paper's deferred finish-time computation: the
        estimate uses the bank-state-dependent service time (Table 3)
        and the thread's current registers, so it tracks the service
        the thread has actually consumed.  Clearing ``key_cache`` here
        is what keeps the per-request key memo sound.
        """
        vtms = self.vtms
        assert vtms is not None  # callers gate on policy.uses_vtms
        if (
            vtms.global_epoch == self._scan_global
            and self._row_epoch == self._scan_row
            and self._queue_version == self._scan_queue
        ):
            # VTMS registers, bank row state, and queue membership are
            # all unchanged since the last scan, so every request's
            # estimate is still current.  Epochs and the queue version
            # only move on arrival/issue events, never on idle cycles.
            return
        self._scan_global = vtms.global_epoch
        self._scan_row = self._row_epoch
        self._scan_queue = self._queue_version
        bank = self._bank_state()
        row_epoch = self._row_epoch
        bank_index = self.vtms_bank_index
        for request in self.queue:
            thread = vtms[request.thread_id]
            epoch = thread.epoch
            if (
                request.vft_thread_epoch == epoch
                and request.vft_row_epoch == row_epoch
            ):
                continue
            service = bank.state_service_time(request.row)
            request.virtual_start_time = thread.start_time_estimate(bank_index)
            request.virtual_finish_time = thread.finish_time_estimate(
                bank_index, service
            )
            request.vft_thread_epoch = epoch
            request.vft_row_epoch = row_epoch
            request.key_cache = None

    def _candidate_for(
        self,
        request: MemoryRequest,
        now: int,
        kind: Optional[CommandType] = None,
        ready: Optional[bool] = None,
    ) -> CandidateCommand:
        if kind is None:
            kind = self._next_command_kind(request)
        if ready is None:
            ready = self.dram.can_issue(kind, self.rank, self.bank, now)
        charge_thread = request.thread_id
        charge_arrival = request.virtual_arrival
        if kind is CommandType.PRECHARGE and self.open_row_thread is not None:
            # A conflict precharge closes a row some other thread may
            # have opened; the VTMS charge goes to the row's owner.
            charge_thread = self.open_row_thread
            charge_arrival = self.open_row_arrival
        return CandidateCommand(
            kind=kind,
            rank=self.rank,
            bank=self.bank,
            row=request.row,
            ready=ready,
            key=self._request_key(request),
            request=request,
            charge_thread=charge_thread,
            charge_arrival=charge_arrival,
        )

    def _auto_precharge(self, now: int) -> Optional[CandidateCommand]:
        """Closed-page policy: close a row with no pending accesses."""
        bank = self._bank_state()
        if bank.open_row is None:
            return None
        ready = self.dram.can_issue(CommandType.PRECHARGE, self.rank, self.bank, now)
        return CandidateCommand(
            kind=CommandType.PRECHARGE,
            rank=self.rank,
            bank=self.bank,
            row=bank.open_row,
            ready=ready,
            key=self._auto_key,
            request=None,
            charge_thread=self.open_row_thread,
            charge_arrival=self.open_row_arrival,
        )

    def _visible(self) -> List[MemoryRequest]:
        if self.writes_eligible:
            return self.queue
        return [r for r in self.queue if r.is_read]

    def _min_key_request(self, visible: List[MemoryRequest]) -> MemoryRequest:
        if len(visible) == 1:
            return visible[0]
        return min(visible, key=self._request_key)

    # -- candidate selection ---------------------------------------------------

    def candidate(self, now: int, draining_for_refresh: bool = False) -> Optional[CandidateCommand]:
        """Nominate this bank's best candidate command at cycle ``now``.

        Args:
            now: Current cycle.
            draining_for_refresh: When a refresh is due the controller
                stops opening new rows and precharges idle open rows so
                the refresh can start.

        This default body is the tuple-path fast loop (memoizable keys,
        CAS-over-RAS below ready).  Construction rebinds ``candidate``
        to a packed-int or generic variant when the policy calls for
        one; all variants select identically.
        """
        bank = self._bank_state()
        if (
            self.policy.uses_vtms
            and not self.policy.arrival_accounting
            and self.queue
        ):
            self._refresh_finish_times()

        # Write-drain gating: when writes are held back, schedule as if
        # only the reads were queued.
        visible = self._visible()

        has_row_work = bank.open_row is not None and any(
            r.row == bank.open_row for r in visible
        )
        if not visible or (bank.open_row is not None and not has_row_work):
            # Row exhausted (or queue empty): close it under the
            # closed-page policy, or when a refresh needs the banks.
            if self.row_policy == "closed" or draining_for_refresh:
                auto = self._auto_precharge(now)
                if auto is not None and not visible:
                    return auto
            # With conflicting requests queued, fall through: the
            # winning request's own precharge carries its priority.

        if not visible:
            return None

        if draining_for_refresh and bank.open_row is None:
            # Hold activates while a refresh is waiting to start.
            return None

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and now - bank.last_activate >= self.inversion_bound
        ):
            # FQ bank rule: commit to the earliest-virtual-finish-time
            # request and wait for its first command to become ready,
            # even if other requests (e.g. row hits) are ready now.
            chosen = self._min_key_request(visible)
            return self._candidate_for(chosen, now)

        # First-ready selection: prefer ready commands, then CAS over
        # RAS, then the policy's ordering key.  The winner alone gets a
        # CandidateCommand; per-request work is a kind lookup (pure
        # bank-state function) plus one shared readiness probe per
        # distinct command kind (at most three per bank).
        open_row = bank.open_row
        ready_by_kind: dict = {}
        best_request: Optional[MemoryRequest] = None
        best_sort: Optional[Tuple] = None
        best_kind: Optional[CommandType] = None
        activate, precharge = CommandType.ACTIVATE, CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        can_issue = self.dram.can_issue
        key_of = self._key_of
        obs_keys = self.obs_keys
        for request in visible:
            if open_row is None:
                kind = activate
            elif open_row == request.row:
                kind = read if request.is_read else write
            else:
                kind = precharge
            ready = ready_by_kind.get(kind)
            if ready is None:
                ready = can_issue(kind, self.rank, self.bank, now)
                ready_by_kind[kind] = ready
            key = request.key_cache
            if key is None:
                key = key_of(request)
                request.key_cache = key
                if obs_keys is not None:
                    obs_keys.misses += 1
            elif obs_keys is not None:
                obs_keys.hits += 1
            sort = (not ready, not kind.is_cas, key)
            if best_sort is None or sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None and best_sort is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=not best_sort[0]
        )

    def _candidate_packed(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """Packed-int selection for memoizable, CAS-over-RAS policies.

        Selects identically to :meth:`candidate`: the ready and
        CAS-over-RAS levels become penalty bits above the key width, so
        the three-way tuple compare collapses into one int compare.
        The queue-shape counters collapse the common single-kind cases
        (closed bank, all-hit read bursts, conflict-only queues) to a
        plain min over memoized keys with one shared readiness probe.
        """
        bank = self._bank
        policy = self.policy
        queue = self.queue
        if policy.uses_vtms and not policy.arrival_accounting and queue:
            self._refresh_finish_times()
        self._ensure_counts()

        eligible = self.writes_eligible
        n_vis = self._n_read + self._n_write if eligible else self._n_read
        open_row = bank.open_row

        if open_row is None:
            if n_vis == 0 or draining_for_refresh:
                return None
            visible = queue if eligible else [r for r in queue if r.is_read]
            # Closed bank: every candidate is an activate; the winner is
            # the min-key request under one shared readiness probe.
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.ACTIVATE, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.ACTIVATE, ready=ready
            )

        vis_hits = (
            self._n_read_hit + self._n_write_hit
            if eligible
            else self._n_read_hit
        )
        if n_vis == 0:
            if self.row_policy == "closed" or draining_for_refresh:
                return self._auto_precharge(now)
            return None

        if (
            policy.fq_bank_rule
            and now - bank.last_activate >= self.inversion_bound
        ):
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            return self._candidate_for(chosen, now)

        if vis_hits == 0:
            # Every visible request conflicts with the open row: all
            # candidates are precharges, so the min-key request wins.
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.PRECHARGE, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.PRECHARGE, ready=ready
            )

        if vis_hits == n_vis and (not eligible or self._n_write_hit == 0):
            # All-hit, all-read: the dominant streaming case.
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.READ, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.READ, ready=ready
            )

        # Mixed kinds: one pass, one int compare per request.  Lazily
        # computed per-kind penalty prefixes share the readiness probes.
        visible = queue if eligible else [r for r in queue if r.is_read]
        rank, bank_index = self.rank, self.bank
        can_issue = self.dram.can_issue
        key_of = self._key_of
        obs_keys = self.obs_keys
        ready_pen = self._ready_pen
        cas_pen = self._cas_pen
        read_p = write_p = pre_p = -1
        best_request: Optional[MemoryRequest] = None
        best_kind: Optional[CommandType] = None
        best_sort = self._sort_limit
        activate, precharge = CommandType.ACTIVATE, CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        for request in visible:
            if request.row == open_row:
                if request.is_read:
                    kind = read
                    p = read_p
                    if p < 0:
                        p = (
                            0
                            if can_issue(read, rank, bank_index, now)
                            else ready_pen
                        )
                        read_p = p
                else:
                    kind = write
                    p = write_p
                    if p < 0:
                        p = (
                            0
                            if can_issue(write, rank, bank_index, now)
                            else ready_pen
                        )
                        write_p = p
            else:
                kind = precharge
                p = pre_p
                if p < 0:
                    p = (
                        cas_pen
                        if can_issue(precharge, rank, bank_index, now)
                        else cas_pen + ready_pen
                    )
                    pre_p = p
            key = request.key_cache
            if key is None:
                key = key_of(request)
                request.key_cache = key
                if obs_keys is not None:
                    obs_keys.misses += 1
            elif obs_keys is not None:
                obs_keys.hits += 1
            sort = p + key
            if sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=best_sort < ready_pen
        )

    def _candidate_packed_generic(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """Packed-int selection for non-memoizable / key-over-CAS policies.

        Same structure as :meth:`_candidate_packed` but keys are
        recomputed every pass (BLISS's blacklist, MISE's snapshot) and
        ``key_over_cas`` drops the CAS penalty bit so the policy key
        outranks the CAS-over-RAS preference.
        """
        bank = self._bank
        policy = self.policy
        queue = self.queue
        if policy.uses_vtms and not policy.arrival_accounting and queue:
            self._refresh_finish_times()
        self._ensure_counts()

        eligible = self.writes_eligible
        n_vis = self._n_read + self._n_write if eligible else self._n_read
        open_row = bank.open_row

        if open_row is None:
            if n_vis == 0 or draining_for_refresh:
                return None
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.ACTIVATE, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.ACTIVATE, ready=ready
            )

        vis_hits = (
            self._n_read_hit + self._n_write_hit
            if eligible
            else self._n_read_hit
        )
        if n_vis == 0:
            if self.row_policy == "closed" or draining_for_refresh:
                return self._auto_precharge(now)
            return None

        if (
            policy.fq_bank_rule
            and now - bank.last_activate >= self.inversion_bound
        ):
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            return self._candidate_for(chosen, now)

        if vis_hits == 0:
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.PRECHARGE, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.PRECHARGE, ready=ready
            )

        if vis_hits == n_vis and (not eligible or self._n_write_hit == 0):
            visible = queue if eligible else [r for r in queue if r.is_read]
            chosen = self._min_key_request(visible)
            ready = self.dram.can_issue(
                CommandType.READ, self.rank, self.bank, now
            )
            return self._candidate_for(
                chosen, now, kind=CommandType.READ, ready=ready
            )

        visible = queue if eligible else [r for r in queue if r.is_read]
        rank, bank_index = self.rank, self.bank
        can_issue = self.dram.can_issue
        key_of = self._key_of
        ready_pen = self._ready_pen
        cas_pen = 0 if policy.key_over_cas else self._cas_pen
        read_p = write_p = pre_p = -1
        best_request: Optional[MemoryRequest] = None
        best_kind: Optional[CommandType] = None
        best_sort = self._sort_limit
        precharge = CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        for request in visible:
            if request.row == open_row:
                if request.is_read:
                    kind = read
                    p = read_p
                    if p < 0:
                        p = (
                            0
                            if can_issue(read, rank, bank_index, now)
                            else ready_pen
                        )
                        read_p = p
                else:
                    kind = write
                    p = write_p
                    if p < 0:
                        p = (
                            0
                            if can_issue(write, rank, bank_index, now)
                            else ready_pen
                        )
                        write_p = p
            else:
                kind = precharge
                p = pre_p
                if p < 0:
                    p = (
                        cas_pen
                        if can_issue(precharge, rank, bank_index, now)
                        else cas_pen + ready_pen
                    )
                    pre_p = p
            sort = p + key_of(request)
            if sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=best_sort < ready_pen
        )

    def _candidate_generic(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """Generic tuple-path selection for policies off the fast path.

        Construction rebinds :meth:`candidate` here when the policy's
        keys read mutable state (recomputed on every pass, no
        per-request memo) or rank above the CAS-over-RAS preference
        (``key_over_cas``; ready commands still rank above not-ready
        ones) and no packed-key layout is in effect.  The prologue
        mirrors :meth:`candidate` exactly.
        """
        bank = self._bank_state()
        if (
            self.policy.uses_vtms
            and not self.policy.arrival_accounting
            and self.queue
        ):
            self._refresh_finish_times()

        visible = self._visible()

        has_row_work = bank.open_row is not None and any(
            r.row == bank.open_row for r in visible
        )
        if not visible or (bank.open_row is not None and not has_row_work):
            if self.row_policy == "closed" or draining_for_refresh:
                auto = self._auto_precharge(now)
                if auto is not None and not visible:
                    return auto

        if not visible:
            return None

        if draining_for_refresh and bank.open_row is None:
            return None

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and now - bank.last_activate >= self.inversion_bound
        ):
            chosen = self._min_key_request(visible)
            return self._candidate_for(chosen, now)

        open_row = bank.open_row
        ready_by_kind: dict = {}
        best_request: Optional[MemoryRequest] = None
        best_sort: Optional[Tuple] = None
        best_kind: Optional[CommandType] = None
        activate, precharge = CommandType.ACTIVATE, CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        can_issue = self.dram.can_issue
        # _key_of aliases policy.request_key on every non-packed path
        # (the only paths that bind this variant); going through the
        # alias lets repro.obs swap in a counting wrapper at attach.
        policy_key = self._key_of
        key_over_cas = self.policy.key_over_cas
        for request in visible:
            if open_row is None:
                kind = activate
            elif open_row == request.row:
                kind = read if request.is_read else write
            else:
                kind = precharge
            ready = ready_by_kind.get(kind)
            if ready is None:
                ready = can_issue(kind, self.rank, self.bank, now)
                ready_by_kind[kind] = ready
            key = policy_key(request)
            if key_over_cas:
                sort = (not ready, key)
            else:
                sort = (not ready, not kind.is_cas, key)
            if best_sort is None or sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None and best_sort is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=not best_sort[0]
        )

    # -- wake bounds ---------------------------------------------------------

    def cacheable_wake(self, now: int) -> Optional[int]:
        """Lower bound on this bank's next possibly-ready candidate.

        The channel scheduler caches the result and skips this bank's
        :meth:`candidate` call until the bound elapses.  The bound must
        only move *later* while cached, which holds because command
        issues elsewhere can only push DRAM timing out, and every event
        that could pull it in (an arrival, an issue on this bank, a
        refresh, a write-drain flip — and, under VTMS policies, *any*
        VTMS register change, which the controller maps to a full
        invalidation on every arrival and issue) invalidates the cache.

        Returns ``IDLE_BOUND`` when the bank has no work at all.  In
        committed FQ mode the bound is exact: the nominated request is
        pinned until the next invalidation event (VTMS registers only
        move on arrivals/issues, both of which invalidate), so the
        earliest-issue time of its next command kind may be cached.
        ``None`` (poll every cycle) is kept only for the rare
        write-gated committed state, where the nominated set depends on
        the drain gate mid-flight.
        """
        bank = self._bank_state()
        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and self.queue
            and now - bank.last_activate >= self.inversion_bound
        ):
            if not self.writes_eligible:
                return None
            if not self.policy.arrival_accounting:
                self._refresh_finish_times()
            chosen = self._min_key_request(self.queue)
            t = self.dram.earliest_issue(
                self._next_command_kind(chosen), self.rank, self.bank
            )
            if t is None:  # pragma: no cover - open bank always has a kind
                return None
            return t if t > now else now + 1
        t = self.earliest_possible_issue(now)
        if t is None:
            return IDLE_BOUND
        return t

    def poll_bound(self, now: int) -> int:
        """First cycle ≥ ``now`` this bank could nominate a *ready* candidate.

        The channel scheduler's pre-candidate gate: when the bound is in
        the future, :meth:`candidate` is provably fruitless and is
        skipped without being called.  Exactness contract: the bound is
        ``<= now`` whenever :meth:`candidate` would return a ready
        command at ``now`` (the kind mask covers every visible
        candidate, including auto-precharge, and committed-FQ banks
        bound the nominated request's own command; states where the
        nominated set is ambiguous return ``now``).  A future bound may
        still be conservative (early), which at worst re-polls.
        ``IDLE_BOUND`` means nothing to nominate at all.
        """
        bank = self._bank
        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and self.queue
        ):
            switch = bank.last_activate + self.inversion_bound
            if now >= switch:
                if not self.writes_eligible:
                    return now
                if not self.policy.arrival_accounting:
                    # The nominated request comes from VFT ordering, so
                    # the estimates must be current before taking the
                    # min (candidate() refreshes them the same way).
                    self._refresh_finish_times()
                chosen = self._min_key_request(self.queue)
                t = self.dram.earliest_issue(
                    self._next_command_kind(chosen), self.rank, self.bank
                )
                return now if t is None else t
            mask = self.kind_mask()
            if not mask:
                return switch
            e = self.dram.kernel.earliest_by_mask(self.vtms_bank_index, mask)
            if e is None or e > switch:
                return switch
            return e
        mask = self.kind_mask()
        if not mask:
            return IDLE_BOUND
        e = self.dram.kernel.earliest_by_mask(self.vtms_bank_index, mask)
        return IDLE_BOUND if e is None else e

    def earliest_possible_issue(self, now: int) -> Optional[int]:
        """Earliest future cycle any of this bank's candidates could issue.

        Used by the controller's sleep logic: absent new arrivals and
        issues elsewhere, no command of this bank can become ready
        before the returned cycle.  ``None`` when the bank has nothing
        to do.
        """
        bank = self._bank_state()

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and self.queue
        ):
            switch = bank.last_activate + self.inversion_bound
            if now >= switch:
                # Committed mode: only the earliest-virtual-finish-time
                # request's first command can issue from this bank.
                if not self.policy.arrival_accounting:
                    self._refresh_finish_times()
                chosen = self._min_key_request(self.queue)
                t = self.dram.earliest_issue(
                    self._next_command_kind(chosen), self.rank, self.bank
                )
                if t is None:
                    return None
                return t if t > now else now + 1
            # First-ready until the inversion bound expires; the mode
            # switch itself is a wake-worthy event.
            first_ready = self._first_ready_earliest(now)
            if first_ready is None:
                return switch if switch > now else now + 1
            t = first_ready if first_ready < switch else switch
            return t if t > now else now + 1

        earliest = self._first_ready_earliest(now)
        if earliest is None:
            return None
        return earliest if earliest > now else now + 1

    def kind_mask(self) -> int:
        """Legality-kernel mask of the command kinds this bank needs.

        O(1) from the queue-shape counters; mirrors the kind set the
        candidate loops would derive from a walk over the *visible*
        queue (write-drain gate applied), with the auto-precharge of an
        exhausted row folded in as PRECHARGE (``hits == 0`` on an open
        bank).  Zero means the bank has nothing to nominate.
        """
        self._ensure_counts()
        if self.writes_eligible:
            n = self._n_read + self._n_write
            hits = self._n_read_hit + self._n_write_hit
        else:
            n = self._n_read
            hits = self._n_read_hit
        if self._bank.open_row is None:
            return MASK_ACT if n else 0
        mask = 0
        if self._n_read_hit:
            mask |= MASK_READ
        if self.writes_eligible and self._n_write_hit:
            mask |= MASK_WRITE
        if n > hits or hits == 0:
            mask |= MASK_PRE
        return mask

    def wake_mask(self) -> Optional[int]:
        """The :meth:`kind_mask` when the plain batched horizon applies.

        ``None`` when this bank's wake bound needs the FQ special cases
        in :meth:`earliest_possible_issue` (open row under the FQ bank
        rule) and must be computed scalar.
        """
        if (
            self.policy.fq_bank_rule
            and self._bank.open_row is not None
            and self.queue
        ):
            return None
        return self.kind_mask()

    def _first_ready_earliest(self, now: int) -> Optional[int]:
        """Min earliest-issue over every candidate command of this bank.

        Requests reduce to at most three distinct command kinds in any
        bank state; the kind set comes from the queue-shape counters
        and the timing min from the batched legality kernel, so no
        queue walk happens here.
        """
        mask = self.kind_mask()
        if not mask:
            return None
        return self.dram.kernel.earliest_by_mask(self.vtms_bank_index, mask)

    # -- issue notification -------------------------------------------------

    def on_issue(self, cand: CandidateCommand, now: int) -> None:
        """Update bookkeeping after the channel scheduler issues ``cand``."""
        if self.telemetry is not None:
            # Before any mutation, so the inversion probe sees the
            # queue exactly as the selection that chose ``cand`` did.
            self.telemetry.on_bank_issue(self, cand, now)
        if cand.kind is CommandType.ACTIVATE and cand.request is not None:
            self.open_row_thread = cand.request.thread_id
            self.open_row_arrival = cand.request.virtual_arrival
            self._row_epoch += 1
            self._recount_hits()
        elif cand.kind is CommandType.PRECHARGE:
            self.open_row_thread = None
            self._row_epoch += 1
            self._n_read_hit = 0
            self._n_write_hit = 0
            self._counted_row = None
        elif cand.kind.is_cas and cand.request is not None:
            self.remove(cand.request)
