"""Per-bank scheduler: request selection and command generation.

Each SDRAM bank has a logical priority queue and a bank scheduler
(paper §2.2, Figure 2).  Every cycle the bank scheduler nominates at
most one candidate SDRAM command to the channel scheduler:

* the next command of the pending request it currently favours
  (activate for a closed bank, CAS for an open-row hit, precharge for
  a conflict), or
* a closed-page auto-precharge when the open row has no pending
  accesses left.

Under FR policies the favourite is recomputed every cycle with
first-ready priority.  Under the FQ bank rule (paper §3.3) the bank
commits to the earliest-virtual-finish-time request once the bank has
been active for ``x`` cycles, bounding priority-inversion blocking
time at the cost of some data-bus utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.vtms import VtmsState
from ..dram.commands import CommandType
from ..dram.dram_system import DramSystem
from ..policy.base import SchedulingPolicy
from .request import MemoryRequest


@dataclass
class CandidateCommand:
    """A command a bank scheduler offers to the channel scheduler."""

    kind: CommandType
    rank: int
    bank: int
    row: int
    ready: bool
    #: Policy ordering key of the request being served (lower = higher
    #: priority).  Auto-precharges sort after all request-driven work.
    key: Tuple
    request: Optional[MemoryRequest]
    #: Thread charged for this command in the VTMS update (the request's
    #: thread, or for auto-precharge the thread that opened the row).
    charge_thread: Optional[int]
    #: Arrival time a_i^k used by the VTMS update equations.
    charge_arrival: float


#: Ordering key that sorts auto-precharge candidates after any request.
_AUTO_PRECHARGE_KEY = (float("inf"),)

#: Wake bound meaning "this bank has no work at all"; stays cached
#: until a request arrives for the bank.
IDLE_BOUND = 1 << 62


class BankScheduler:
    """Scheduler and pending-request queue for one (rank, bank) pair."""

    def __init__(
        self,
        rank: int,
        bank: int,
        dram: DramSystem,
        policy: SchedulingPolicy,
        vtms: Optional[VtmsState],
        inversion_bound: int,
        row_policy: str = "closed",
    ):
        if row_policy not in ("closed", "open"):
            raise ValueError(f"row_policy must be 'closed' or 'open', got {row_policy!r}")
        self.rank = rank
        self.bank = bank
        self.dram = dram
        #: Direct reference to this scheduler's Bank object (created
        #: once by the DRAM system and never replaced).
        self._bank = dram.bank(rank, bank)
        self.policy = policy
        self.vtms = vtms
        self.inversion_bound = inversion_bound
        #: Flat (rank, bank) index into the per-thread VTMS bank
        #: registers — distinct banks in distinct ranks are distinct
        #: VTMS resources.
        self.vtms_bank_index = rank * dram.num_banks + bank
        #: "closed" precharges a row once its pending accesses drain
        #: (the paper's choice); "open" leaves rows open until a
        #: conflicting request or a refresh needs the bank.
        self.row_policy = row_policy
        #: Write-drain gating (set each cycle by the controller): when
        #: False, write requests are held back so reads proceed without
        #: bus-turnaround penalties.
        self.writes_eligible = True
        #: Optional run telemetry (repro.telemetry); None in normal
        #: runs, so the issue hook costs one attribute test.
        self.telemetry = None
        self.queue: List[MemoryRequest] = []
        # Bookkeeping for charging auto-precharges to the thread that
        # opened the row.
        self.open_row_thread: Optional[int] = None
        self.open_row_arrival: float = 0.0
        #: Bumped when the bank's row state changes; finish-time
        #: estimates depend on it through Table 3's service times.
        self._row_epoch = 0
        #: Bumped on queue membership changes; part of the scan stamp
        #: that lets :meth:`_refresh_finish_times` skip entirely.
        self._queue_version = 0
        #: Inputs of the last finish-time scan (thread epochs are
        #: monotonic, so their sum is a valid version counter).
        self._vft_scan_stamp: Optional[Tuple] = None
        #: Fast selection path: keys memoizable per request and the
        #: classic ready → CAS-over-RAS → key priority levels.  The
        #: paper policies all qualify; stateful policies (fresh keys
        #: every pass) and key-over-CAS policies take the generic loop.
        #: Rebinding the methods here keeps the fast path branch-free —
        #: the selection loop and key memo run the exact pre-subsystem
        #: instruction stream for the paper policies.
        self._fast_path = policy.memoize_keys and not policy.key_over_cas
        if not self._fast_path:
            self.candidate = self._candidate_generic  # type: ignore[method-assign]
        if not policy.memoize_keys:
            self._request_key = policy.request_key  # type: ignore[method-assign]
        if policy.uses_vtms and vtms is None:
            raise ValueError(f"policy {policy.name} requires VTMS state")

    # -- queue management --------------------------------------------------

    def add(self, request: MemoryRequest) -> None:
        self.queue.append(request)
        self._queue_version += 1

    def remove(self, request: MemoryRequest) -> None:
        self.queue.remove(request)
        self._queue_version += 1

    def __len__(self) -> int:
        return len(self.queue)

    # -- helpers -------------------------------------------------------------

    def _bank_state(self):
        return self._bank

    def _request_key(self, request: MemoryRequest) -> Tuple:
        """Policy ordering key, memoized per (request, VFT stamp).

        FR-FCFS keys are fixed at arrival; VTMS keys change only when
        :meth:`_refresh_finish_times` moves the request's ``vft_stamp``,
        so the tuple is rebuilt exactly when its inputs changed.
        Policies whose keys read mutable policy state opt out of the
        memo (``memoize_keys`` False): construction rebinds this name
        to the policy's raw ``request_key``, so they recompute every
        call and the memoizing path stays branch-free.
        """
        stamp = request.vft_stamp
        cached = request.key_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        key = self.policy.request_key(request)
        request.key_cache = (stamp, key)
        return key

    def _next_command_kind(self, request: MemoryRequest) -> CommandType:
        """The first SDRAM command ``request`` needs in the current state."""
        bank = self._bank_state()
        if bank.open_row is None:
            return CommandType.ACTIVATE
        if bank.open_row == request.row:
            return CommandType.READ if request.is_read else CommandType.WRITE
        return CommandType.PRECHARGE

    def _refresh_finish_times(self) -> None:
        """Recompute each pending request's VFT from live VTMS registers.

        Implements the paper's deferred finish-time computation: the
        estimate uses the bank-state-dependent service time (Table 3)
        and the thread's current registers, so it tracks the service
        the thread has actually consumed.
        """
        vtms = self.vtms
        assert vtms is not None  # callers gate on policy.uses_vtms
        scan_stamp = (
            vtms.global_epoch,
            self._row_epoch,
            self._queue_version,
        )
        if scan_stamp == self._vft_scan_stamp:
            # VTMS registers, bank row state, and queue membership are
            # all unchanged since the last scan, so every request's
            # estimate is still current.  Epochs and the queue version
            # only move on arrival/issue events, never on idle cycles.
            return
        self._vft_scan_stamp = scan_stamp
        bank = self._bank_state()
        row_epoch = self._row_epoch
        for request in self.queue:
            thread = vtms[request.thread_id]
            stamp = (thread.epoch, row_epoch)
            if request.vft_stamp == stamp:
                continue
            service = bank.state_service_time(request.row)
            request.virtual_start_time = thread.start_time_estimate(
                self.vtms_bank_index
            )
            request.virtual_finish_time = thread.finish_time_estimate(
                self.vtms_bank_index, service
            )
            request.vft_stamp = stamp

    def _candidate_for(
        self,
        request: MemoryRequest,
        now: int,
        kind: Optional[CommandType] = None,
        ready: Optional[bool] = None,
    ) -> CandidateCommand:
        if kind is None:
            kind = self._next_command_kind(request)
        if ready is None:
            ready = self.dram.can_issue(kind, self.rank, self.bank, now)
        charge_thread = request.thread_id
        charge_arrival = request.virtual_arrival
        if kind is CommandType.PRECHARGE and self.open_row_thread is not None:
            # A conflict precharge closes a row some other thread may
            # have opened; the VTMS charge goes to the row's owner.
            charge_thread = self.open_row_thread
            charge_arrival = self.open_row_arrival
        return CandidateCommand(
            kind=kind,
            rank=self.rank,
            bank=self.bank,
            row=request.row,
            ready=ready,
            key=self._request_key(request),
            request=request,
            charge_thread=charge_thread,
            charge_arrival=charge_arrival,
        )

    def _auto_precharge(self, now: int) -> Optional[CandidateCommand]:
        """Closed-page policy: close a row with no pending accesses."""
        bank = self._bank_state()
        if bank.open_row is None:
            return None
        ready = self.dram.can_issue(CommandType.PRECHARGE, self.rank, self.bank, now)
        return CandidateCommand(
            kind=CommandType.PRECHARGE,
            rank=self.rank,
            bank=self.bank,
            row=bank.open_row,
            ready=ready,
            key=_AUTO_PRECHARGE_KEY,
            request=None,
            charge_thread=self.open_row_thread,
            charge_arrival=self.open_row_arrival,
        )

    # -- candidate selection ---------------------------------------------------

    def candidate(self, now: int, draining_for_refresh: bool = False) -> Optional[CandidateCommand]:
        """Nominate this bank's best candidate command at cycle ``now``.

        Args:
            now: Current cycle.
            draining_for_refresh: When a refresh is due the controller
                stops opening new rows and precharges idle open rows so
                the refresh can start.
        """
        bank = self._bank_state()
        if (
            self.policy.uses_vtms
            and not self.policy.arrival_accounting
            and self.queue
        ):
            self._refresh_finish_times()

        # Write-drain gating: when writes are held back, schedule as if
        # only the reads were queued.
        if self.writes_eligible:
            visible = self.queue
        else:
            visible = [r for r in self.queue if r.is_read]

        has_row_work = bank.open_row is not None and any(
            r.row == bank.open_row for r in visible
        )
        if not visible or (bank.open_row is not None and not has_row_work):
            # Row exhausted (or queue empty): close it under the
            # closed-page policy, or when a refresh needs the banks.
            if self.row_policy == "closed" or draining_for_refresh:
                auto = self._auto_precharge(now)
                if auto is not None and not visible:
                    return auto
            # With conflicting requests queued, fall through: the
            # winning request's own precharge carries its priority.

        if not visible:
            return None

        if draining_for_refresh and bank.open_row is None:
            # Hold activates while a refresh is waiting to start.
            return None

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and now - bank.last_activate >= self.inversion_bound
        ):
            # FQ bank rule: commit to the earliest-virtual-finish-time
            # request and wait for its first command to become ready,
            # even if other requests (e.g. row hits) are ready now.
            chosen = min(visible, key=self._request_key)
            return self._candidate_for(chosen, now)

        # First-ready selection: prefer ready commands, then CAS over
        # RAS, then the policy's ordering key.  The winner alone gets a
        # CandidateCommand; per-request work is a kind lookup (pure
        # bank-state function) plus one shared readiness probe per
        # distinct command kind (at most three per bank).
        open_row = bank.open_row
        ready_by_kind: dict = {}
        best_request: Optional[MemoryRequest] = None
        best_sort: Optional[Tuple] = None
        best_kind: Optional[CommandType] = None
        activate, precharge = CommandType.ACTIVATE, CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        can_issue = self.dram.can_issue
        policy_key = self.policy.request_key
        for request in visible:
            if open_row is None:
                kind = activate
            elif open_row == request.row:
                kind = read if request.is_read else write
            else:
                kind = precharge
            ready = ready_by_kind.get(kind)
            if ready is None:
                ready = can_issue(kind, self.rank, self.bank, now)
                ready_by_kind[kind] = ready
            stamp = request.vft_stamp
            cached = request.key_cache
            if cached is not None and cached[0] == stamp:
                key = cached[1]
            else:
                key = policy_key(request)
                request.key_cache = (stamp, key)
            sort = (not ready, not kind.is_cas, key)
            if best_sort is None or sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None and best_sort is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=not best_sort[0]
        )

    def _candidate_generic(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """Generic selection for policies off the fast path.

        Construction rebinds :meth:`candidate` here when the policy's
        keys read mutable state (recomputed on every pass, no
        per-request memo) or rank above the CAS-over-RAS preference
        (``key_over_cas``; ready commands still rank above not-ready
        ones).  The prologue mirrors :meth:`candidate` exactly.
        """
        bank = self._bank_state()
        if (
            self.policy.uses_vtms
            and not self.policy.arrival_accounting
            and self.queue
        ):
            self._refresh_finish_times()

        if self.writes_eligible:
            visible = self.queue
        else:
            visible = [r for r in self.queue if r.is_read]

        has_row_work = bank.open_row is not None and any(
            r.row == bank.open_row for r in visible
        )
        if not visible or (bank.open_row is not None and not has_row_work):
            if self.row_policy == "closed" or draining_for_refresh:
                auto = self._auto_precharge(now)
                if auto is not None and not visible:
                    return auto

        if not visible:
            return None

        if draining_for_refresh and bank.open_row is None:
            return None

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and now - bank.last_activate >= self.inversion_bound
        ):
            chosen = min(visible, key=self._request_key)
            return self._candidate_for(chosen, now)

        open_row = bank.open_row
        ready_by_kind: dict = {}
        best_request: Optional[MemoryRequest] = None
        best_sort: Optional[Tuple] = None
        best_kind: Optional[CommandType] = None
        activate, precharge = CommandType.ACTIVATE, CommandType.PRECHARGE
        read, write = CommandType.READ, CommandType.WRITE
        can_issue = self.dram.can_issue
        policy_key = self.policy.request_key
        key_over_cas = self.policy.key_over_cas
        for request in visible:
            if open_row is None:
                kind = activate
            elif open_row == request.row:
                kind = read if request.is_read else write
            else:
                kind = precharge
            ready = ready_by_kind.get(kind)
            if ready is None:
                ready = can_issue(kind, self.rank, self.bank, now)
                ready_by_kind[kind] = ready
            key = policy_key(request)
            if key_over_cas:
                sort = (not ready, key)
            else:
                sort = (not ready, not kind.is_cas, key)
            if best_sort is None or sort < best_sort:
                best_request, best_sort, best_kind = request, sort, kind
        assert best_request is not None and best_sort is not None
        return self._candidate_for(
            best_request, now, kind=best_kind, ready=not best_sort[0]
        )

    def cacheable_wake(self, now: int) -> Optional[int]:
        """Lower bound on this bank's next possibly-ready candidate.

        The channel scheduler caches the result and skips this bank's
        :meth:`candidate` call until the bound elapses.  The bound must
        only move *later* while cached, which holds because command
        issues elsewhere can only push DRAM timing out, and every event
        that could pull it in (an arrival, an issue on this bank, a
        refresh, a write-drain flip) invalidates the cache.

        Returns ``IDLE_BOUND`` when the bank has no work at all, and
        ``None`` when no bound may be cached: in committed FQ mode the
        nominated request — and with it the command kind probed for
        readiness — can change whenever other banks' issues move the
        thread VTMS, so the bank must be polled every cycle.
        """
        bank = self._bank_state()
        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and self.queue
            and now - bank.last_activate >= self.inversion_bound
        ):
            return None
        t = self.earliest_possible_issue(now)
        if t is None:
            return IDLE_BOUND
        return t

    def earliest_possible_issue(self, now: int) -> Optional[int]:
        """Earliest future cycle any of this bank's candidates could issue.

        Used by the controller's sleep logic: absent new arrivals and
        issues elsewhere, no command of this bank can become ready
        before the returned cycle.  ``None`` when the bank has nothing
        to do.
        """
        bank = self._bank_state()

        if (
            self.policy.fq_bank_rule
            and bank.open_row is not None
            and self.queue
        ):
            switch = bank.last_activate + self.inversion_bound
            if now >= switch:
                # Committed mode: only the earliest-virtual-finish-time
                # request's first command can issue from this bank.
                chosen = min(self.queue, key=self._request_key)
                t = self.dram.earliest_issue(
                    self._next_command_kind(chosen), self.rank, self.bank
                )
                if t is None:
                    return None
                return max(t, now + 1)
            # First-ready until the inversion bound expires; the mode
            # switch itself is a wake-worthy event.
            first_ready = self._first_ready_earliest(now)
            if first_ready is None:
                return max(switch, now + 1)
            return max(min(first_ready, switch), now + 1)

        earliest = self._first_ready_earliest(now)
        if earliest is None:
            return None
        return max(earliest, now + 1)

    def _first_ready_earliest(self, now: int) -> Optional[int]:
        """Min earliest-issue over every candidate command of this bank.

        Requests reduce to at most three distinct command kinds in any
        bank state, so the DRAM timing query runs once per kind rather
        than once per request.
        """
        bank = self._bank_state()
        open_row = bank.open_row
        kinds = set()
        row_work = False
        for request in self.queue:
            if open_row is None:
                kinds.add(CommandType.ACTIVATE)
            elif open_row == request.row:
                row_work = True
                kinds.add(
                    CommandType.READ if request.is_read else CommandType.WRITE
                )
            else:
                kinds.add(CommandType.PRECHARGE)
        if open_row is not None and not row_work:
            kinds.add(CommandType.PRECHARGE)
        earliest: Optional[int] = None
        for kind in kinds:  # det: allow(pure min reduction, order-free)
            t = self.dram.earliest_issue(kind, self.rank, self.bank)
            if t is not None and (earliest is None or t < earliest):
                earliest = t
        return earliest

    # -- issue notification -------------------------------------------------

    def on_issue(self, cand: CandidateCommand, now: int) -> None:
        """Update bookkeeping after the channel scheduler issues ``cand``."""
        if self.telemetry is not None:
            # Before any mutation, so the inversion probe sees the
            # queue exactly as the selection that chose ``cand`` did.
            self.telemetry.on_bank_issue(self, cand, now)
        if cand.kind is CommandType.ACTIVATE and cand.request is not None:
            self.open_row_thread = cand.request.thread_id
            self.open_row_arrival = cand.request.virtual_arrival
            self._row_epoch += 1
        elif cand.kind is CommandType.PRECHARGE:
            self.open_row_thread = None
            self._row_epoch += 1
        elif cand.kind.is_cas and cand.request is not None:
            self.remove(cand.request)
