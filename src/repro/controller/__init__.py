"""Memory controller: buffers, bank/channel schedulers, address mapping."""

from .address_map import AddressMap
from .bank_scheduler import BankScheduler, CandidateCommand
from .buffers import PartitionedBuffers
from .channel_scheduler import ChannelScheduler
from .controller import ControllerStats, MemoryController
from .request import MemoryRequest, RequestKind

__all__ = [
    "AddressMap",
    "BankScheduler",
    "CandidateCommand",
    "ChannelScheduler",
    "ControllerStats",
    "MemoryController",
    "MemoryRequest",
    "PartitionedBuffers",
    "RequestKind",
]
