"""Channel scheduler: arbitration across banks' candidate commands.

The channel scheduler scans the banks' nominated commands each cycle
and issues the ready command with the highest priority (paper §2.2).
It uses the same priority levels as the bank schedulers: CAS commands
before RAS commands, then the policy's ordering key.  Channel-level
timing (address bus, data bus, t_ccd, t_wtr, t_rrd) has already been
folded into each candidate's readiness by the DRAM model.

To keep the scan cheap, the scheduler caches a per-bank lower bound on
the next cycle that bank could nominate a *ready* command
(:meth:`BankScheduler.cacheable_wake`) and skips banks whose bound has
not elapsed.  Skipping is sound because issues elsewhere only push
DRAM timing later, and every event that could pull a bound earlier —
an arrival for the bank, an issue on the bank, a refresh, a
write-drain eligibility flip, any VTMS register change — invalidates
the cache via :meth:`invalidate` / :meth:`invalidate_all`.  Selection
is therefore bit-identical to scanning every bank: skipped banks could
only have contributed non-ready candidates, which the scan discards
anyway.

On the packed-key path arbitration reuses the bank schedulers' penalty
encoding: a candidate's channel sort is its packed key plus the
CAS-penalty bit for RAS commands, so picking the winner is one int
compare per nominated candidate.  Sleep bounds batch through the
legality kernel: each pollable bank contributes its O(1) kind mask and
one vectorized horizon query replaces the per-bank earliest-issue
walks (banks in FQ special states fall back to the scalar bound).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .bank_scheduler import BankScheduler, CandidateCommand, IDLE_BOUND


class ChannelScheduler:
    """Selects one ready command per cycle from the bank schedulers."""

    def __init__(self, bank_schedulers: Iterable[BankScheduler]):
        self.bank_schedulers = list(bank_schedulers)
        self._index = {
            (s.rank, s.bank): i for i, s in enumerate(self.bank_schedulers)
        }
        #: Per-bank wake bound; None = must poll (never computed, just
        #: invalidated, or the bank is in a state where no bound may be
        #: cached).
        self._bounds: List[Optional[int]] = [None] * len(self.bank_schedulers)
        #: Whether channel arbitration keeps the CAS-over-RAS level
        #: above the policy key; key-over-CAS policies (e.g. BLISS)
        #: rank the key first.
        self._cas_first = (
            not self.bank_schedulers[0].policy.key_over_cas
            if self.bank_schedulers
            else True
        )
        #: Packed-key arbitration: all bank schedulers share one policy,
        #: so one penalty encoding covers every candidate.
        self._packed = (
            self.bank_schedulers[0]._packed if self.bank_schedulers else False
        )
        self._cas_pen = (
            self.bank_schedulers[0]._cas_pen if self._packed else 0
        )
        #: Batched sleep-bound plumbing: flat bank indices into the
        #: legality kernel, parallel to ``bank_schedulers``.
        self._kernel = (
            self.bank_schedulers[0].dram.kernel
            if self.bank_schedulers
            else None
        )
        self._flats = [s.vtms_bank_index for s in self.bank_schedulers]
        #: Optional run telemetry (repro.telemetry); None in normal
        #: runs, so arbitration accounting costs one attribute test.
        self.telemetry = None

    def invalidate(self, rank: int, bank: int) -> None:
        """Drop the cached bound for one bank (its state changed)."""
        self._bounds[self._index[(rank, bank)]] = None

    def invalidate_all(self) -> None:
        """Drop every cached bound (refresh, drain flip, VTMS change)."""
        bounds = self._bounds
        for i in range(len(bounds)):
            bounds[i] = None

    def select(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """The highest-priority ready candidate at cycle ``now``, if any."""
        best: Optional[CandidateCommand] = None
        best_sort = None
        bounds = self._bounds
        telemetry = self.telemetry
        cas_first = self._cas_first
        packed = self._packed
        cas_pen = self._cas_pen
        ready_seen = 0
        for i, scheduler in enumerate(self.bank_schedulers):
            bound = bounds[i]
            if bound is None:
                # Pre-candidate gate: one legality-kernel query proves
                # most just-invalidated banks have nothing ready, so
                # the full candidate selection never runs for them.
                bound = scheduler.poll_bound(now)
                bounds[i] = bound
            if bound > now:
                continue
            cand = scheduler.candidate(now, draining_for_refresh)
            if cand is None or not cand.ready:
                bounds[i] = scheduler.cacheable_wake(now)
                continue
            if telemetry is not None:
                # Exact ready count: skipped banks can only have held
                # non-ready candidates (see the skip-soundness note in
                # the module docstring).
                ready_seen += 1
            if packed:
                sort = (
                    cand.key
                    if (cand.kind.is_cas or not cas_first)
                    else cas_pen + cand.key
                )
            elif cas_first:
                sort = (not cand.kind.is_cas, cand.key)
            else:
                sort = cand.key
            if best_sort is None or sort < best_sort:
                best, best_sort = cand, sort
        if telemetry is not None and best is not None:
            telemetry.on_arbitration(now, ready_seen)
        return best

    def min_wake(self, now: int) -> Optional[int]:
        """Earliest cached (or computed) wake bound across all banks.

        Used by the controller's sleep logic right after a fruitless
        :meth:`select`, when every pollable bank's bound is fresh.  A
        cached bound can only be conservative (early), which at worst
        wakes the controller for a no-op scan.

        Banks without a cached bound are answered in one batched
        legality-kernel horizon query over their kind masks; only banks
        in FQ special states (mode switches, committed nominations)
        compute their bound scalar.  Per-bank clamping to ``now + 1``
        commutes with the min, so the batch is exact.
        """
        wake: Optional[int] = None
        bounds = self._bounds
        batch_flats: List[int] = []
        batch_masks: List[int] = []
        flats = self._flats
        for i, scheduler in enumerate(self.bank_schedulers):
            bound = bounds[i]
            if bound is None:
                mask = scheduler.wake_mask()
                if mask is None:
                    bound = scheduler.earliest_possible_issue(now)
                    if bound is None:
                        continue
                elif mask == 0:
                    continue
                else:
                    batch_flats.append(flats[i])
                    batch_masks.append(mask)
                    continue
            elif bound >= IDLE_BOUND:
                continue
            if wake is None or bound < wake:
                wake = bound
        if batch_flats:
            horizon = self._kernel.horizon(batch_flats, batch_masks)
            if horizon is not None:
                if horizon <= now:
                    horizon = now + 1
                if wake is None or horizon < wake:
                    wake = horizon
        return wake
