"""Channel scheduler: arbitration across banks' candidate commands.

The channel scheduler scans the banks' nominated commands each cycle
and issues the ready command with the highest priority (paper §2.2).
It uses the same priority levels as the bank schedulers: CAS commands
before RAS commands, then the policy's ordering key.  Channel-level
timing (address bus, data bus, t_ccd, t_wtr, t_rrd) has already been
folded into each candidate's readiness by the DRAM model.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .bank_scheduler import BankScheduler, CandidateCommand


class ChannelScheduler:
    """Selects one ready command per cycle from the bank schedulers."""

    def __init__(self, bank_schedulers: Iterable[BankScheduler]):
        self.bank_schedulers = list(bank_schedulers)

    def select(
        self, now: int, draining_for_refresh: bool = False
    ) -> Optional[CandidateCommand]:
        """The highest-priority ready candidate at cycle ``now``, if any."""
        best: Optional[CandidateCommand] = None
        best_sort = None
        for scheduler in self.bank_schedulers:
            cand = scheduler.candidate(now, draining_for_refresh)
            if cand is None or not cand.ready:
                continue
            sort = (not cand.kind.is_cas, cand.key)
            if best_sort is None or sort < best_sort:
                best, best_sort = cand, sort
        return best
