"""QoS verdicts: per-thread evaluation against the paper's objective.

The FQ memory scheduler's QoS objective (paper §3): *a thread i
allocated a fraction φᵢ of the memory system will run no slower than
the same thread on a private memory system running at φᵢ of the
frequency of the shared memory system.*  This module turns a
co-scheduled run plus per-thread baselines into an auditable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.system import SimResult
from .report import render_table


@dataclass(frozen=True)
class QosVerdict:
    """One thread's outcome against the QoS objective."""

    thread: str
    share: float
    co_scheduled_ipc: float
    baseline_ipc: float
    #: A small slack below 1.0 is tolerated as measurement noise.
    slack: float

    @property
    def normalized_ipc(self) -> float:
        """Co-scheduled IPC over the 1/φ private-baseline IPC."""
        return self.co_scheduled_ipc / self.baseline_ipc

    @property
    def met(self) -> bool:
        """True when normalized IPC reaches 1.0 minus the slack."""
        return self.normalized_ipc >= 1.0 - self.slack


@dataclass(frozen=True)
class QosReport:
    """All threads' verdicts for one workload."""

    policy: str
    verdicts: List[QosVerdict]

    @property
    def all_met(self) -> bool:
        """True when every thread met the QoS objective."""
        return all(v.met for v in self.verdicts)

    @property
    def met_count(self) -> int:
        """Number of threads meeting the QoS objective."""
        return sum(1 for v in self.verdicts if v.met)

    @property
    def worst(self) -> QosVerdict:
        """The thread with the lowest normalized IPC."""
        return min(self.verdicts, key=lambda v: v.normalized_ipc)

    def render(self) -> str:
        """Human-readable table of verdicts."""
        rows = [
            (
                v.thread,
                v.share,
                v.normalized_ipc,
                "met" if v.met else "MISSED",
            )
            for v in self.verdicts
        ]
        return (
            f"QoS report ({self.policy}): {self.met_count}/{len(self.verdicts)} met\n"
            + render_table(["thread", "share φ", "normalized IPC", "verdict"], rows)
        )


def qos_report(
    result: SimResult,
    baseline_ipcs: Sequence[float],
    shares: Optional[Sequence[float]] = None,
    slack: float = 0.05,
) -> QosReport:
    """Evaluate each thread of ``result`` against its 1/φ baseline.

    Args:
        result: A co-scheduled run.
        baseline_ipcs: Each thread's IPC alone on its 1/φ time-scaled
            private memory system (``run_solo(profile, scale=1/φ)``).
        shares: The allocations; equal shares when omitted.
        slack: Tolerated shortfall below normalized IPC 1.0 (the
            paper's vpr case sits at .94 and is reported as a near
            miss).
    """
    n = len(result.threads)
    if len(baseline_ipcs) != n:
        raise ValueError(f"{len(baseline_ipcs)} baselines for {n} threads")
    if shares is None:
        shares = [1.0 / n] * n
    if len(shares) != n:
        raise ValueError(f"{len(shares)} shares for {n} threads")
    if not 0.0 <= slack < 1.0:
        raise ValueError(f"slack must be in [0, 1), got {slack}")
    verdicts = [
        QosVerdict(
            thread=thread.name,
            share=share,
            co_scheduled_ipc=thread.ipc,
            baseline_ipc=baseline,
            slack=slack,
        )
        for thread, baseline, share in zip(result.threads, baseline_ipcs, shares)
    ]
    return QosReport(policy=result.policy, verdicts=verdicts)
