"""Metrics used throughout the paper's evaluation.

* normalized IPC against a time-scaled private baseline (QoS metric)
* harmonic mean of normalized IPCs (system performance, Luo et al.)
* target data-bus utilization and its fair-share waterfilling (§4.2)
* variance of normalized target utilization (the .2 → .0058 headline)
"""

from __future__ import annotations

from typing import List, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; the paper's multi-thread performance metric."""
    if not values:
        raise ValueError("harmonic mean of no values")
    for v in values:
        if v <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {v}")
    return len(values) / sum(1.0 / v for v in values)


def variance(values: Sequence[float]) -> float:
    """Population variance, as used for Figure 9's spread statistic."""
    if not values:
        raise ValueError("variance of no values")
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def normalized(value: float, baseline: float) -> float:
    """value / baseline with a guard for degenerate baselines."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return value / baseline


def fair_share_targets(
    solo_utilizations: Sequence[float],
    shares: Sequence[float],
    capacity: float = 1.0,
    tolerance: float = 1e-9,
) -> List[float]:
    """Per-thread target data-bus utilization (paper §4.2).

    A thread's target is the smaller of (1) its solo utilization — it
    cannot use more than it demands — and (2) its allocated share plus
    a fair share of the excess bandwidth.  Excess is distributed by
    waterfilling: equal increments to every thread that still demands
    more, until the excess is gone or demand is satisfied.
    """
    if len(solo_utilizations) != len(shares):
        raise ValueError("solo_utilizations and shares must align")
    for u in solo_utilizations:
        if u < 0:
            raise ValueError(f"solo utilization must be >= 0, got {u}")
    targets = [min(solo, share * capacity) for solo, share in zip(solo_utilizations, shares)]
    excess = capacity * sum(shares) - sum(targets)
    while excess > tolerance:
        hungry = [
            i for i, (solo, t) in enumerate(zip(solo_utilizations, targets))
            if solo - t > tolerance
        ]
        if not hungry:
            break
        increment = excess / len(hungry)
        consumed = 0.0
        for i in hungry:
            grant = min(increment, solo_utilizations[i] - targets[i])
            targets[i] += grant
            consumed += grant
        if consumed <= tolerance:
            break
        excess -= consumed
    return targets


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²) ∈ (0, 1].

    One when all threads receive equal service; 1/n when a single
    thread receives everything.  A compact companion to the paper's
    variance statistic for Figure 9.
    """
    if not values:
        raise ValueError("fairness index of no values")
    for v in values:
        if v < 0:
            raise ValueError(f"fairness index requires non-negative values, got {v}")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        raise ValueError("fairness index of all-zero values")
    return (total * total) / (len(values) * squares)


def improvement(value: float, baseline: float) -> float:
    """Fractional improvement of ``value`` over ``baseline`` (0.31 = +31%)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return value / baseline - 1.0
