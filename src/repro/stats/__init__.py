"""Evaluation metrics and reporting."""

from .fairness import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    unfairness,
    weighted_speedup,
)
from .metrics import (
    fair_share_targets,
    jain_index,
    harmonic_mean,
    improvement,
    normalized,
    variance,
)
from .qos import QosReport, QosVerdict, qos_report
from .report import render_kv, render_table, sparkline

__all__ = [
    "fair_share_targets",
    "harmonic_speedup",
    "jain_index",
    "harmonic_mean",
    "improvement",
    "max_slowdown",
    "normalized",
    "slowdowns",
    "unfairness",
    "weighted_speedup",
    "QosReport",
    "QosVerdict",
    "qos_report",
    "render_kv",
    "render_table",
    "sparkline",
    "variance",
]
