"""Plain-text rendering of paper-style tables and series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    formatted: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render a titled key/value block."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [title, "=" * len(title)]
    for key, value in pairs:
        shown = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(width)}  {shown}")
    return "\n".join(lines)
