"""Plain-text rendering of paper-style tables and series."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    formatted: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


#: Eighth-block ramp used by :func:`sparkline`.
SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width: Optional[int] = None,
) -> str:
    """Render a numeric series as a unicode block sparkline.

    ``lo``/``hi`` pin the scale (defaults to the series min/max);
    ``width`` downsamples long series by averaging equal chunks.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        chunked = []
        for i in range(width):
            start = i * len(series) // width
            end = max(start + 1, (i + 1) * len(series) // width)
            chunk = series[start:end]
            chunked.append(sum(chunk) / len(chunk))
        series = chunked
    floor = min(series) if lo is None else lo
    ceil = max(series) if hi is None else hi
    span = ceil - floor
    top = len(SPARK_BLOCKS) - 1
    out = []
    for value in series:
        if span <= 0:
            # Flat series: blank when it sits at zero, mid-block otherwise.
            level = 0 if value == 0 else top // 2
        else:
            frac = (value - floor) / span
            level = int(round(min(max(frac, 0.0), 1.0) * top))
        out.append(SPARK_BLOCKS[level])
    return "".join(out)


def render_kv(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render a titled key/value block."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [title, "=" * len(title)]
    for key, value in pairs:
        shown = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(width)}  {shown}")
    return "\n".join(lines)
