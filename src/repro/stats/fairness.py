"""Slowdown-based fairness metrics (MISE / BLISS evaluation style).

The post-paper scheduling literature (STFM, MISE, BLISS) evaluates
fairness through per-thread *slowdown* — alone-run performance over
shared-run performance — rather than the FQMS paper's variance of
normalized target utilization.  This module provides that metric
family, computed offline from measured IPCs (shared run + per-thread
solo runs on the same window), so any registered policy can be ranked
on the same scale:

* per-thread slowdown        IPC_alone / IPC_shared      (>= 1 ideally)
* maximum slowdown           the fairness headline (lower is better)
* unfairness index           max slowdown / min slowdown (1.0 = even)
* weighted speedup           Σ IPC_shared / IPC_alone    (throughput)
* harmonic speedup           n / Σ slowdown              (balance)

The *online* estimator the MISE scheduling policy uses at run time
lives in :mod:`repro.policy.slowdown`; this module is the measured
ground truth the estimator approximates.
"""

from __future__ import annotations

from typing import List, Sequence


def slowdowns(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> List[float]:
    """Per-thread slowdown: alone-run IPC over shared-run IPC.

    A thread that runs as fast shared as alone scores 1.0; a thread
    starved by interference scores high.  Shared IPCs must be positive
    (a thread that retired nothing in the measured window has no
    defined slowdown — widen the window instead of special-casing).
    """
    if len(alone_ipcs) != len(shared_ipcs):
        raise ValueError(
            f"{len(alone_ipcs)} alone IPCs vs {len(shared_ipcs)} shared IPCs"
        )
    if not alone_ipcs:
        raise ValueError("slowdowns of no threads")
    for ipc in alone_ipcs:
        if ipc <= 0:
            raise ValueError(f"alone IPC must be positive, got {ipc}")
    for ipc in shared_ipcs:
        if ipc <= 0:
            raise ValueError(f"shared IPC must be positive, got {ipc}")
    return [alone / shared for alone, shared in zip(alone_ipcs, shared_ipcs)]


def max_slowdown(values: Sequence[float]) -> float:
    """The worst thread's slowdown — the fairness headline number."""
    if not values:
        raise ValueError("max slowdown of no values")
    return max(values)


def unfairness(values: Sequence[float]) -> float:
    """Max slowdown over min slowdown; 1.0 means perfectly even."""
    if not values:
        raise ValueError("unfairness of no values")
    lowest = min(values)
    if lowest <= 0:
        raise ValueError(f"slowdowns must be positive, got {lowest}")
    return max(values) / lowest


def weighted_speedup(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> float:
    """System throughput: Σ IPC_shared / IPC_alone (n = no interference)."""
    return sum(
        1.0 / s for s in slowdowns(alone_ipcs, shared_ipcs)
    )


def harmonic_speedup(values: Sequence[float]) -> float:
    """Balance metric: n / Σ slowdown — rewards fairness *and* speed."""
    if not values:
        raise ValueError("harmonic speedup of no values")
    total = sum(values)
    if total <= 0:
        raise ValueError(f"slowdowns must be positive, got {values!r}")
    return len(values) / total
