"""repro.policy — the pluggable scheduler-policy subsystem.

* :mod:`repro.policy.base` — the :class:`SchedulingPolicy` protocol
  every policy implements (priority key, lifecycle/epoch hooks, the
  event-engine wake-time contract, optional bank-commit rule).
* :mod:`repro.policy.registry` — the name → factory registry behind
  ``SystemConfig.policy``, the CLI, the parallel runner, and the cache
  fingerprints; raises a listing :class:`ValueError` on unknown names.
* :mod:`repro.policy.bliss` — the Blacklisting scheduler (BLISS).
* :mod:`repro.policy.slowdown` — MISE-style slowdown estimation and
  the slowdown-aware scheduler.

The paper's own policies live in :mod:`repro.core.policies` (they are
:class:`SchedulingPolicy` subclasses registered here); adding a new
policy needs only a subclass and a :func:`register` call — see
"Scheduling policies" in ``docs/INTERNALS.md`` for a worked example.
"""

from .base import SchedulingPolicy
from .bliss import BlissPolicy
from .registry import (
    BASELINE_POLICY,
    HEADLINE_POLICIES,
    PolicyContext,
    canonical,
    make_policy,
    register,
    registered_names,
    resolve,
)
from .slowdown import SlowdownEstimator, SlowdownPolicy

__all__ = [
    "BASELINE_POLICY",
    "BlissPolicy",
    "HEADLINE_POLICIES",
    "PolicyContext",
    "SchedulingPolicy",
    "SlowdownEstimator",
    "SlowdownPolicy",
    "canonical",
    "make_policy",
    "register",
    "registered_names",
    "resolve",
]
