"""Packed-integer priority keys: one int compare per candidate.

The scheduler hot path used to build a Python tuple per request per
scheduling pass and compare them lexicographically.  BLISS's hardware
argument (cheap integer compares beat complex ranking logic) applies
to the simulator itself: a policy that declares its key layout —
ordered fields with explicit bit widths — gets its entire ordering
tuple packed into **one int**, so candidate selection is a single
C-level integer comparison with no per-candidate allocation.

The contract mirrors the tuple it replaces:

* Fields pack most-significant-first in :meth:`~repro.policy.base.
  SchedulingPolicy.key_field_specs` order, so integer comparison of
  packed keys equals lexicographic comparison of the tuples.
* ``uint`` fields must lie in ``[0, 2**bits)``; the packed ordering is
  undefined outside the declared width (the generic packer checks,
  the hand-inlined per-policy packers trust the contract).
* ``float`` fields occupy 64 bits through :func:`float_sort_bits`, a
  total-order-preserving image of IEEE-754 doubles (the one caveat:
  ``-0.0`` and ``+0.0`` map to distinct images although they compare
  equal as floats — no simulator quantity ever produces ``-0.0``).

The tuple path (:meth:`~repro.policy.base.SchedulingPolicy.
request_key`) stays fully supported and is the **oracle**: policies
without a declared layout run on tuples exactly as before, and
``REPRO_PACKED_KEYS=0`` forces every policy onto the tuple path so a
differential run can prove packed selection bit-identical.
"""

from __future__ import annotations

from struct import Struct
from typing import NamedTuple, Tuple

from .. import env

#: Bits for monotonically-growing cycle-valued fields (arrival times,
#: service counters): 2**44 cycles ≈ 1.7e13, far past any run length.
TIME_BITS = 44
#: Bits for the global request sequence tie-breaker.
SEQ_BITS = 40
#: Bits a float field occupies (the full IEEE-754 double image).
FLOAT_BITS = 64

_F64 = Struct(">d")
_SIGN = 1 << 63
_MASK64 = (1 << 64) - 1


class KeyField(NamedTuple):
    """One component of a packed priority key.

    Attributes:
        name: Label (matches ``key_field_names()`` order).
        bits: Width in bits; ``FLOAT_BITS`` for floats.
        kind: ``"uint"`` (non-negative int within ``bits``) or
            ``"float"`` (any double, packed via :func:`float_sort_bits`).
    """

    name: str
    bits: int
    kind: str = "uint"


def float_sort_bits(value: float) -> int:
    """Order-preserving 64-bit unsigned image of a double.

    ``a < b  ⟺  float_sort_bits(a) < float_sort_bits(b)`` for every
    pair of non-NaN doubles (including infinities).  Non-negative
    values get the sign bit set; negative values are bit-complemented,
    the classic total-order trick for IEEE-754.
    """
    bits = int.from_bytes(_F64.pack(value), "big")
    if bits & _SIGN:
        return _MASK64 - bits
    return bits | _SIGN


def packed_keys_enabled() -> bool:
    """Whether schedulers may take the packed-int key path.

    ``REPRO_PACKED_KEYS=0`` forces the tuple oracle everywhere — the
    differential lever the packed-vs-tuple harness tests pull.
    """
    return env.text("REPRO_PACKED_KEYS", "1") != "0"


def total_bits(specs: Tuple[KeyField, ...]) -> int:
    """Total packed width of a key layout."""
    return sum(field.bits for field in specs)


def pack_tuple(specs: Tuple[KeyField, ...], values: Tuple) -> int:
    """Generic packer: fold an ordering tuple into one int per ``specs``.

    This is the reference implementation the per-policy fast packers
    must agree with (property-tested in ``tests/policy``), and the
    default :meth:`~repro.policy.base.SchedulingPolicy.packed_key` for
    policies that declare a layout but don't hand-inline the packing.
    Unlike the fast packers it validates every ``uint`` field against
    its declared width, so a field overflowing its budget fails loudly
    instead of silently corrupting the ordering.
    """
    if len(values) != len(specs):
        raise ValueError(
            f"key tuple has {len(values)} fields, layout declares {len(specs)}"
        )
    packed = 0
    for field, value in zip(specs, values):
        if field.kind == "float":
            component = float_sort_bits(value)
        else:
            component = value
            if not 0 <= component < (1 << field.bits):
                raise ValueError(
                    f"key field {field.name!r} = {value!r} outside its "
                    f"declared {field.bits}-bit width"
                )
        packed = (packed << field.bits) | component
    return packed
