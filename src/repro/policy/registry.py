"""Name → factory registry for scheduling policies.

Every policy reachable from a :class:`~repro.sim.config.SystemConfig`
— through the CLI, the experiment drivers, the parallel runner, or the
cache fingerprints — resolves here.  Factories receive a
:class:`PolicyContext` (the policy-relevant slice of the system
configuration) and return a **fresh** :class:`SchedulingPolicy`
instance, so stateful policies get per-controller state while the
paper's stateless policies keep returning their shared singletons.

Lookup is case-insensitive with ``_``/``-`` folding (``fq_vftf`` ≡
``FQ-VFTF``); a typo raises :class:`ValueError` listing every
registered name.  The built-in policies register lazily on first
lookup (avoiding import cycles with :mod:`repro.core.policies`);
external code may :func:`register` additional policies at any time —
that is the whole point of the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..dram.timing import DDR2Timing


#: The registered name every improvement is measured against.
BASELINE_POLICY = "FR-FCFS"

#: The evaluation set of `repro-fqms compare` smoke assertions and the
#: differential check harness: the paper's three headline schedulers
#: plus the two post-paper policies.
HEADLINE_POLICIES: Tuple[str, ...] = (
    "FR-FCFS",
    "FR-VFTF",
    "FQ-VFTF",
    "BLISS",
    "MISE",
)


@dataclass(frozen=True)
class PolicyContext:
    """The policy-relevant slice of a system configuration.

    Factories read only what they need; adding a knob here (and to
    :class:`~repro.sim.config.SystemConfig`, whose ``asdict`` feeds the
    result-cache fingerprint) is the whole recipe for a new
    policy-specific parameter.
    """

    num_threads: int
    timing: "DDR2Timing"
    inversion_bound: Optional[int] = None
    bliss_threshold: int = 4
    bliss_interval: int = 10_000
    slowdown_interval: int = 5_000


PolicyFactory = Callable[[PolicyContext], SchedulingPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}
_ALIASES: Dict[str, str] = {}
_BOOTSTRAPPED = False


def _normalize(name: str) -> str:
    return name.upper().replace("_", "-")


def register(
    name: str,
    factory: PolicyFactory,
    aliases: Tuple[str, ...] = (),
) -> None:
    """Register ``factory`` under ``name`` (and optional aliases).

    Re-registering a name replaces the previous factory (latest wins),
    which keeps test fixtures and notebooks simple.
    """
    key = _normalize(name)
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[_normalize(alias)] = key


def _ensure_registered() -> None:
    """Register the built-in policies exactly once (lazy: import cycles)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from ..core import policies as paper

    def _singleton(policy: SchedulingPolicy) -> PolicyFactory:
        return lambda ctx: policy

    for policy in paper.POLICIES.values():
        register(policy.name, _singleton(policy))

    from .bliss import BlissPolicy

    register(
        "BLISS",
        lambda ctx: BlissPolicy(
            ctx.num_threads,
            threshold=ctx.bliss_threshold,
            clearing_interval=ctx.bliss_interval,
        ),
    )

    from .slowdown import SlowdownPolicy

    register(
        "MISE",
        lambda ctx: SlowdownPolicy(
            ctx.num_threads,
            ctx.timing,
            interval=ctx.slowdown_interval,
        ),
        aliases=("SLOWDOWN",),
    )


def registered_names() -> List[str]:
    """Every registered canonical policy name, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def canonical(name: str) -> str:
    """Resolve ``name`` (case-insensitive, aliases folded) to its
    canonical registered form; :class:`ValueError` lists the registry
    on a miss."""
    _ensure_registered()
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown scheduling policy {name!r}; registered policies: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return key


def resolve(name: str) -> PolicyFactory:
    """The factory registered under ``name`` (with canonicalization)."""
    return _REGISTRY[canonical(name)]


def make_policy(config) -> SchedulingPolicy:
    """Build the policy instance a :class:`SystemConfig` describes.

    Called once per controller, so stateful policies are instantiated
    per channel.  An explicit ``inversion_bound`` override on an
    FQ-family policy resolves to the bounded FQ-VFTF variant, exactly
    as the pre-registry resolver did (ablation A's semantics).
    """
    context = PolicyContext(
        num_threads=config.num_cores,
        timing=config.timing,
        inversion_bound=config.inversion_bound,
        bliss_threshold=config.bliss_threshold,
        bliss_interval=config.bliss_interval,
        slowdown_interval=config.slowdown_interval,
    )
    policy = resolve(config.policy)(context)
    if context.inversion_bound is not None and policy.fq_bank_rule:
        from ..core.policies import fq_vftf_with_bound

        policy = fq_vftf_with_bound(context.inversion_bound)
    return policy
