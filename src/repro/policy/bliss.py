"""BLISS: the Blacklisting memory scheduler (Subramanian et al.).

The observation behind BLISS is that application-aware rank-ordering
schedulers buy their fairness with hardware-expensive full ranking;
nearly all of the benefit comes from a single bit per thread.  A
thread that wins ``threshold`` *consecutive* served requests is
interference-prone (streaming row-hit traffic) and gets
**blacklisted**; requests of non-blacklisted threads take priority
over requests of blacklisted threads — even over their ready row hits
(``key_over_cas``).  Within a priority level, threads are served
round-robin by least-recently-served, then oldest-first.  The
blacklist is cleared every ``clearing_interval`` cycles, so a
penalized thread's priority recovers quickly once it stops streaming.

All state lives in the policy instance (one per controller); the
clearing boundary is published through :meth:`next_event_time`, which
is what keeps the event engine bit-identical to the per-cycle oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .base import SchedulingPolicy
from .packing import SEQ_BITS, TIME_BITS, KeyField

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..controller.bank_scheduler import CandidateCommand
    from ..controller.request import MemoryRequest

#: Width of the round-robin ``last_served`` counter: one increment per
#: served request, so the arrival-time budget is more than enough.
_SERVED_BITS = TIME_BITS
_TAIL_BITS = TIME_BITS + SEQ_BITS

#: A thread is blacklisted after winning this many consecutive
#: served (CAS-issued) requests.
DEFAULT_THRESHOLD = 4
#: The blacklist is cleared every this-many cycles.
DEFAULT_CLEARING_INTERVAL = 10_000


class BlissPolicy(SchedulingPolicy):
    """Interval-based blacklisting with round-robin service."""

    name = "BLISS"
    #: Keys read the mutable blacklist and round-robin state.
    memoize_keys = False
    #: The blacklist bit outranks the CAS-over-RAS preference: a
    #: non-blacklisted thread's activate beats a blacklisted thread's
    #: ready row hit, which is the BLISS interference-breaking move.
    key_over_cas = True
    has_hooks = True

    def __init__(
        self,
        num_threads: int,
        threshold: int = DEFAULT_THRESHOLD,
        clearing_interval: int = DEFAULT_CLEARING_INTERVAL,
    ):
        if num_threads <= 0:
            raise ValueError(f"need at least one thread, got {num_threads}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if clearing_interval < 1:
            raise ValueError(
                f"clearing interval must be >= 1, got {clearing_interval}"
            )
        self.num_threads = num_threads
        self.threshold = threshold
        self.clearing_interval = clearing_interval
        #: One bit per thread: True = deprioritized this interval.
        self.blacklisted: List[bool] = [False] * num_threads
        #: Consecutive-win streak tracking (the thread of the last
        #: served request and its current run length).
        self._streak_thread = -1
        self._streak = 0
        #: Round-robin state: a monotone service counter and, per
        #: thread, the counter value at its last served request —
        #: least-recently-served compares lowest.
        self._serve_counter = 0
        self._last_served: List[int] = [0] * num_threads
        self._next_clear = clearing_interval

    def key_field_names(self) -> Tuple[str, ...]:
        return ("blacklisted", "last_served", "arrival_time", "seq")

    def request_key(self, request: "MemoryRequest") -> Tuple:
        thread = request.thread_id
        return (
            1 if self.blacklisted[thread] else 0,
            self._last_served[thread],
            request.arrival_time,
            request.seq,
        )

    def key_field_specs(self) -> Tuple[KeyField, ...]:
        return (
            KeyField("blacklisted", 1),
            KeyField("last_served", _SERVED_BITS),
            KeyField("arrival_time", TIME_BITS),
            KeyField("seq", SEQ_BITS),
        )

    def packed_key(self, request: "MemoryRequest") -> int:
        # Reads the same mutable state as request_key, shift-composed —
        # no per-thread cache to fall out of sync with the blacklist.
        thread = request.thread_id
        prefix = self._last_served[thread]
        if self.blacklisted[thread]:
            prefix |= 1 << _SERVED_BITS
        return (
            (prefix << _TAIL_BITS)
            | (request.arrival_time << SEQ_BITS)
            | request.seq
        )

    # -- hooks -------------------------------------------------------------

    def on_issue(self, cand: "CandidateCommand", now: int) -> None:
        request = cand.request
        if request is None or not cand.kind.is_cas:
            return  # only served (CAS-issued) requests count as wins
        thread = request.thread_id
        self._serve_counter += 1
        self._last_served[thread] = self._serve_counter
        if thread == self._streak_thread:
            self._streak += 1
        else:
            self._streak_thread = thread
            self._streak = 1
        if self._streak >= self.threshold:
            self.blacklisted[thread] = True

    def on_cycle(self, now: int) -> None:
        if now < self._next_clear:
            return
        for thread in range(self.num_threads):
            self.blacklisted[thread] = False
        self._streak_thread = -1
        self._streak = 0
        self._next_clear = (
            now // self.clearing_interval + 1
        ) * self.clearing_interval

    def next_event_time(self, now: int) -> Optional[int]:
        return self._next_clear
