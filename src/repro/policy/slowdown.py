"""MISE-style slowdown estimation and the slowdown-aware scheduler.

MISE (Subramanian et al.) observes that a memory-bound thread's
performance is proportional to the rate at which its requests are
served, so its *slowdown* — alone-run time over shared-run time — can
be estimated online from per-request service: accumulate the cycles
each completed request actually waited in the shared system against
the cycles it would have taken with the memory system to itself (an
unloaded closed-bank access), and the ratio of the two sums is the
thread's slowdown estimate.

:class:`SlowdownEstimator` keeps those two ledgers per thread;
:class:`SlowdownPolicy` snapshots the estimates every ``interval``
cycles and prioritizes the highest-estimated-slowdown thread first
(the MISE-QoS idea of helping whoever is furthest behind), breaking
ties oldest-first.  The interval boundary is published through
:meth:`~SlowdownPolicy.next_event_time`, keeping the event engine
bit-identical to the per-cycle oracle.

The same estimator feeds the offline fairness metrics in
:mod:`repro.stats.fairness` (there the alone-run IPC is *measured*
from a solo simulation rather than estimated, which is what MISE's
hardware cannot do).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .base import SchedulingPolicy
from .packing import (
    FLOAT_BITS,
    SEQ_BITS,
    TIME_BITS,
    KeyField,
    float_sort_bits,
)

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..controller.request import MemoryRequest
    from ..dram.timing import DDR2Timing

_TAIL_BITS = TIME_BITS + SEQ_BITS

#: Slowdown estimates are refreshed every this-many cycles.
DEFAULT_INTERVAL = 5_000


class SlowdownEstimator:
    """Per-thread online slowdown estimation from request service.

    ``observe`` one completed request at a time; ``slowdown`` is the
    ratio of accumulated shared-system service to the accumulated
    alone-run estimate, floored at 1.0 (a thread cannot run faster
    shared than alone).  Threads with no completions report 1.0.
    """

    def __init__(self, num_threads: int, alone_service_cycles: int):
        if num_threads <= 0:
            raise ValueError(f"need at least one thread, got {num_threads}")
        if alone_service_cycles < 1:
            raise ValueError(
                "alone service estimate must be >= 1 cycle, got "
                f"{alone_service_cycles}"
            )
        self.num_threads = num_threads
        self.alone_service_cycles = alone_service_cycles
        #: Cycles requests actually spent arrival → data-done, shared.
        self.shared_cycles: List[int] = [0] * num_threads
        #: Cycles the same requests would have taken alone.
        self.alone_cycles: List[int] = [0] * num_threads
        self.completed: List[int] = [0] * num_threads

    def observe(self, thread: int, waited_cycles: int) -> None:
        """Account one completed request that waited ``waited_cycles``."""
        self.shared_cycles[thread] += max(int(waited_cycles), 1)
        self.alone_cycles[thread] += self.alone_service_cycles
        self.completed[thread] += 1

    def slowdown(self, thread: int) -> float:
        if self.completed[thread] == 0:
            return 1.0
        estimate = self.shared_cycles[thread] / self.alone_cycles[thread]
        return estimate if estimate > 1.0 else 1.0

    def slowdowns(self) -> List[float]:
        return [self.slowdown(t) for t in range(self.num_threads)]


class SlowdownPolicy(SchedulingPolicy):
    """Highest-estimated-slowdown-first scheduling (MISE-QoS style)."""

    name = "MISE"
    #: Keys read the mutable slowdown snapshot.
    memoize_keys = False
    has_hooks = True

    def __init__(
        self,
        num_threads: int,
        timing: "DDR2Timing",
        interval: int = DEFAULT_INTERVAL,
    ):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.num_threads = num_threads
        self.interval = interval
        # The alone-run service estimate: an unloaded closed-bank
        # access (activate + CAS latency + data burst), the same
        # figure the paper's unloaded-latency calibration uses.
        self.estimator = SlowdownEstimator(
            num_threads, timing.t_rcd + timing.t_cl + timing.burst
        )
        #: The snapshot keys read; refreshed at interval boundaries so
        #: priorities are stable within an interval.
        self._slowdown: List[float] = [1.0] * num_threads
        #: ``float_sort_bits(-slowdown)`` per thread, refreshed with the
        #: snapshot so packed_key never packs a float on the hot path.
        self._packed_prefix: List[int] = [
            float_sort_bits(-1.0)
        ] * num_threads
        self._next_epoch = interval

    def key_field_names(self) -> Tuple[str, ...]:
        return ("neg_slowdown", "arrival_time", "seq")

    def request_key(self, request: "MemoryRequest") -> Tuple:
        return (
            -self._slowdown[request.thread_id],
            request.arrival_time,
            request.seq,
        )

    def key_field_specs(self) -> Tuple[KeyField, ...]:
        return (
            KeyField("neg_slowdown", FLOAT_BITS, "float"),
            KeyField("arrival_time", TIME_BITS),
            KeyField("seq", SEQ_BITS),
        )

    def packed_key(self, request: "MemoryRequest") -> int:
        return (
            (self._packed_prefix[request.thread_id] << _TAIL_BITS)
            | (request.arrival_time << SEQ_BITS)
            | request.seq
        )

    def slowdown_estimates(self) -> List[float]:
        """The snapshot currently driving priorities (one per thread)."""
        return list(self._slowdown)

    # -- hooks -------------------------------------------------------------

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        self.estimator.observe(
            request.thread_id, now - request.arrival_time
        )

    def on_cycle(self, now: int) -> None:
        if now < self._next_epoch:
            return
        self._slowdown = self.estimator.slowdowns()
        self._packed_prefix = [float_sort_bits(-s) for s in self._slowdown]
        self._next_epoch = (now // self.interval + 1) * self.interval

    def next_event_time(self, now: int) -> Optional[int]:
        return self._next_epoch
