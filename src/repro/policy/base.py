"""The pluggable scheduling-policy protocol.

Every memory-scheduling policy — the paper's three schedulers, the
ablation variants, and the post-paper additions (BLISS, MISE) — is a
:class:`SchedulingPolicy`.  The controller and the bank/channel
schedulers dispatch through this protocol only; nothing outside this
package may assume a concrete policy class.

A policy contributes up to four things:

1. **A priority key** (:meth:`SchedulingPolicy.request_key`): the
   per-request ordering tuple, lower = higher priority.  Two class
   flags shape how the schedulers consume it:

   * ``memoize_keys`` — True (default) means a request's key is a pure
     function of the request's fields (including its cached VFT
     estimate, refreshed under epoch stamps) and may be cached per
     request (the paper policies).  Stateful policies whose
     keys read mutable policy state (BLISS's blacklist, MISE's
     slowdown table) must set it False so keys are recomputed on every
     scheduling pass.
   * ``key_over_cas`` — False (default) keeps Rixner's CAS-over-RAS
     level above the key; True ranks the policy key *above* the
     CAS-over-RAS preference (BLISS: a non-blacklisted thread's
     activate beats a blacklisted thread's ready row hit).  Ready
     commands always rank above not-ready ones.

2. **Lifecycle hooks** (``on_arrival`` / ``on_issue`` /
   ``on_complete``) and a per-cycle **epoch hook** (``on_cycle``),
   dispatched by the controller when ``has_hooks`` is True.  Hooks
   observe and update *policy-owned* state only; they must never touch
   controller or DRAM state.

3. **An event-engine wake time** (:meth:`next_event_time`).  The
   event engine only calls ``tick`` (and therefore ``on_cycle``) at
   stepped cycles, so a policy whose state changes at interval
   boundaries MUST publish each boundary here; the controller folds it
   into its own wake time and the engine steps that cycle.  The
   obligations mirror the rest of the engine contract: the answer may
   be conservative (too early just steps a no-op cycle) but never too
   late, and ``on_cycle`` must be a no-op at non-boundary cycles so
   the per-cycle oracle (which calls it every cycle) stays
   bit-identical to the event engine (which calls it only at stepped
   cycles).

4. **An optional bank-commit rule** (``fq_bank_rule`` plus
   ``inversion_bound``): the paper's §3.3 bounded-priority-inversion
   behaviour.  Policies in this family (``fq_family``) arm the
   :mod:`repro.check` inversion invariant.

Determinism contract: policy state may only depend on simulated cycles
and observed simulator events — importing ``time``, ``datetime`` or
``random`` anywhere under ``repro/policy/`` is a DET007 lint error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from .packing import KeyField, pack_tuple

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..controller.bank_scheduler import CandidateCommand
    from ..controller.request import MemoryRequest


class SchedulingPolicy:
    """Base class and protocol for memory-scheduler priority policies.

    Subclasses override :meth:`request_key` (required) and whichever
    flags and hooks their mechanism needs.  The defaults describe the
    simplest possible policy: stateless, no VTMS, no bank-commit rule,
    no hooks, keys cacheable per request.
    """

    #: Short identifier used in reports and the result cache.
    name: str = "?"
    #: Whether request keys come from VTMS virtual finish/start times
    #: (the controller builds per-thread VTMS state when True).
    uses_vtms: bool = False
    #: Whether the §3.3 bounded-inversion bank-commit rule is active.
    fq_bank_rule: bool = False
    #: The bound ``x`` in cycles; ``None`` selects t_RAS at scheduler
    #: construction time (the paper's choice).
    inversion_bound: Optional[int] = None
    #: Paper §3.2 solution 1: finish-times fixed at arrival.
    arrival_accounting: bool = False
    #: Paper §2.3: earliest virtual *start*-time priority.
    start_time_priority: bool = False
    #: True when keys are pure in the request's fields (including its
    #: epoch-stamped VFT estimate) and may be memoized per request;
    #: stateful policies must set False.
    memoize_keys: bool = True
    #: True ranks the policy key above the CAS-over-RAS preference.
    key_over_cas: bool = False
    #: True when the controller must dispatch the lifecycle/epoch hooks
    #: below; False keeps the hook sites at one pointer test each.
    has_hooks: bool = False

    @property
    def fq_family(self) -> bool:
        """True for policies with the §3.3 bank-commit rule.

        The :mod:`repro.check` inversion invariant arms only for this
        family; other policies have no bounded-inversion obligation.
        """
        return self.fq_bank_rule

    def key_field_names(self) -> Tuple[str, ...]:
        """Labels for the components of :meth:`request_key`, in order.

        Used by telemetry to annotate lifecycle records' priority keys
        and by reports; purely descriptive.
        """
        return ("arrival_time", "seq")

    def request_key(self, request: "MemoryRequest") -> Tuple:
        """Ordering key — lower compares as higher priority."""
        raise NotImplementedError

    # -- packed-int keys (see repro.policy.packing) -------------------------

    def key_field_specs(self) -> Optional[Tuple[KeyField, ...]]:
        """Declared bit-width layout of the key fields, or ``None``.

        Returning a :class:`~repro.policy.packing.KeyField` tuple (one
        per :meth:`key_field_names` entry, same order) opts the policy
        into packed-int scheduling: the schedulers compare the single
        int from :meth:`packed_key` instead of allocating the ordering
        tuple per candidate.  ``None`` (the default) keeps the policy
        on the tuple path — always correct, just slower.  A policy that
        declares a layout promises every ``uint`` field stays within
        its width for the lifetime of a run; the tuple path remains the
        oracle either way.
        """
        return None

    def packed_key(self, request: "MemoryRequest") -> int:
        """:meth:`request_key` folded into one int per the declared layout.

        The default packs :meth:`request_key`'s tuple through the
        generic (checked) packer; hot policies override this with
        hand-inlined shifts that skip both the tuple allocation and
        the width checks.  Must order identically to ``request_key``:
        ``packed_key(a) < packed_key(b)  ⟺  request_key(a) <
        request_key(b)`` for all requests visible in one run.
        """
        specs = self.key_field_specs()
        if specs is None:
            raise NotImplementedError(
                f"policy {self.name!r} declares no key layout"
            )
        return pack_tuple(specs, self.request_key(request))

    # -- lifecycle hooks (dispatched only when ``has_hooks``) --------------

    def on_arrival(self, request: "MemoryRequest", now: int) -> None:
        """The controller accepted ``request`` at cycle ``now``."""

    def on_issue(self, cand: "CandidateCommand", now: int) -> None:
        """The channel scheduler issued ``cand`` at cycle ``now``."""

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        """``request``'s data finished on the bus at cycle ``now``."""

    def on_cycle(self, now: int) -> None:
        """Top-of-tick epoch hook for interval-based policies.

        Called every controller tick.  Must be a no-op except at the
        boundaries published by :meth:`next_event_time` — the event
        engine only steps those cycles, and both engines must observe
        identical policy state.
        """

    def next_event_time(self, now: int) -> Optional[int]:
        """Earliest future cycle at which :meth:`on_cycle` does work.

        ``None`` means the policy never needs a wake-up of its own.
        A conservative (early) answer is safe; a late one breaks the
        event engine's bit-identity with the per-cycle oracle.

        The answer must be an **absolute** cycle number derived from
        policy state, not an offset from ``now``: the sharded wake
        index caches it per channel until the controller next ticks,
        so two calls with different ``now`` values between the same
        pair of ticks must return the same boundary.
        """
        return None
