"""The assembled SDRAM memory system: ranks + channel + refresh.

This is the device-side model the memory controller talks to.  It
answers earliest-legal-issue queries (combining bank, rank, and
channel constraints), applies issued commands, and runs the refresh
engine.  It never chooses *which* command to issue — scheduling policy
lives in :mod:`repro.controller`.
"""

from __future__ import annotations

from typing import List, Optional

from .bank import Bank
from .commands import CommandType
from .legality import LegalityKernel
from .rank import Rank
from .timing import DDR2Timing


class DramSystem:
    """A single-channel SDRAM memory system (paper Table 5: 1 rank, 8 banks)."""

    def __init__(
        self,
        timing: DDR2Timing,
        num_ranks: int = 1,
        num_banks: int = 8,
        enable_refresh: bool = True,
    ):
        if num_ranks <= 0:
            raise ValueError(f"need at least one rank, got {num_ranks}")
        from .channel import Channel  # local import to avoid cycle in docs

        self.timing = timing
        self.ranks: List[Rank] = [Rank(r, timing, num_banks) for r in range(num_ranks)]
        self.channel = Channel(timing)
        self.enable_refresh = enable_refresh
        #: Absolute cycle of the next mandatory refresh.  Together with
        #: :attr:`refresh_end` this is part of the event-engine wake
        #: contract: the controller folds both boundaries into the wake
        #: time it publishes to the sharded wake index, so they may
        #: only move inside :meth:`try_start_refresh` — a tick the
        #: controller by construction observes and republishes after.
        self.next_refresh_due = timing.t_refi if enable_refresh else None
        #: End cycle of an in-progress refresh, or None.
        self.refresh_end: Optional[int] = None
        self.refresh_count = 0
        #: Total cycles spent refreshing (for the FQ real clock).
        self.refresh_cycles = 0
        #: Number of banks with an open row; maintained by :meth:`issue`
        #: so the controller's busy probe is O(1).
        self.open_banks = 0
        #: Batched legality kernel: mirrors the bank/rank/channel timing
        #: state as flat arrays and answers every earliest-issue query.
        #: Valid only while mutations flow through :meth:`issue` and
        #: :meth:`try_start_refresh` (see its invalidation rules).
        self.kernel = LegalityKernel(self)

    # -- topology helpers --------------------------------------------------

    @property
    def num_banks(self) -> int:
        return len(self.ranks[0])

    @property
    def num_ranks(self) -> int:
        return len(self.ranks)

    def bank(self, rank: int, bank: int) -> Bank:
        return self.ranks[rank].banks[bank]

    def iter_banks(self):
        for rank in self.ranks:
            for bank in rank.banks:
                yield rank.index, bank

    # -- refresh engine ----------------------------------------------------

    def in_refresh(self, now: int) -> bool:
        """True while an all-bank refresh is in progress."""
        return self.refresh_end is not None and now < self.refresh_end

    def refresh_due(self, now: int) -> bool:
        """True when a refresh must be started as soon as banks close."""
        return (
            self.enable_refresh
            and self.next_refresh_due is not None
            and now >= self.next_refresh_due
            and not self.in_refresh(now)
        )

    def try_start_refresh(self, now: int) -> bool:
        """Start a refresh at ``now`` if one is due and all banks are closed.

        "Closed" means fully precharged: a bank whose closing precharge
        issued less than ``t_rp`` ago is still mid-precharge, and a
        refresh command before the precharge completes violates the
        DDR2 protocol (all banks must be idle when REF issues).

        Returns True if a refresh started.  The controller is expected
        to stop opening rows while :meth:`refresh_due` holds so this
        eventually succeeds.
        """
        if not self.refresh_due(now):
            return False
        if not all(rank.all_closed() for rank in self.ranks):
            return False
        if any(
            now < bank.precharge_done for _, bank in self.iter_banks()
        ):
            return False
        for rank in self.ranks:
            rank.refresh(now)
        self.kernel.on_refresh()
        self.refresh_end = now + self.timing.t_rfc
        self.refresh_cycles += self.timing.t_rfc
        self.refresh_count += 1
        self.next_refresh_due = now + self.timing.t_refi
        return True

    # -- command legality / issue ------------------------------------------

    def earliest_issue(self, kind: CommandType, rank: int, bank: int) -> Optional[int]:
        """Earliest cycle ``kind`` may issue to (rank, bank), or None.

        Combines bank-state legality with bank, rank, and channel
        timing via the batched :class:`~repro.dram.legality.
        LegalityKernel` mirrors.  Refresh blackouts are handled by the
        caller via :meth:`in_refresh`, since their start time is not
        yet known.
        """
        earliest = self.kernel.earliest_issue(kind, rank, bank)
        if earliest is None:
            return None
        refresh_end = self.refresh_end
        if refresh_end is not None and refresh_end > earliest:
            return refresh_end
        return earliest

    def earliest_issue_reference(
        self, kind: CommandType, rank: int, bank: int
    ) -> Optional[int]:
        """The original object-walking combine; the kernel's oracle.

        Kept for the legality differential tests: walks the live bank,
        rank, and channel objects per query, so it is correct even when
        those objects were mutated behind the kernel's back.
        """
        bank_earliest = self.ranks[rank].banks[bank].earliest_issue(kind)
        if bank_earliest is None:
            return None
        earliest = max(
            bank_earliest,
            self.ranks[rank].earliest_issue(kind, bank),
            self.channel.earliest_issue(kind),
        )
        if self.refresh_end is not None:
            earliest = max(earliest, self.refresh_end)
        return earliest

    def can_issue(self, kind: CommandType, rank: int, bank: int, now: int) -> bool:
        """True when ``kind`` may legally issue to (rank, bank) at ``now``."""
        refresh_end = self.refresh_end
        if refresh_end is not None and now < refresh_end:
            return False
        earliest = self.kernel.earliest_issue(kind, rank, bank)
        return earliest is not None and now >= earliest

    def issue(self, kind: CommandType, rank: int, bank: int, row: int, now: int) -> None:
        """Issue ``kind`` to (rank, bank, row) at cycle ``now``.

        Raises if any bank, rank, or channel constraint is violated —
        scheduler bugs surface as exceptions rather than silently wrong
        timing.
        """
        if self.in_refresh(now):
            raise RuntimeError(f"command {kind.value} issued during refresh at {now}")
        earliest = self.earliest_issue(kind, rank, bank)
        if earliest is None or now < earliest:
            raise RuntimeError(
                f"command {kind.value} to rank {rank} bank {bank} at {now} "
                f"violates timing (earliest legal {earliest})"
            )
        self.ranks[rank].issue(kind, bank, row, now)
        self.channel.issue(kind, now)
        if kind is CommandType.ACTIVATE:
            self.open_banks += 1
        elif kind is CommandType.PRECHARGE:
            self.open_banks -= 1
        self.kernel.on_issue(kind, rank, bank)

    # -- completion timing ---------------------------------------------------

    def read_data_available(self, issue_time: int) -> int:
        """Cycle the last beat of a read issued at ``issue_time`` arrives."""
        return issue_time + self.timing.t_cl + self.timing.burst

    def write_data_done(self, issue_time: int) -> int:
        """Cycle the last beat of a write issued at ``issue_time`` lands."""
        return issue_time + self.timing.t_wl + self.timing.burst
