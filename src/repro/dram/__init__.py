"""DDR2 SDRAM device model: timing, banks, ranks, channel, refresh."""

from .bank import Bank, IllegalCommandError
from .channel import Channel
from .commands import Command, CommandType
from .dram_system import DramSystem
from .rank import Rank
from .timing import DDR2Timing

__all__ = [
    "Bank",
    "Channel",
    "Command",
    "CommandType",
    "DramSystem",
    "DDR2Timing",
    "IllegalCommandError",
    "Rank",
]
