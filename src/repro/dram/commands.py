"""SDRAM command vocabulary.

The paper groups *read*/*write* as **CAS commands** and
*activate*/*precharge* as **RAS commands**; refresh is issued by the
controller's refresh engine, never by a bank scheduler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandType(enum.Enum):
    """The five SDRAM commands the model issues.

    ``is_cas`` (column / data-moving) and ``is_ras`` (row / bank
    management) are plain member attributes, not properties: the
    scheduler consults them on every candidate comparison, making them
    one of the hottest reads in the simulator.
    """

    # Bare annotations declare non-member instance attributes (filled
    # in below), so type checkers know every member carries them.
    is_cas: bool
    is_ras: bool

    ACTIVATE = "activate"
    PRECHARGE = "precharge"
    READ = "read"
    WRITE = "write"
    REFRESH = "refresh"


for _member in CommandType:
    _member.is_cas = _member in (CommandType.READ, CommandType.WRITE)
    _member.is_ras = _member in (CommandType.ACTIVATE, CommandType.PRECHARGE)
del _member


@dataclass
class Command:
    """A single SDRAM command bound for a specific bank.

    Attributes:
        kind: The command type.
        bank: Target bank index.
        row: Target row (activates and CAS bookkeeping).
        request: The memory request this command serves, if any.
            Refresh commands carry no request.
    """

    kind: CommandType
    bank: int
    row: int = 0
    request: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        req = f" req={self.request}" if self.request is not None else ""
        return f"<{self.kind.value} bank={self.bank} row={self.row}{req}>"
