"""Batched command-legality kernel: earliest-legal-issue as arrays.

The original legality path answered "when may command X issue to
(rank, bank)?" by walking three objects per query — bank, rank,
channel — recombining the same timing terms every time.  This kernel
keeps the *combined-component* form of that computation as flat
per-bank arrays plus a handful of rank/channel scalars, updated
incrementally on each issued command (an issue changes one bank's
components, at most one rank's scalars, and the channel scalars).  A
scalar query is then a couple of list indexes and ``max`` folds, and
the batched :meth:`horizon` collapses "earliest possible issue across
all banks of the channel" — the quantity the event engine's wake logic
needs — into a single vector min.

Components per flat bank index ``i = rank * num_banks + bank``
(``None`` = the bank's state forbids the command):

* ``act[i]``  = max(precharge_done, last_activate + tRC)        (closed)
* ``pre[i]``  = max(act+tRAS, read+tRTP, write_end+tWR)         (open)
* ``cas[i]``  = last_activate + tRCD                            (open)

Rank scalars: ``rank_act`` (tRRD and the rolling four-activate tFAW
window), ``rank_read`` (write-to-read turnaround, tWTR).  Channel
scalars: ``cmd`` (one command per cycle), ``chan_read``/``chan_write``
(tCCD and data-bus occupancy, offset by CL/WL).  The full earliest is
the max of the bank component, the matching rank/channel scalars, and
— folded by :class:`~repro.dram.dram_system.DramSystem` — any refresh
blackout.

**Invalidation rules**: the mirrors are valid only while every state
mutation flows through :meth:`on_issue` / :meth:`on_refresh`, which
:class:`~repro.dram.dram_system.DramSystem` guarantees for commands
issued via ``DramSystem.issue`` and refreshes via
``try_start_refresh``.  Code that pokes ``Bank``/``Rank``/``Channel``
objects directly (some unit tests do) must call :meth:`sync_all`
before querying the kernel.  ``DramSystem.earliest_issue_reference``
retains the original object-walking combine as the oracle the
differential tests pin this kernel against.

Two interchangeable backends drive the batched min: ``numpy`` (a
vector min over cached int64 arrays, rebuilt lazily per mutation
generation) and pure-``python`` (a plain loop over the same lists).
numpy remains an optional extra — ``auto`` selects it only when it
imports *and* the channel is wide enough for vectorization to win
(the paper's 8-bank config is not); `REPRO_LEGALITY_BACKEND` forces
either backend, and both must agree bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from .. import env
from .commands import CommandType

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from .dram_system import DramSystem

#: Kind-selection bits for :meth:`LegalityKernel.earliest_by_mask` /
#: :meth:`LegalityKernel.horizon`.
MASK_ACT = 1
MASK_PRE = 2
MASK_READ = 4
MASK_WRITE = 8

#: "Forbidden / no work" sentinel inside the numpy arrays; larger than
#: any reachable cycle count, small enough that int64 max-folds with
#: real timing terms cannot overflow.
FORBID = 1 << 60

#: Flat-bank count at or above which ``auto`` prefers the numpy
#: backend; below it the per-call array overhead loses to the loop.
AUTO_NUMPY_MIN_BANKS = 32

_np = None
_np_checked = False


def _numpy():
    """The numpy module, or None (numpy is strictly optional)."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:  # pragma: no cover - exercised via the no-numpy CI leg
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
    return _np


def resolve_backend(num_flat_banks: int, choice: Optional[str] = None) -> str:
    """Pick the batched backend: ``"numpy"`` or ``"python"``.

    ``choice`` (default: the ``REPRO_LEGALITY_BACKEND`` env var)
    may be ``auto``, ``numpy``, or ``python``.  Forcing ``numpy``
    without numpy installed is an error — a silent fallback would
    let the numpy differential leg pass without testing anything.
    """
    if choice is None:
        choice = env.text("REPRO_LEGALITY_BACKEND", "auto")
    if choice == "python":
        return "python"
    if choice == "numpy":
        if _numpy() is None:
            raise RuntimeError(
                "REPRO_LEGALITY_BACKEND=numpy but numpy is not importable"
            )
        return "numpy"
    if choice != "auto":
        raise ValueError(
            f"unknown legality backend {choice!r}; "
            "expected auto, numpy, or python"
        )
    if num_flat_banks >= AUTO_NUMPY_MIN_BANKS and _numpy() is not None:
        return "numpy"
    return "python"


class LegalityKernel:
    """Incremental earliest-legal-issue state for one memory channel."""

    def __init__(self, dram: "DramSystem", backend: Optional[str] = None):
        self.dram = dram
        self.num_banks = dram.num_banks
        self.num_ranks = dram.num_ranks
        n = self.num_banks * self.num_ranks
        self.num_flat_banks = n
        self.backend = resolve_backend(n, backend)
        # Canonical (python-list) component state; the numpy arrays are
        # derived views rebuilt lazily when ``version`` moves.
        self._act: List[Optional[int]] = [0] * n
        self._pre: List[Optional[int]] = [None] * n
        self._cas: List[Optional[int]] = [None] * n
        self._rank_act: List[int] = [0] * self.num_ranks
        self._rank_read: List[int] = [0] * self.num_ranks
        self._cmd = 0
        self._chan_read = 0
        self._chan_write = 0
        #: Mutation generation; bumped by every on_issue/on_refresh.
        self.version = 0
        self._np_version = -1
        self._np_combined = None
        #: Optional repro.obs KernelCounters; None in normal runs, so
        #: every instrumented site pays one attribute test.
        self.counters = None
        self.sync_all()

    # -- mirror maintenance -------------------------------------------------

    def _sync_bank(self, rank: int, bank: int) -> None:
        i = rank * self.num_banks + bank
        b = self.dram.ranks[rank].banks[bank]
        t = b.timing
        if b.open_row is None:
            act = b.precharge_done
            alt = b.last_activate + t.t_rc
            self._act[i] = alt if alt > act else act
            self._pre[i] = None
            self._cas[i] = None
        else:
            self._act[i] = None
            pre = b.last_activate + t.t_ras
            alt = b.last_read + t.t_rtp
            if alt > pre:
                pre = alt
            alt = b.write_data_end + t.t_wr
            if alt > pre:
                pre = alt
            self._pre[i] = pre
            self._cas[i] = b.last_activate + t.t_rcd

    def _sync_rank(self, rank: int) -> None:
        r = self.dram.ranks[rank]
        t = r.timing
        act = r.last_activate + t.t_rrd
        if len(r.activate_times) == 4:
            alt = r.activate_times[0] + t.t_faw
            if alt > act:
                act = alt
        self._rank_act[rank] = act
        self._rank_read[rank] = r.write_data_end + t.t_wtr

    def _sync_channel(self) -> None:
        ch = self.dram.channel
        t = ch.timing
        cmd = ch.last_command + 1
        self._cmd = cmd
        cas = ch.last_cas + t.t_ccd
        if cas < cmd:
            cas = cmd
        read = ch.data_bus_free - t.t_cl
        self._chan_read = read if read > cas else cas
        write = ch.data_bus_free - t.t_wl
        self._chan_write = write if write > cas else cas

    def sync_all(self) -> None:
        """Rebuild every mirror from the live DRAM objects."""
        for rank in range(self.num_ranks):
            self._sync_rank(rank)
            for bank in range(self.num_banks):
                self._sync_bank(rank, bank)
        self._sync_channel()
        self.version += 1
        if self.counters is not None:
            self.counters.syncs += 1

    def on_issue(self, kind: CommandType, rank: int, bank: int) -> None:
        """Refresh the mirrors touched by ``kind`` issuing to (rank, bank).

        One bank's components always change; rank scalars change only
        for activates (tRRD/tFAW window) and writes (tWTR turnaround);
        the channel scalars change on every command.
        """
        self._sync_bank(rank, bank)
        if kind is CommandType.ACTIVATE or kind is CommandType.WRITE:
            self._sync_rank(rank)
        self._sync_channel()
        self.version += 1

    def on_refresh(self) -> None:
        """An all-bank refresh moved every bank's ``precharge_done``."""
        for rank in range(self.num_ranks):
            for bank in range(self.num_banks):
                self._sync_bank(rank, bank)
        self.version += 1

    # -- scalar queries ------------------------------------------------------

    def earliest_issue(
        self, kind: CommandType, rank: int, bank: int
    ) -> Optional[int]:
        """Earliest cycle ``kind`` may issue to (rank, bank), sans refresh.

        ``None`` when bank state forbids the command.  Identical to the
        object-walking ``DramSystem.earliest_issue_reference`` modulo
        the refresh fold, which the DRAM system applies on top.
        """
        counters = self.counters
        if counters is not None:
            counters.queries += 1
        i = rank * self.num_banks + bank
        if kind.is_cas:
            t = self._cas[i]
            if t is None:
                return None
            if kind is CommandType.READ:
                alt = self._rank_read[rank]
                if alt > t:
                    t = alt
                alt = self._chan_read
            else:
                alt = self._chan_write
        elif kind is CommandType.ACTIVATE:
            t = self._act[i]
            if t is None:
                return None
            alt = self._rank_act[rank]
            if alt > t:
                t = alt
            alt = self._cmd
        else:  # PRECHARGE
            t = self._pre[i]
            if t is None:
                return None
            alt = self._cmd
        return alt if alt > t else t

    def earliest_by_mask(self, flat_bank: int, mask: int) -> Optional[int]:
        """Min earliest-issue over the kinds selected by ``mask``.

        ``mask`` is an OR of ``MASK_ACT``/``MASK_PRE``/``MASK_READ``/
        ``MASK_WRITE``; kinds the bank state forbids contribute
        nothing.  ``None`` when no selected kind is possible.
        """
        rank = flat_bank // self.num_banks
        earliest: Optional[int] = None
        if mask & MASK_ACT:
            t = self._act[flat_bank]
            if t is not None:
                alt = self._rank_act[rank]
                if alt > t:
                    t = alt
                if self._cmd > t:
                    t = self._cmd
                earliest = t
        if mask & MASK_PRE:
            t = self._pre[flat_bank]
            if t is not None:
                if self._cmd > t:
                    t = self._cmd
                if earliest is None or t < earliest:
                    earliest = t
        if mask & MASK_READ:
            t = self._cas[flat_bank]
            if t is not None:
                alt = self._rank_read[rank]
                if alt > t:
                    t = alt
                if self._chan_read > t:
                    t = self._chan_read
                if earliest is None or t < earliest:
                    earliest = t
        if mask & MASK_WRITE:
            t = self._cas[flat_bank]
            if t is not None:
                if self._chan_write > t:
                    t = self._chan_write
                if earliest is None or t < earliest:
                    earliest = t
        return earliest

    # -- batched horizon -----------------------------------------------------

    def horizon(
        self, flat_banks: Sequence[int], masks: Sequence[int]
    ) -> Optional[int]:
        """Min earliest-issue across ``(flat_banks[j], masks[j])`` pairs.

        The one-shot "when could *any* of these banks next issue one of
        the commands it needs" reduction that feeds the event engine's
        wake computation.  Answers are exact, not conservative — both
        backends compute the identical integer.
        """
        if not flat_banks:
            return None
        counters = self.counters
        if counters is not None:
            counters.batch_queries += 1
        if self.backend == "numpy":
            return self._horizon_numpy(flat_banks, masks)
        earliest: Optional[int] = None
        by_mask = self.earliest_by_mask
        for flat, mask in zip(flat_banks, masks):
            t = by_mask(flat, mask)
            if t is not None and (earliest is None or t < earliest):
                earliest = t
        return earliest

    def _combined_arrays(self):
        """Per-kind fully-combined int64 arrays (lazily rebuilt)."""
        if self._np_version == self.version:
            return self._np_combined
        if self.counters is not None:
            self.counters.rebuilds += 1
        np = _numpy()
        act = np.array(
            [FORBID if v is None else v for v in self._act], dtype=np.int64
        )
        pre = np.array(
            [FORBID if v is None else v for v in self._pre], dtype=np.int64
        )
        cas = np.array(
            [FORBID if v is None else v for v in self._cas], dtype=np.int64
        )
        rank_act = np.repeat(
            np.array(self._rank_act, dtype=np.int64), self.num_banks
        )
        rank_read = np.repeat(
            np.array(self._rank_read, dtype=np.int64), self.num_banks
        )
        self._np_combined = (
            np.maximum(np.maximum(act, rank_act), self._cmd),
            np.maximum(pre, self._cmd),
            np.maximum(np.maximum(cas, rank_read), self._chan_read),
            np.maximum(cas, self._chan_write),
        )
        self._np_version = self.version
        return self._np_combined

    def _horizon_numpy(
        self, flat_banks: Sequence[int], masks: Sequence[int]
    ) -> Optional[int]:
        np = _numpy()
        act_c, pre_c, read_c, write_c = self._combined_arrays()
        idx = np.asarray(flat_banks, dtype=np.intp)
        m = np.asarray(masks, dtype=np.int64)
        sel = np.where(m & MASK_ACT, act_c[idx], FORBID)
        sel = np.minimum(sel, np.where(m & MASK_PRE, pre_c[idx], FORBID))
        sel = np.minimum(sel, np.where(m & MASK_READ, read_c[idx], FORBID))
        sel = np.minimum(sel, np.where(m & MASK_WRITE, write_c[idx], FORBID))
        best = int(sel.min())
        return None if best >= FORBID else best
