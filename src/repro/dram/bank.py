"""Per-bank SDRAM state machine and bank-local timing constraints.

Each bank is a two-dimensional array of cells with a single row
buffer.  An *activate* opens a row into the row buffer, *read*/*write*
commands move data while the row is open, and a *precharge* closes the
row.  The bank tracks the last time each relevant command was issued
and answers "when is command X next legal?" — the bank scheduler uses
this to decide readiness, and the DRAM system uses it to validate
issue legality.
"""

from __future__ import annotations

from typing import Optional

from .commands import CommandType
from .timing import DDR2Timing

#: Sentinel for "never happened"; far enough in the past that no
#: constraint referencing it binds at time zero.
_LONG_AGO = -(10**9)


class IllegalCommandError(Exception):
    """Raised when a command is issued that the bank state forbids."""


class Bank:
    """One SDRAM bank: row-buffer state plus bank-local timing."""

    def __init__(self, index: int, timing: DDR2Timing):
        self.index = index
        self.timing = timing
        self.open_row: Optional[int] = None
        self.last_activate = _LONG_AGO
        self.last_precharge_issue = _LONG_AGO
        #: Time the in-flight precharge completes (bank usable for ACT).
        self.precharge_done = 0
        self.last_read = _LONG_AGO
        self.last_write = _LONG_AGO
        #: Cycle the most recent write burst finishes on the data bus.
        self.write_data_end = _LONG_AGO
        #: Cycle the most recent read burst finishes on the data bus.
        self.read_data_end = _LONG_AGO
        #: Statistics: cycles with a row open (bank utilization proxy).
        self.busy_until = 0
        #: Accumulated activate→precharge-done occupancy (utilization).
        self.busy_cycles = 0
        self.activate_count = 0
        self.precharge_count = 0

    # -- state queries ---------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def row_hit(self, row: int) -> bool:
        """True when ``row`` is already in the row buffer."""
        return self.open_row == row

    def state_service_time(self, row: int) -> int:
        """Bank service time a request to ``row`` needs right now.

        Implements the paper's Table 3: open-row hit, closed bank, or
        open-row conflict.
        """
        if self.open_row is None:
            return self.timing.service_closed
        if self.open_row == row:
            return self.timing.service_row_hit
        return self.timing.service_conflict

    # -- earliest legal issue times ---------------------------------------

    def earliest_activate(self) -> int:
        """Earliest cycle an activate is legal (bank must be closed)."""
        t = self.timing
        return max(
            self.precharge_done,
            self.last_activate + t.t_rc,
        )

    def earliest_precharge(self) -> int:
        """Earliest cycle a precharge is legal (row open)."""
        t = self.timing
        return max(
            self.last_activate + t.t_ras,
            self.last_read + t.t_rtp,
            self.write_data_end + t.t_wr,
        )

    def earliest_cas(self) -> int:
        """Earliest cycle a read/write is legal wrt this bank (row open)."""
        return self.last_activate + self.timing.t_rcd

    def earliest_issue(self, kind: CommandType) -> Optional[int]:
        """Earliest legal cycle for ``kind``, or None if state forbids it.

        Activates require a closed bank; precharges and CAS commands
        require an open row.
        """
        if kind is CommandType.ACTIVATE:
            if self.is_open:
                return None
            return self.earliest_activate()
        if kind is CommandType.PRECHARGE:
            if not self.is_open:
                return None
            return self.earliest_precharge()
        if kind.is_cas:
            if not self.is_open:
                return None
            return self.earliest_cas()
        raise ValueError(f"bank cannot time {kind}")

    # -- issue -------------------------------------------------------------

    def issue(self, kind: CommandType, row: int, now: int) -> None:
        """Apply command ``kind`` at cycle ``now``, updating bank state.

        Raises:
            IllegalCommandError: if the command violates bank state or a
                bank-local timing constraint.
        """
        earliest = self.earliest_issue(kind)
        if earliest is None:
            raise IllegalCommandError(
                f"bank {self.index}: {kind.value} illegal in state "
                f"open_row={self.open_row}"
            )
        if now < earliest:
            raise IllegalCommandError(
                f"bank {self.index}: {kind.value} at {now} violates timing "
                f"(earliest legal {earliest})"
            )
        t = self.timing
        if kind is CommandType.ACTIVATE:
            self.open_row = row
            self.last_activate = now
            self.busy_until = max(self.busy_until, now + t.t_ras)
            self.activate_count += 1
        elif kind is CommandType.PRECHARGE:
            self.open_row = None
            self.last_precharge_issue = now
            self.precharge_done = now + t.t_rp
            self.busy_until = max(self.busy_until, now + t.t_rp)
            self.busy_cycles += (now + t.t_rp) - self.last_activate
            self.precharge_count += 1
        elif kind is CommandType.READ:
            if self.open_row != row:
                raise IllegalCommandError(
                    f"bank {self.index}: read row {row} but open row is "
                    f"{self.open_row}"
                )
            self.last_read = now
            self.read_data_end = now + t.t_cl + t.burst
            self.busy_until = max(self.busy_until, self.read_data_end)
        elif kind is CommandType.WRITE:
            if self.open_row != row:
                raise IllegalCommandError(
                    f"bank {self.index}: write row {row} but open row is "
                    f"{self.open_row}"
                )
            self.last_write = now
            self.write_data_end = now + t.t_wl + t.burst
            self.busy_until = max(self.busy_until, self.write_data_end)
        else:  # pragma: no cover - guarded by earliest_issue
            raise ValueError(f"bank cannot issue {kind}")

    def busy_cycles_at(self, now: int) -> int:
        """Total activate→precharge occupancy, counting a still-open row."""
        if self.is_open:
            return self.busy_cycles + (now - self.last_activate)
        return self.busy_cycles

    def refresh(self, now: int) -> None:
        """Apply an all-bank refresh starting at ``now``.

        The bank must be closed; it becomes usable again t_rfc later.
        """
        if self.is_open:
            raise IllegalCommandError(
                f"bank {self.index}: refresh with row {self.open_row} open"
            )
        self.precharge_done = max(self.precharge_done, now + self.timing.t_rfc)
