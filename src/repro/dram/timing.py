"""DDR2 SDRAM timing parameters.

The default values reproduce Table 6 of the paper (Micron DDR2-800
MT47H128M8B7-25E constraints) converted to processor cycles.  The
paper's table mixes units: the refresh rows (tRFC = 510, tREFI =
280,000) are processor cycles of the 4 GHz core — 127.5 ns and ~70 µs
respectively — while the remaining rows are DDR2-800 *command-clock*
cycles (400 MHz), i.e. one tenth of the processor clock: tRCD "5" is
12.5 ns = 50 processor cycles.  This module works uniformly in
processor cycles, so the main rows are the paper's numbers times the
10:1 clock ratio.

The :meth:`DDR2Timing.scaled` constructor produces a *time-scaled*
memory system: every constraint multiplied by ``1 / share``.
Time-scaled systems are the paper's private virtual-time baseline — a
thread allocated a share ``phi`` of the memory system should run no
slower than it would on a private memory system ``scaled(1 / phi)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


#: Processor clock cycles per DDR2-800 command-clock cycle (4 GHz / 400 MHz).
DRAM_CLOCK_RATIO = 10


@dataclass(frozen=True)
class DDR2Timing:
    """DDR2 timing constraints, in processor cycles (paper Table 6).

    Attributes:
        t_rcd: Activate to read.
        t_cl: Read command to data-bus valid (CAS latency).
        t_wl: Write command to data-bus valid (write latency).
        t_ccd: CAS command to CAS command (reads or writes).
        t_wtr: End of write data to a subsequent read command.
        t_wr: End of write data to precharge (write recovery).
        t_rtp: Read command to precharge.
        t_rp: Precharge to activate.
        t_rrd: Activate to activate, different banks.
        t_ras: Activate to precharge, same bank.
        t_rc: Activate to activate, same bank.
        t_faw: Four-activate window — any five activates within one
            rank must span at least this many cycles (Micron DDR2-800
            x8 datasheet: 45 ns = 18 command clocks).  Not in the
            paper's Table 6; added so the rank model polices activate
            bursts across banks like a real device.
        burst: Data-bus cycles per cache-line transfer (BL/2).
        t_rfc: Refresh to activate (refresh cycle time).
        t_refi: Maximum refresh-to-refresh interval.
    """

    t_rcd: int = 5 * DRAM_CLOCK_RATIO
    t_cl: int = 5 * DRAM_CLOCK_RATIO
    t_wl: int = 4 * DRAM_CLOCK_RATIO
    t_ccd: int = 2 * DRAM_CLOCK_RATIO
    t_wtr: int = 3 * DRAM_CLOCK_RATIO
    t_wr: int = 6 * DRAM_CLOCK_RATIO
    t_rtp: int = 3 * DRAM_CLOCK_RATIO
    t_rp: int = 5 * DRAM_CLOCK_RATIO
    t_rrd: int = 3 * DRAM_CLOCK_RATIO
    t_ras: int = 18 * DRAM_CLOCK_RATIO
    t_rc: int = 22 * DRAM_CLOCK_RATIO
    t_faw: int = 18 * DRAM_CLOCK_RATIO
    burst: int = 4 * DRAM_CLOCK_RATIO
    t_rfc: int = 510
    t_refi: int = 280_000

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value <= 0:
                raise ValueError(
                    f"timing constraint {field.name} must be positive, got {value}"
                )
        if self.t_ras < self.t_rcd:
            raise ValueError("t_ras must cover at least t_rcd")
        if self.t_rc < self.t_ras:
            raise ValueError("t_rc must be at least t_ras")
        if self.t_rrd > self.t_ras:
            raise ValueError(
                "t_rrd must not exceed t_ras (activates to other banks "
                "cannot be rarer than a full bank cycle)"
            )
        if self.t_faw < self.t_rrd:
            raise ValueError(
                "t_faw must be at least t_rrd (a four-activate window "
                "cannot bind tighter than a single activate gap)"
            )
        if self.t_refi <= self.t_rfc:
            raise ValueError(
                "t_refi must exceed t_rfc (the refresh interval must "
                "leave time outside the refresh blackout)"
            )

    def scaled(self, factor: float) -> "DDR2Timing":
        """Return a copy with every constraint time-scaled by ``factor``.

        Used to build the paper's baseline systems: a private memory
        system running at ``1 / factor`` of the shared system's
        frequency.  Constraints are rounded to the nearest cycle but
        never below one cycle.

        ``t_refi`` deliberately does **not** scale.  Scaling models a
        device whose internal operations are uniformly stretched in
        time, but cell charge leaks at the same physical rate no matter
        how slowly the interface is clocked, so the retention deadline
        — the maximum wall-clock gap between refreshes, which processor
        cycles measure directly since the core clock is fixed — is
        invariant.  Each refresh *operation* still takes ``factor``
        times longer (``t_rfc`` scales), so a time-scaled baseline
        spends proportionally more of each retention interval
        refreshing, exactly as a uniformly slowed device would.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def scale(value: int) -> int:
            return max(1, round(value * factor))

        return DDR2Timing(
            t_rcd=scale(self.t_rcd),
            t_cl=scale(self.t_cl),
            t_wl=scale(self.t_wl),
            t_ccd=scale(self.t_ccd),
            t_wtr=scale(self.t_wtr),
            t_wr=scale(self.t_wr),
            t_rtp=scale(self.t_rtp),
            t_rp=scale(self.t_rp),
            t_rrd=scale(self.t_rrd),
            t_ras=scale(self.t_ras),
            t_rc=scale(self.t_rc),
            t_faw=scale(self.t_faw),
            burst=scale(self.burst),
            t_rfc=scale(self.t_rfc),
            t_refi=self.t_refi,
        )

    # -- derived service times (paper Table 3) -------------------------

    @property
    def service_row_hit(self) -> int:
        """Bank service time for an open-row hit."""
        return self.t_cl

    @property
    def service_closed(self) -> int:
        """Bank service time when the bank is closed (activate + CAS)."""
        return self.t_rcd + self.t_cl

    @property
    def service_conflict(self) -> int:
        """Bank service time on a bank conflict (precharge + activate + CAS)."""
        return self.t_rp + self.t_rcd + self.t_cl

    # -- derived VTMS update service times (paper Table 4) -------------

    @property
    def update_precharge(self) -> int:
        """Bank service charged to a precharge command (paper Table 4).

        ``t_rp`` plus the additional bank occupancy between activate and
        precharge not accounted for by the activate/read/write updates.
        """
        return self.t_rp + (self.t_ras - self.t_rcd - self.t_cl)

    @property
    def update_activate(self) -> int:
        return self.t_rcd

    @property
    def update_read(self) -> int:
        return self.t_cl

    @property
    def update_write(self) -> int:
        return self.t_wl
