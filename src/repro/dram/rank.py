"""Rank-level SDRAM timing constraints.

A rank is a set of banks that share internal power-delivery and I/O
circuitry, which imposes cross-bank constraints: ``t_rrd`` between
activates to *different* banks, ``t_faw`` over any four consecutive
activates (the rolling four-activate window a real device's charge
pumps impose), and ``t_wtr`` between the end of write data and the
next read command anywhere in the rank.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .bank import Bank, _LONG_AGO
from .commands import CommandType
from .timing import DDR2Timing


class Rank:
    """A rank: its banks plus rank-wide activate/write-to-read tracking."""

    def __init__(self, index: int, timing: DDR2Timing, num_banks: int):
        if num_banks <= 0:
            raise ValueError(f"rank needs at least one bank, got {num_banks}")
        self.index = index
        self.timing = timing
        self.banks: List[Bank] = [Bank(b, timing) for b in range(num_banks)]
        self.last_activate = _LONG_AGO
        #: Issue cycles of the last four activates anywhere in the rank,
        #: oldest first — a fifth activate must land at least ``t_faw``
        #: after the oldest recorded one.
        self.activate_times: Deque[int] = deque(maxlen=4)
        #: End of the most recent write burst anywhere in the rank.
        self.write_data_end = _LONG_AGO

    def __len__(self) -> int:
        return len(self.banks)

    def earliest_issue(self, kind: CommandType, bank: int) -> int:
        """Rank-level earliest legal cycle for ``kind`` on ``bank``.

        Returns only the *rank* component; callers combine it with the
        bank-level and channel-level components.
        """
        if kind is CommandType.ACTIVATE:
            earliest = self.last_activate + self.timing.t_rrd
            if len(self.activate_times) == 4:
                earliest = max(
                    earliest, self.activate_times[0] + self.timing.t_faw
                )
            return earliest
        if kind is CommandType.READ:
            return self.write_data_end + self.timing.t_wtr
        return 0

    def issue(self, kind: CommandType, bank: int, row: int, now: int) -> None:
        """Issue ``kind`` to ``bank`` at ``now``, updating rank state."""
        self.banks[bank].issue(kind, row, now)
        if kind is CommandType.ACTIVATE:
            self.last_activate = now
            self.activate_times.append(now)
        elif kind is CommandType.WRITE:
            self.write_data_end = now + self.timing.t_wl + self.timing.burst

    def all_closed(self) -> bool:
        """True when no bank has an open row (refresh precondition)."""
        return all(not bank.is_open for bank in self.banks)

    def refresh(self, now: int) -> None:
        """Apply an all-bank refresh to every bank in the rank."""
        for bank in self.banks:
            bank.refresh(now)
