"""Channel-level SDRAM constraints: address bus, data bus, CAS spacing.

The channel scheduler must guarantee that at most one command uses the
address bus per cycle, that data bursts never overlap on the shared
data bus, and that consecutive CAS commands respect ``t_ccd``.
"""

from __future__ import annotations

from .bank import _LONG_AGO
from .commands import CommandType
from .timing import DDR2Timing


class Channel:
    """Shared command/data bus state for one memory channel."""

    def __init__(self, timing: DDR2Timing):
        self.timing = timing
        self.last_command = _LONG_AGO
        self.last_cas = _LONG_AGO
        #: First cycle the data bus is free after all reserved bursts.
        self.data_bus_free = 0
        #: Total data-bus busy cycles (for utilization statistics).
        self.data_busy_cycles = 0
        #: Total CAS commands carried (reads + writes).
        self.cas_count = 0
        self.read_count = 0
        self.write_count = 0

    def _data_offset(self, kind: CommandType) -> int:
        """Cycles between CAS issue and first data-bus beat."""
        if kind is CommandType.READ:
            return self.timing.t_cl
        return self.timing.t_wl

    def earliest_issue(self, kind: CommandType) -> int:
        """Channel-level earliest legal cycle for ``kind``."""
        earliest = self.last_command + 1
        if kind.is_cas:
            earliest = max(
                earliest,
                self.last_cas + self.timing.t_ccd,
                self.data_bus_free - self._data_offset(kind),
            )
        return earliest

    def issue(self, kind: CommandType, now: int) -> None:
        """Record ``kind`` issuing at ``now`` on this channel."""
        if now < self.earliest_issue(kind):
            raise ValueError(
                f"channel: {kind.value} at {now} violates channel timing "
                f"(earliest legal {self.earliest_issue(kind)})"
            )
        self.last_command = now
        if kind.is_cas:
            self.last_cas = now
            start = now + self._data_offset(kind)
            self.data_bus_free = start + self.timing.burst
            self.data_busy_cycles += self.timing.burst
            self.cas_count += 1
            if kind is CommandType.READ:
                self.read_count += 1
            else:
                self.write_count += 1

    def utilization(self, cycles: int) -> float:
        """Data-bus utilization over ``cycles`` relative to peak bandwidth."""
        if cycles <= 0:
            return 0.0
        return self.data_busy_cycles / cycles
