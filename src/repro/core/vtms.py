"""Virtual Time Memory System (VTMS) — paper Section 3.1–3.2.

Each hardware thread *i* with service share φᵢ is modeled as owning a
private memory system whose timing is scaled by 1/φᵢ.  The VTMS state
per thread is a small register file:

* one last-virtual-finish-time register per bank, ``B_j.R_i``
* one last-virtual-finish-time register for the channel, ``C.R_i``
* the share register φᵢ
* ``Ra_i``: the earliest (virtual) arrival time among the thread's
  pending requests

Virtual finish-times are computed *just before* requests are
considered for scheduling (the paper's second, more accurate option),
using the bank-state-dependent service times of Table 3; the registers
are updated as each SDRAM command actually issues, using the
per-command service times of Table 4 (Equations 8 and 9).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dram.commands import CommandType
from ..dram.timing import DDR2Timing


class ThreadVtms:
    """VTMS register file for one hardware thread."""

    def __init__(self, thread_id: int, share: float, num_banks: int, timing: DDR2Timing):
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.thread_id = thread_id
        self.share = share
        self.timing = timing
        #: B_j.R_i — last bank-service virtual finish-time per bank.
        self.bank_finish: List[float] = [0.0] * num_banks
        #: C.R_i — last channel-service virtual finish-time.
        self.channel_finish: float = 0.0
        #: Ra_i — earliest arrival among the thread's pending requests.
        self.oldest_arrival: float = 0.0
        #: Bumped whenever any register changes; used to cache computed
        #: finish-time estimates.
        self.epoch: int = 0
        #: Owning :class:`VtmsState`, when part of one; lets register
        #: changes also bump the state-wide ``global_epoch`` so bank
        #: schedulers can skip whole finish-time scans in O(1).
        self.owner: Optional["VtmsState"] = None
        # Precomputed scaled service times (the paper notes these are
        # constants once the share register is written).
        inv = 1.0 / share
        self._scaled_row_hit = timing.service_row_hit * inv
        self._scaled_closed = timing.service_closed * inv
        self._scaled_conflict = timing.service_conflict * inv
        self._scaled_channel = timing.burst * inv
        self._scaled_update = {
            CommandType.PRECHARGE: timing.update_precharge * inv,
            CommandType.ACTIVATE: timing.update_activate * inv,
            CommandType.READ: timing.update_read * inv,
            CommandType.WRITE: timing.update_write * inv,
        }

    def scaled_bank_service(self, bank_service: int) -> float:
        """``B.L / φ`` for an arbitrary bank service time."""
        return bank_service / self.share

    def bump_epoch(self) -> None:
        """Record a register change (thread-local and state-wide)."""
        self.epoch += 1
        owner = self.owner
        if owner is not None:
            owner.global_epoch += 1

    def start_time_estimate(self, bank: int) -> float:
        """Equation 3: the request's bank-service virtual start-time.

        ``B.S = max(Ra, B_j.R)`` — the alternative prioritization basis
        the paper's §2.3 background mentions (earliest virtual
        start-time first, cf. Zhang's VirtualClock).
        """
        return max(self.oldest_arrival, self.bank_finish[bank])

    def finish_time_estimate(self, bank: int, bank_service: int) -> float:
        """Equation 7: the request's channel-service virtual finish-time.

        ``C.F = max(max(Ra, B_j.R) + B.L/φ, C.R) + C.L/φ``

        Args:
            bank: Target bank index.
            bank_service: The request's bank service time *given the
                current bank state* (Table 3).
        """
        bank_start = max(self.oldest_arrival, self.bank_finish[bank])
        bank_finish = bank_start + bank_service / self.share
        channel_start = max(bank_finish, self.channel_finish)
        return channel_start + self._scaled_channel

    def on_request_arrival(self, bank: int, arrival: float, assumed_service: int) -> float:
        """Paper §3.2 solution 1: arrival-time accounting.

        Assume a fixed average bank service for every request, compute
        its virtual finish-time immediately (Equations 3–6), and commit
        the register updates at arrival instead of per command.  The
        returned finish-time is final; no per-command updates follow.

        The paper evaluates the deferred alternative because this one
        "is likely to penalize threads that have lower average bank
        service requirements, e.g., threads with a large number of open
        row buffer hits" — the FQ-VFTF-ARR policy exists to make that
        comparison runnable.
        """
        bank_start = max(arrival, self.bank_finish[bank])
        self.bank_finish[bank] = bank_start + assumed_service / self.share
        channel_start = max(self.bank_finish[bank], self.channel_finish)
        self.channel_finish = channel_start + self._scaled_channel
        self.bump_epoch()
        return self.channel_finish

    def on_command_issued(self, kind: CommandType, bank: int, arrival: float) -> None:
        """Equations 8 and 9: update registers as a command issues.

        The bank register always updates; the channel register updates
        only for CAS commands, *after* the bank register.

        Args:
            kind: The issued SDRAM command.
            bank: Target bank.
            arrival: ``a_i^k`` — arrival time of the request the
                command serves (virtual clock units).
        """
        scaled = self._scaled_update[kind]
        self.bank_finish[bank] = max(arrival, self.bank_finish[bank]) + scaled
        if kind.is_cas:
            self.channel_finish = (
                max(self.bank_finish[bank], self.channel_finish)
                + self._scaled_channel
            )
        self.bump_epoch()


class VtmsState:
    """VTMS register files for every hardware thread, plus shared clock.

    The FQ scheduler uses a *real* clock (paper §3.1) that pauses
    during refresh periods; :meth:`tick` advances it.
    """

    def __init__(
        self,
        shares: Sequence[float],
        num_banks: int,
        timing: DDR2Timing,
    ):
        total = sum(shares)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"sum of service shares must not exceed 1, got {total}"
            )
        self.timing = timing
        self.threads: List[ThreadVtms] = [
            ThreadVtms(i, share, num_banks, timing) for i, share in enumerate(shares)
        ]
        #: Monotonic count of register changes across all threads; a
        #: cheap version number for "did anything move since my last
        #: look" checks in the bank schedulers.
        self.global_epoch: int = 0
        for thread in self.threads:
            thread.owner = self
        #: The FQ real clock (cycles, excluding refresh periods).
        self.clock: float = 0.0

    def __getitem__(self, thread_id: int) -> ThreadVtms:
        return self.threads[thread_id]

    def __len__(self) -> int:
        return len(self.threads)

    def tick(self, in_refresh: bool = False) -> None:
        """Advance the real clock one cycle (frozen during refresh)."""
        if not in_refresh:
            self.clock += 1.0

    def set_oldest_arrival(self, thread_id: int, arrival: Optional[float]) -> None:
        """Maintain ``Ra_i`` from the thread's pending-request set.

        With no pending requests the register is parked at the current
        clock so an idle thread's next request starts fresh rather than
        inheriting stale credit or debt.
        """
        thread = self.threads[thread_id]
        value = self.clock if arrival is None else arrival
        # Exact change-detection guard, not a priority comparison: both
        # sides are the same register's old/new value, and skipping the
        # epoch bump on a bitwise-equal write is always safe.
        if value != thread.oldest_arrival:  # det: allow(register change guard)
            thread.oldest_arrival = value
            thread.bump_epoch()
