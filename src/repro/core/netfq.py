"""Network fair queuing — the paper's Section 2.3 background, executable.

The FQ memory scheduler derives from packet fair-queuing theory.  This
module implements that substrate directly:

* :class:`GpsServer` — the idealized *generalized processor sharing*
  fluid server: during any interval, every backlogged flow is served
  simultaneously in proportion to its share.
* :class:`PacketFairQueue` — a packetized approximation using the
  virtual start/finish times of Equations 1 and 2::

      S_i^k = max(a_i^k, F_i^{k-1})
      F_i^k = S_i^k + L_i^k / φ_i

  with either earliest-virtual-finish-time-first (WFQ-style) or
  earliest-virtual-start-time-first service order.

It exists both as a reference for understanding the memory scheduler's
accounting and as a property-testing target: the classic fair-queuing
bounds (per-flow service within one maximum packet of GPS, throughput
proportional to shares) are asserted in the test suite.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Packet:
    """One unit of work for a flow.

    Attributes:
        flow: Flow index.
        length: Service requirement in units of link capacity·time.
        arrival: Arrival time at the server.
    """

    flow: int
    length: float
    arrival: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"packet length must be positive, got {self.length}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")


class Discipline(enum.Enum):
    """Packet service orders from the fair-queuing literature.

    The paper's §2.3 discusses prioritizing by virtual finish time
    (WFQ-style, the memory scheduler's choice) or by virtual start
    time (VirtualClock-style).  WF²Q+ (Bennett & Zhang, the paper's
    reference [1]) additionally restricts service to *eligible*
    packets — those whose GPS service has already begun — which bounds
    how far any flow can run ahead of its fluid share.
    """

    VIRTUAL_FINISH_TIME = "vftf"
    VIRTUAL_START_TIME = "vstf"
    WF2Q = "wf2q"


class GpsServer:
    """Idealized fluid GPS server (Parekh & Gallager).

    Serves all backlogged flows simultaneously in proportion to their
    shares; used as the fairness reference for the packetized queue.
    """

    def __init__(self, shares: Sequence[float]):
        if not shares or any(s <= 0 for s in shares):
            raise ValueError("shares must be positive and non-empty")
        self.shares = list(shares)

    def finish_times(self, packets: Sequence[Packet]) -> List[float]:
        """Fluid completion time of each packet (in input order).

        Simulates the fluid system event by event: between events, each
        backlogged flow drains at rate share/(sum of backlogged shares).
        """
        remaining: List[float] = [0.0] * len(self.shares)
        order = sorted(range(len(packets)), key=lambda i: packets[i].arrival)
        finish = [0.0] * len(packets)
        pending = [(packets[i].arrival, i) for i in order]
        now = 0.0
        idx = 0
        # Map (flow → FIFO of packet indices) with fluid service.
        fifo: Dict[int, Deque[int]] = {f: deque() for f in range(len(self.shares))}

        def backlogged() -> List[int]:
            return [f for f in range(len(self.shares)) if fifo[f]]

        while idx < len(pending) or backlogged():
            active = backlogged()
            next_arrival = pending[idx][0] if idx < len(pending) else None
            if not active:
                now = next_arrival
            else:
                total_share = sum(self.shares[f] for f in active)
                # Time until the head packet of some flow drains.
                drain = min(
                    remaining[f] * total_share / self.shares[f] for f in active
                )
                if next_arrival is not None and next_arrival < now + drain:
                    elapsed = next_arrival - now
                    for f in active:
                        remaining[f] -= elapsed * self.shares[f] / total_share
                    now = next_arrival
                else:
                    for f in active:
                        remaining[f] -= drain * self.shares[f] / total_share
                    now += drain
                    for f in active:
                        if fifo[f] and remaining[f] <= 1e-12:
                            done = fifo[f].popleft()
                            finish[done] = now
                            remaining[f] = (
                                packets[fifo[f][0]].length if fifo[f] else 0.0
                            )
                    continue
            while idx < len(pending) and pending[idx][0] <= now + 1e-12:
                _, i = pending[idx]
                flow = packets[i].flow
                fifo[flow].append(i)
                if len(fifo[flow]) == 1:
                    remaining[flow] = packets[i].length
                idx += 1
        return finish


class PacketFairQueue:
    """Packetized fair queue over a unit-capacity link (Equations 1–2)."""

    def __init__(
        self,
        shares: Sequence[float],
        discipline: Discipline = Discipline.VIRTUAL_FINISH_TIME,
    ):
        if not shares or any(s <= 0 for s in shares):
            raise ValueError("shares must be positive and non-empty")
        if sum(shares) > 1.0 + 1e-9:
            raise ValueError("shares must sum to at most one")
        self.shares = list(shares)
        self.discipline = discipline
        #: F_i^{k-1} per flow.
        self._last_finish = [0.0] * len(shares)
        self._seq = itertools.count()

    def schedule(self, packets: Sequence[Packet]) -> List[Tuple[Packet, float, float]]:
        """Serve ``packets``; returns (packet, start_service, end_service).

        Uses a real clock (like the memory scheduler): virtual times
        equal arrival times stamped on the wall clock, so flows that
        consumed excess service in the past are penalized.
        """
        for packet in packets:
            if not 0 <= packet.flow < len(self.shares):
                raise ValueError(f"unknown flow {packet.flow}")
        # Tag each packet with its virtual start/finish time on arrival.
        tagged: List[Tuple[float, float, int, Packet]] = []
        for packet in sorted(packets, key=lambda p: (p.arrival, next(self._seq))):
            share = self.shares[packet.flow]
            start = max(packet.arrival, self._last_finish[packet.flow])
            finish = start + packet.length / share
            self._last_finish[packet.flow] = finish
            tagged.append((start, finish, next(self._seq), packet))

        if self.discipline is Discipline.VIRTUAL_START_TIME:
            def key(entry):
                return (entry[0], entry[2])
        else:  # VFTF and WF2Q both order by virtual finish time.
            def key(entry):
                return (entry[1], entry[2])

        # Non-preemptive service: repeatedly pick, among arrived
        # packets, the one with the smallest key.  Under WF²Q+ only
        # *eligible* packets (virtual start <= system virtual time) may
        # be chosen; the virtual time advances with delivered work and
        # jumps to the earliest start tag when nothing is eligible.
        now = 0.0
        virtual_time = 0.0
        waiting = list(tagged)
        served: List[Tuple[Packet, float, float]] = []
        while waiting:
            arrived = [e for e in waiting if e[3].arrival <= now + 1e-12]
            if not arrived:
                now = min(e[3].arrival for e in waiting)
                continue
            if self.discipline is Discipline.WF2Q:
                virtual_time = max(virtual_time, min(e[0] for e in arrived))
                candidates = [e for e in arrived if e[0] <= virtual_time + 1e-12]
            else:
                candidates = arrived
            chosen = min(candidates, key=key)
            waiting.remove(chosen)
            start_service = max(now, chosen[3].arrival)
            end_service = start_service + chosen[3].length
            served.append((chosen[3], start_service, end_service))
            now = end_service
            virtual_time += chosen[3].length
        return served

    def reset(self) -> None:
        """Forget all per-flow history."""
        self._last_finish = [0.0] * len(self.shares)


def flow_service(
    served: Sequence[Tuple[Packet, float, float]], horizon: float
) -> Dict[int, float]:
    """Total service each flow received up to ``horizon``."""
    totals: Dict[int, float] = {}
    for packet, start, end in served:
        got = max(0.0, min(end, horizon) - min(start, horizon))
        totals[packet.flow] = totals.get(packet.flow, 0.0) + got
    return totals
