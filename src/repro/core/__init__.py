"""The paper's contribution: VTMS accounting and FQ scheduling policies."""

from .policies import (
    FQ_VFTF,
    FQ_VFTF_ARR,
    FQ_VSTF,
    FR_FCFS,
    FR_VFTF,
    POLICIES,
    Policy,
    fq_vftf_with_bound,
    get_policy,
)
from .shares import equal_shares, validate_shares, weighted_shares
from .vtms import ThreadVtms, VtmsState

__all__ = [
    "FQ_VFTF",
    "FQ_VFTF_ARR",
    "FQ_VSTF",
    "FR_FCFS",
    "FR_VFTF",
    "POLICIES",
    "Policy",
    "ThreadVtms",
    "VtmsState",
    "equal_shares",
    "fq_vftf_with_bound",
    "get_policy",
    "validate_shares",
    "weighted_shares",
]
