"""Scheduling priority policies: FR-FCFS, FR-VFTF, FQ-VFTF.

All three share the first two priority levels from Rixner et al.:
(1) ready commands before not-ready commands, (2) CAS commands before
RAS commands.  They differ in the third level — the per-request
ordering key — and in whether the bounded-priority-inversion FQ bank
rule (paper §3.3) is active:

* **FR-FCFS** orders by earliest arrival time.
* **FR-VFTF** orders by earliest virtual finish-time (VTMS), but keeps
  pure first-ready bank scheduling, so it remains vulnerable to bank
  priority chaining.
* **FQ-VFTF** orders by earliest virtual finish-time *and* bounds bank
  priority-inversion: once a bank has been active for ``x`` cycles
  (default x = t_RAS) the bank scheduler commits to the earliest-VFT
  request and waits for its first command to become ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..controller.request import MemoryRequest
from ..policy.base import SchedulingPolicy
from ..policy.packing import (
    FLOAT_BITS,
    SEQ_BITS,
    TIME_BITS,
    KeyField,
    float_sort_bits,
)

#: Shift placing a float VTMS field above ``(arrival_time, seq)``.
_TAIL_BITS = TIME_BITS + SEQ_BITS


@dataclass(frozen=True)
class Policy(SchedulingPolicy):
    """A paper-policy instance of the :class:`SchedulingPolicy` protocol.

    The five paper policies (and the bounded ablation variant) are all
    stateless value objects of this one dataclass: keys are pure
    functions of request fields and VTMS stamps (``memoize_keys``
    stays True), no hooks are needed, and the flags below select the
    behaviour.

    Attributes:
        name: Short identifier used in reports ("FR-FCFS", ...).
        uses_vtms: Whether request keys come from VTMS finish-times.
        fq_bank_rule: Whether the bounded-inversion bank rule is on.
        inversion_bound: The bound ``x`` in cycles; ``None`` selects the
            paper's choice of t_RAS at scheduler construction time.
    """

    name: str
    uses_vtms: bool = False
    fq_bank_rule: bool = False
    inversion_bound: Optional[int] = None
    #: Paper §3.2 solution 1: compute finish-times at arrival assuming
    #: an average bank service, instead of deferring to schedule time.
    arrival_accounting: bool = False
    #: Paper §2.3: prioritize earliest virtual *start*-time instead of
    #: earliest virtual finish-time (VirtualClock-style).
    start_time_priority: bool = False

    def key_field_names(self) -> Tuple[str, ...]:
        if self.uses_vtms:
            if self.start_time_priority:
                return ("virtual_start_time", "arrival_time", "seq")
            return ("virtual_finish_time", "arrival_time", "seq")
        return ("arrival_time", "seq")

    def request_key(self, request: MemoryRequest) -> Tuple:
        """Ordering key — lower compares as higher priority."""
        if self.uses_vtms:
            if self.start_time_priority:
                return (
                    request.virtual_start_time,
                    request.arrival_time,
                    request.seq,
                )
            return (request.virtual_finish_time, request.arrival_time, request.seq)
        return (request.arrival_time, request.seq)

    def key_field_specs(self) -> Tuple[KeyField, ...]:
        tail = (
            KeyField("arrival_time", TIME_BITS),
            KeyField("seq", SEQ_BITS),
        )
        if self.uses_vtms:
            head = (
                "virtual_start_time"
                if self.start_time_priority
                else "virtual_finish_time"
            )
            return (KeyField(head, FLOAT_BITS, "float"),) + tail
        return tail

    def packed_key(self, request: MemoryRequest) -> int:
        tail = (request.arrival_time << SEQ_BITS) | request.seq
        if self.uses_vtms:
            vtime = (
                request.virtual_start_time
                if self.start_time_priority
                else request.virtual_finish_time
            )
            return (float_sort_bits(vtime) << _TAIL_BITS) | tail
        return tail


FR_FCFS = Policy(name="FR-FCFS")
FR_VFTF = Policy(name="FR-VFTF", uses_vtms=True)
FQ_VFTF = Policy(name="FQ-VFTF", uses_vtms=True, fq_bank_rule=True)
#: The paper's §3.2 "first solution": finish-times fixed at arrival
#: from an assumed average bank service.  Evaluated as an ablation.
FQ_VFTF_ARR = Policy(
    name="FQ-VFTF-ARR",
    uses_vtms=True,
    fq_bank_rule=True,
    arrival_accounting=True,
)
#: §2.3's alternative discipline: earliest virtual start-time first.
FQ_VSTF = Policy(
    name="FQ-VSTF",
    uses_vtms=True,
    fq_bank_rule=True,
    start_time_priority=True,
)

#: The paper's own policies, by name.  The full runtime registry —
#: which also holds BLISS, MISE, and anything user-registered — lives
#: in :mod:`repro.policy.registry`; this dict stays paper-only.
POLICIES = {p.name: p for p in (FR_FCFS, FR_VFTF, FQ_VFTF, FQ_VFTF_ARR, FQ_VSTF)}


def get_policy(name: str) -> Policy:
    """Look up a *paper* policy by name (case-insensitive).

    For the full registry (paper + post-paper + user-registered
    policies) use :func:`repro.policy.resolve` instead.
    """
    key = name.upper().replace("_", "-")
    if key not in POLICIES:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return POLICIES[key]


def fq_vftf_with_bound(inversion_bound: int) -> Policy:
    """FQ-VFTF with an explicit priority-inversion bound (ablation A)."""
    if inversion_bound < 0:
        raise ValueError(f"inversion bound must be >= 0, got {inversion_bound}")
    return Policy(
        name=f"FQ-VFTF(x={inversion_bound})",
        uses_vtms=True,
        fq_bank_rule=True,
        inversion_bound=inversion_bound,
    )
