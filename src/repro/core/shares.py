"""Service-share allocation helpers.

The FQ scheduler's control registers give each hardware thread a
fraction φᵢ of the memory system.  The paper's evaluation statically
allocates equal shares (φ = 1/N), but the registers could equally be
written by an OS or VMM; these helpers model both styles.
"""

from __future__ import annotations

from typing import List, Sequence


def equal_shares(num_threads: int) -> List[float]:
    """φᵢ = 1/N for every thread — the paper's desktop configuration."""
    if num_threads <= 0:
        raise ValueError(f"need at least one thread, got {num_threads}")
    return [1.0 / num_threads] * num_threads


def validate_shares(shares: Sequence[float]) -> List[float]:
    """Check that shares are positive and sum to at most one.

    An EDF schedule meets all VTMS deadlines only when the shares of
    each resource sum to at most one (paper §3, citing Chetto &
    Chetto), so over-subscription is rejected.
    """
    if not shares:
        raise ValueError("shares must be non-empty")
    for i, share in enumerate(shares):
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share for thread {i} must be in (0, 1], got {share}")
    if sum(shares) > 1.0 + 1e-9:
        raise ValueError(f"shares sum to {sum(shares):.4f} > 1; memory over-subscribed")
    return list(shares)


def weighted_shares(weights: Sequence[float]) -> List[float]:
    """Normalize arbitrary positive weights into shares summing to one.

    This is how an OS scheduler would translate priorities into memory
    shares, e.g. ``weighted_shares([3, 1])`` → ``[0.75, 0.25]``.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    for i, weight in enumerate(weights):
        if weight <= 0:
            raise ValueError(f"weight for thread {i} must be positive, got {weight}")
    total = float(sum(weights))
    return [w / total for w in weights]
