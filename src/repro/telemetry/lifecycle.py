"""Request-lifecycle tracing: per-thread ring buffers of milestones.

Every memory request passes through a fixed sequence of stations —
core submit, interface-queue accept, VTMS stamp, RAS/CAS issue, data
return, core retire-unblock — and the tracer records the cycle each
station was reached, plus the per-event attributes the fair-queuing
analysis needs (bank, row, row-buffer outcome, priority key, the
priority-inversion flag).

Records are plain value objects: the tracer copies fields out of the
live :class:`~repro.controller.request.MemoryRequest` instead of
holding references, so tracing never extends simulator object
lifetimes.  Completed lifecycles land in bounded per-thread ring
buffers (``deque(maxlen=...)``); overflow evicts the oldest record and
is counted per thread so exports can report truncation honestly.

Timestamps are simulated cycles throughout — never host time (enforced
by the DET006 determinism-lint rule).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: Default per-thread ring capacity (completed lifecycles retained).
DEFAULT_RING_CAPACITY = 4096


@dataclass
class RequestLifecycle:
    """Milestone timestamps and attributes of one memory request.

    All ``*_cycle`` fields are simulated cycles (``None`` until the
    station is reached); virtual times are FQ virtual-clock units.
    """

    seq: int
    thread: int
    kind: str  #: "read", "write", or "prefetch"
    address: int
    line: Optional[int] = None
    submit_cycle: Optional[int] = None
    accept_cycle: Optional[int] = None
    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    #: Cycle of the first SDRAM command serving this request, and its
    #: name ("ACTIVATE" / "PRECHARGE" / "READ" / "WRITE").
    first_command_cycle: Optional[int] = None
    first_command: Optional[str] = None
    #: Row-buffer outcome, decided by the first command: "hit" (CAS
    #: straight away), "closed" (activate first), "conflict"
    #: (precharge first).
    row_outcome: Optional[str] = None
    cas_cycle: Optional[int] = None
    #: VTMS stamp at CAS issue (paper Eq. 3 / Eq. 7 estimates).
    virtual_arrival: float = 0.0
    virtual_start: float = 0.0
    virtual_finish: float = 0.0
    #: Policy ordering key of the request when its CAS issued.
    priority_key: Tuple = ()
    #: True when any command served this request while a strictly
    #: higher-priority request was pending in the same bank queue
    #: (priority inversion, paper §3.3).
    inverted: bool = False
    complete_cycle: Optional[int] = None
    fill_cycle: Optional[int] = None

    @property
    def closed(self) -> bool:
        """True once the lifecycle reached its terminal station."""
        if self.kind == "write":
            return self.complete_cycle is not None
        return self.fill_cycle is not None

    def latency(self) -> Optional[int]:
        """Submit-to-terminal latency in cycles, if closed."""
        end = self.complete_cycle if self.kind == "write" else self.fill_cycle
        if end is None or self.submit_cycle is None:
            return None
        return end - self.submit_cycle


class LifecycleTracer:
    """Open-lifecycle index plus per-thread completed-record rings."""

    def __init__(self, num_threads: int, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.num_threads = num_threads
        self.capacity = capacity
        #: Completed lifecycles, newest last, oldest evicted first.
        self.completed: List[Deque[RequestLifecycle]] = [
            deque(maxlen=capacity) for _ in range(num_threads)
        ]
        #: Evicted-record count per thread (ring overflow accounting).
        self.dropped: List[int] = [0] * num_threads
        #: Lifecycles between submit and terminal station, by seq.
        self._open: Dict[int, RequestLifecycle] = {}
        #: (thread, line) → seq for outstanding reads, so the core-side
        #: fill hook (which sees only the line) can find its record.
        self._read_lines: Dict[Tuple[int, int], int] = {}

    # -- hook entry points -------------------------------------------------

    def on_submit(self, request, line: int, now: int) -> None:
        """A core's submit was accepted by the system interconnect."""
        if request.is_write:
            kind = "write"
        elif request.prefetch:
            kind = "prefetch"
        else:
            kind = "read"
        record = RequestLifecycle(
            seq=request.seq,
            thread=request.thread_id,
            kind=kind,
            address=request.address,
            line=line,
            submit_cycle=now,
        )
        self._open[request.seq] = record
        if not request.is_write:
            self._read_lines[(request.thread_id, line)] = request.seq

    def on_accept(self, request, now: int) -> None:
        """The controller admitted the request into its buffers."""
        record = self._open.get(request.seq)
        if record is None:
            return
        record.accept_cycle = now
        record.channel = request.channel
        record.rank = request.rank
        record.bank = request.bank
        record.row = request.row
        record.virtual_arrival = request.virtual_arrival

    def on_command(
        self, request, kind_name: str, is_cas: bool, inverted: bool, now: int
    ) -> None:
        """An SDRAM command serving ``request`` issued."""
        record = self._open.get(request.seq)
        if record is None:
            return
        if record.first_command_cycle is None:
            record.first_command_cycle = now
            record.first_command = kind_name
            if is_cas:
                record.row_outcome = "hit"
            elif kind_name == "ACTIVATE":
                record.row_outcome = "closed"
            else:
                record.row_outcome = "conflict"
        if inverted:
            record.inverted = True
        if is_cas:
            record.cas_cycle = now
            record.virtual_start = request.virtual_start_time
            record.virtual_finish = request.virtual_finish_time

    def on_command_key(self, request, key: Tuple) -> None:
        """Record the priority key the CAS issued under."""
        record = self._open.get(request.seq)
        if record is not None:
            record.priority_key = key

    def on_complete(self, request, now: int) -> None:
        """The request's last data beat transferred on the bus."""
        record = self._open.get(request.seq)
        if record is None:
            return
        record.complete_cycle = now
        if record.kind == "write":
            self._close(record)

    def on_fill(self, thread: int, line: int, now: int) -> None:
        """A read's fill reached its core (retire-unblock)."""
        seq = self._read_lines.pop((thread, line), None)
        if seq is None:
            return
        record = self._open.get(seq)
        if record is None:
            return
        record.fill_cycle = now
        self._close(record)

    # -- bookkeeping -------------------------------------------------------

    def _close(self, record: RequestLifecycle) -> None:
        del self._open[record.seq]
        ring = self.completed[record.thread]
        if len(ring) == ring.maxlen:
            self.dropped[record.thread] += 1
        ring.append(record)

    @property
    def open_count(self) -> int:
        """Lifecycles still between submit and their terminal station."""
        return len(self._open)

    def summary(self) -> Dict[str, int]:
        """Retention counters (completed, retained, dropped, open)."""
        retained = sum(len(ring) for ring in self.completed)
        dropped = sum(self.dropped)
        return {
            "lifecycles_completed": retained + dropped,
            "lifecycles_retained": retained,
            "lifecycles_dropped": dropped,
            "lifecycles_open": len(self._open),
        }


#: A bounded per-bank ring of issued commands, for the Perfetto bank
#: tracks: (cycle, kind name, row, thread-or-None, duration).
BankEvent = Tuple[int, str, int, Optional[int], int]


class BankCommandLog:
    """Ring-buffered command history per (channel, rank, bank)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rings: Dict[Tuple[int, int, int], Deque[BankEvent]] = {}
        self.dropped = 0

    def record(
        self,
        channel: int,
        rank: int,
        bank: int,
        cycle: int,
        kind_name: str,
        row: int,
        thread: Optional[int],
        duration: int,
    ) -> None:
        ring = self._rings.get((channel, rank, bank))
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[(channel, rank, bank)] = ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append((cycle, kind_name, row, thread, duration))

    def banks(self) -> List[Tuple[int, int, int]]:
        """Recorded (channel, rank, bank) coordinates, sorted."""
        return sorted(self._rings)

    def events(self, channel: int, rank: int, bank: int) -> List[BankEvent]:
        return list(self._rings.get((channel, rank, bank), ()))
