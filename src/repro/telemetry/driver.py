"""Traced-run driver: build, run, and package one observed simulation.

``repro-fqms trace`` and ``repro-fqms report`` go through
:func:`run_traced`, which is the telemetry counterpart of
:func:`repro.sim.runner.run_workload`: same configuration surface, but
the system is built with tracing attached and the caller gets the
telemetry object (and the per-thread fair-share bandwidth targets,
derived the same way Figure 9 derives them: solo runs waterfilled
through :func:`repro.stats.fair_share_targets`) back alongside the
:class:`~repro.sim.system.SimResult`.

Traced runs are deliberately uncached: results are bit-identical to
untraced runs, so anything cacheable is already served by the normal
runner; what this driver adds is the run's *dynamics*, which exist
only while the system object does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.shares import equal_shares
from ..sim.config import SystemConfig
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_solo
from ..sim.system import CmpSystem, SimResult
from ..stats.metrics import fair_share_targets
from ..workloads.spec2000 import profile as lookup_profile
from . import RunTelemetry


@dataclass
class TracedRun:
    """Everything a traced simulation produced."""

    result: SimResult
    telemetry: RunTelemetry
    #: Per-thread fair-share data-bus targets (waterfilled solo
    #: demands), or None when solo baselines were unavailable.
    fair_shares: Optional[List[float]]
    thread_names: List[str]


def resolve_profiles(names: Sequence[str]):
    """Benchmark profiles for ``names`` (raises KeyError on unknown)."""
    return [lookup_profile(name) for name in names]


def run_traced(
    profiles: Sequence,
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    shares: Optional[List[float]] = None,
    seed: int = 0,
    inversion_bound: Optional[int] = None,
    engine: Optional[str] = None,
    sample_period: Optional[int] = None,
    with_targets: bool = True,
) -> TracedRun:
    """Run ``profiles`` under ``policy`` with telemetry attached.

    ``sample_period`` overrides the interval-sampler period (cycles);
    ``with_targets=False`` skips the solo baseline runs (e.g. for
    unregistered synthetic profiles or pure export use).
    """
    kwargs = {} if engine is None else {"engine": engine}
    config = SystemConfig(
        num_cores=len(profiles),
        policy=policy,
        shares=shares,
        seed=seed,
        inversion_bound=inversion_bound,
        **kwargs,
    )
    system = CmpSystem(config, profiles, trace=True)
    telemetry = system.telemetry
    assert telemetry is not None
    if sample_period is not None:
        # Replace the sampler before any cycle runs; the period is a
        # pure observation knob, so this cannot perturb the run.
        telemetry.sampler = type(telemetry.sampler)(telemetry, sample_period)
    if warmup is None:
        warmup = default_warmup(cycles)
    result = system.run(cycles, warmup=warmup)
    targets: Optional[List[float]] = None
    if with_targets:
        targets = compute_fair_shares(
            profiles, shares, cycles=cycles, warmup=warmup, seed=seed
        )
    return TracedRun(
        result=result,
        telemetry=telemetry,
        fair_shares=targets,
        thread_names=[p.name for p in profiles],
    )


def compute_fair_shares(
    profiles: Sequence,
    shares: Optional[Sequence[float]] = None,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> Optional[List[float]]:
    """Waterfilled per-thread bandwidth targets from solo demands.

    Returns None when any solo baseline fails (unregistered profile),
    so callers can degrade to target-free reporting.
    """
    if shares is None:
        shares = equal_shares(len(profiles))
    demands: List[float] = []
    for p in profiles:
        try:
            solo = run_solo(p, cycles=cycles, warmup=warmup, seed=seed)
        except Exception:
            return None
        demands.append(solo.threads[0].bus_utilization)
    return fair_share_targets(demands, list(shares))
