"""Textual dashboard over interval samples: sparklines + convergence.

``repro-fqms report`` renders one block per thread — bus share vs.
fair-share target, queue occupancy, row-hit rate, VFT lag — as
sparkline rows, then a convergence verdict: the first sample boundary
("epoch") after which the thread's bus share stays within a tolerance
band of its fair-share target for the rest of the run.  That is the
observable form of the paper's §4.2 claim that FQ drives each thread's
bandwidth to its service quantum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..stats.report import render_kv, render_table, sparkline
from .sampler import IntervalSample

#: Relative band around the fair-share target that counts as converged.
DEFAULT_TOLERANCE = 0.25
#: Sparkline width for dashboard rows.
SPARK_WIDTH = 48


def convergence_epoch(
    samples: Sequence[IntervalSample],
    thread: int,
    target: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Optional[int]:
    """First sample cycle after which bus share stays within the band.

    A sample is in-band when ``|share - target| <= tolerance * target``.
    Returns the ``cycle`` of the first sample opening a suffix that is
    entirely in-band, or ``None`` if the thread never settles (or the
    target is zero).
    """
    if target <= 0 or not samples:
        return None
    band = tolerance * target
    epoch: Optional[int] = None
    for sample in samples:
        if abs(sample.bus_utilization[thread] - target) <= band:
            if epoch is None:
                epoch = sample.cycle
        else:
            epoch = None
    return epoch


def _series(samples: Sequence[IntervalSample], thread: int, attr: str) -> List[float]:
    return [float(getattr(s, attr)[thread]) for s in samples]


def render_trace_report(
    samples: Sequence[IntervalSample],
    thread_names: Sequence[str],
    fair_shares: Optional[Sequence[float]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    title: str = "telemetry report",
    policy: Optional[str] = None,
    policy_key_fields: Sequence[str] = (),
) -> str:
    """Render the full dashboard as one printable string."""
    lines: List[str] = [title, "=" * len(title)]
    if policy is not None:
        key_note = (
            f" (priority key: {', '.join(policy_key_fields)})"
            if policy_key_fields
            else ""
        )
        lines.append(f"policy {policy}{key_note}")
    if not samples:
        lines.append("(no interval samples recorded)")
        return "\n".join(lines)
    first, last = samples[0], samples[-1]
    lines.append(
        f"{len(samples)} intervals, cycles {first.cycle - first.span}"
        f"..{last.cycle}, period {first.span}"
    )
    lines.append("")
    num_threads = len(thread_names)
    util_ceiling = max(
        (max(_series(samples, t, "bus_utilization")) for t in range(num_threads)),
        default=0.0,
    )
    if fair_shares is not None:
        util_ceiling = max(util_ceiling, max(fair_shares, default=0.0))
    for t, name in enumerate(thread_names):
        header = f"T{t} {name}"
        lines.append(header)
        lines.append("-" * len(header))
        util = _series(samples, t, "bus_utilization")
        rows = [
            (
                "bus share",
                sparkline(util, lo=0.0, hi=util_ceiling or 1.0, width=SPARK_WIDTH),
                f"last {util[-1]:.3f}",
            ),
            (
                "queue occupancy",
                sparkline(
                    _series(samples, t, "queue_occupancy"), lo=0.0, width=SPARK_WIDTH
                ),
                f"last {samples[-1].queue_occupancy[t]}",
            ),
            (
                "row-hit rate",
                sparkline(
                    _series(samples, t, "row_hit_rate"),
                    lo=0.0,
                    hi=1.0,
                    width=SPARK_WIDTH,
                ),
                f"last {samples[-1].row_hit_rate[t]:.3f}",
            ),
            (
                "VFT lag",
                sparkline(_series(samples, t, "vft_lag"), width=SPARK_WIDTH),
                f"last {samples[-1].vft_lag[t]:.1f}",
            ),
            (
                "inversions",
                sparkline(
                    _series(samples, t, "inversions"), lo=0.0, width=SPARK_WIDTH
                ),
                f"total {sum(s.inversions[t] for s in samples)}",
            ),
        ]
        width = max(len(r[0]) for r in rows)
        for label, spark, note in rows:
            lines.append(f"  {label.ljust(width)}  |{spark}|  {note}")
        if fair_shares is not None:
            target = fair_shares[t]
            epoch = convergence_epoch(samples, t, target, tolerance)
            if epoch is None:
                verdict = f"not converged to target {target:.3f} (±{tolerance:.0%})"
            else:
                verdict = (
                    f"converged to target {target:.3f} (±{tolerance:.0%}) "
                    f"at cycle {epoch}"
                )
            lines.append(f"  {'convergence'.ljust(width)}  {verdict}")
        lines.append("")
    total_inv = sum(sum(s.inversions) for s in samples)
    total_contended = sum(s.contended_arbitrations for s in samples)
    lines.append(
        render_kv(
            "totals",
            [
                ("priority inversions", total_inv),
                ("contended arbitrations", total_contended),
            ],
        )
    )
    return "\n".join(lines)


def render_summary_table(summary: dict) -> str:
    """Render a telemetry summary dict as a two-column table."""
    return render_table(
        ("counter", "value"), [(key, summary[key]) for key in sorted(summary)]
    )
