"""Exporters: Perfetto ``trace_event`` JSON and CSV/JSONL interval dumps.

The Perfetto export follows the Chrome trace-event format (the legacy
JSON flavour, which Perfetto's UI at https://ui.perfetto.dev loads
directly): a ``traceEvents`` array of ``"M"`` metadata records naming
processes/threads, ``"X"`` complete slices with microsecond-like
``ts``/``dur`` fields (we emit simulated *cycles* — the unit is
declared via ``displayTimeUnit`` and the trace's ``otherData``), and
``"C"`` counter events for the interval time series.

Track layout:

* pid 0 ("threads") — one track per simulated thread carrying its
  request-lifecycle slices (name = ``read@bank`` etc., args = every
  recorded milestone) plus per-thread counter tracks for bus share vs.
  fair-share target and VFT lag.
* pid 1 ("banks") — one track per (channel, rank, bank) carrying the
  issued-command slices (ACTIVATE/READ/WRITE/PRECHARGE) with their
  DDR2 occupancy as the duration.

All timestamps are simulated cycles; this module must not consult
wall-clock time (DET006).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Union

from .lifecycle import RequestLifecycle
from .sampler import INTERVAL_COLUMNS, IntervalSample

PathLike = Union[str, Path]

#: pid values for the two Perfetto track groups.
THREAD_PID = 0
BANK_PID = 1


def _metadata(pid: int, tid: int, name: str, kind: str) -> Dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _lifecycle_slice(
    record: RequestLifecycle,
    key_fields: Sequence[str] = (),
) -> Optional[Dict]:
    """One ``"X"`` complete slice for a closed lifecycle."""
    start = record.submit_cycle
    latency = record.latency()
    if start is None or latency is None:
        return None
    outcome = record.row_outcome or "untouched"
    args: Dict[str, object] = {
        "seq": record.seq,
        "kind": record.kind,
        "address": f"0x{record.address:x}",
        "channel": record.channel,
        "rank": record.rank,
        "bank": record.bank,
        "row": record.row,
        "row_outcome": outcome,
        "inverted": record.inverted,
        "submit_cycle": record.submit_cycle,
        "accept_cycle": record.accept_cycle,
        "first_command_cycle": record.first_command_cycle,
        "first_command": record.first_command,
        "cas_cycle": record.cas_cycle,
        "complete_cycle": record.complete_cycle,
        "fill_cycle": record.fill_cycle,
        "virtual_arrival": record.virtual_arrival,
        "virtual_start": record.virtual_start,
        "virtual_finish": record.virtual_finish,
    }
    if record.priority_key:
        args["priority_key"] = [repr(part) for part in record.priority_key]
        if key_fields:
            # Label each key component with the policy's field name
            # ("virtual_finish_time" / "blacklisted" / "neg_slowdown"
            # / ...) so traces from different policies read themselves.
            args["priority_key_labeled"] = {
                field: repr(part)
                for field, part in zip(key_fields, record.priority_key)
            }
    name = f"{record.kind}@b{record.bank} {outcome}"
    if record.inverted:
        name += " !inv"
    return {
        "name": name,
        "cat": "request",
        "ph": "X",
        "ts": start,
        "dur": max(latency, 1),
        "pid": THREAD_PID,
        "tid": record.thread,
        "args": args,
    }


def perfetto_trace(
    telemetry,
    fair_shares: Optional[Sequence[float]] = None,
    label: str = "repro-fqms",
) -> Dict:
    """Build a Chrome/Perfetto ``trace_event`` document.

    ``fair_shares`` (per-thread fair-share bandwidth targets, as
    fractions of peak) adds a target series next to each thread's
    measured bus-share counter so convergence is visible directly in
    the UI.
    """
    events: List[Dict] = []
    names = telemetry.thread_names()
    num_threads = len(names)
    events.append(_metadata(THREAD_PID, 0, "threads", "process_name"))
    for t in range(num_threads):
        events.append(
            _metadata(THREAD_PID, t, f"T{t} {names[t]}", "thread_name")
        )
    key_fields = tuple(getattr(telemetry, "policy_key_fields", ()))
    for t in range(num_threads):
        for record in telemetry.lifecycles(t):
            slice_event = _lifecycle_slice(record, key_fields)
            if slice_event is not None:
                events.append(slice_event)
    for sample in telemetry.samples():
        for t in range(num_threads):
            counters = {
                "bus_share": sample.bus_utilization[t],
                "queue": sample.queue_occupancy[t],
                "vft_lag": sample.vft_lag[t],
            }
            if fair_shares is not None:
                counters["fair_share_target"] = fair_shares[t]
            for counter, value in counters.items():
                events.append(
                    {
                        "name": f"T{t} {counter}",
                        "cat": "interval",
                        "ph": "C",
                        "ts": sample.cycle,
                        "pid": THREAD_PID,
                        "tid": t,
                        "args": {counter: value},
                    }
                )
    bank_log = telemetry.bank_log
    banks = bank_log.banks()
    if banks:
        events.append(_metadata(BANK_PID, 0, "banks", "process_name"))
        for tid, (channel, rank, bank) in enumerate(banks):
            events.append(
                _metadata(
                    BANK_PID, tid, f"ch{channel} r{rank} b{bank}", "thread_name"
                )
            )
            for cycle, kind_name, row, thread, duration in bank_log.events(
                channel, rank, bank
            ):
                owner = f"T{thread}" if thread is not None else "auto"
                events.append(
                    {
                        "name": f"{kind_name} row {row} ({owner})",
                        "cat": "dram",
                        "ph": "X",
                        "ts": cycle,
                        "dur": max(duration, 1),
                        "pid": BANK_PID,
                        "tid": tid,
                        "args": {"row": row, "thread": thread},
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": label,
            "time_unit": "dram_cycles",
            "threads": list(names),
            "policy": getattr(telemetry, "policy_name", None),
            "policy_key_fields": list(key_fields),
            "truncation": telemetry.summary(),
        },
    }


def write_trace(path: PathLike, trace: Dict) -> None:
    Path(path).write_text(json.dumps(trace, indent=None, sort_keys=False))


def validate_trace(trace: Dict) -> List[str]:
    """Schema-check a trace document; returns human-readable problems.

    Covers the invariants Perfetto's JSON importer relies on: the
    ``traceEvents`` list, required keys per phase type, numeric
    non-negative timestamps, and ``"X"`` durations.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X", "C"):
            problems.append(f"{where}: unsupported ph {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key}")
        if phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: bad metadata name")
            if "name" not in event.get("args", {}):
                problems.append(f"{where}: metadata missing args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter missing args")
    return problems


# -- interval dumps --------------------------------------------------------


def _interval_rows(samples: Sequence[IntervalSample], num_threads: int):
    for sample in samples:
        for t in range(num_threads):
            yield sample.row(t)


def write_intervals_csv(
    path: PathLike, samples: Sequence[IntervalSample], num_threads: int
) -> None:
    """Long-format CSV: one row per (interval, thread)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=INTERVAL_COLUMNS)
        writer.writeheader()
        for row in _interval_rows(samples, num_threads):
            writer.writerow(row)


def write_intervals_jsonl(
    path: PathLike, samples: Sequence[IntervalSample], num_threads: int
) -> None:
    """JSON-lines dump with the same rows as the CSV."""
    with open(path, "w") as handle:
        for row in _interval_rows(samples, num_threads):
            handle.write(json.dumps(row) + "\n")


def _load_csv(handle: IO[str]) -> List[Dict[str, float]]:
    rows = []
    for raw in csv.DictReader(handle):
        rows.append({key: float(value) for key, value in raw.items()})
    return rows


def _load_jsonl(handle: IO[str]) -> List[Dict[str, float]]:
    rows = []
    for line in handle:
        line = line.strip()
        if line:
            rows.append({key: float(value) for key, value in json.loads(line).items()})
    return rows


def load_intervals(path: PathLike) -> List[Dict[str, float]]:
    """Read an interval dump (CSV or JSONL, sniffed by first byte).

    Returns one flat numeric dict per (interval, thread) row, in file
    order — the common shape ``tools/trace_compare.py`` diffs.
    """
    with open(path) as handle:
        first = handle.read(1)
        handle.seek(0)
        if first == "{":
            return _load_jsonl(handle)
        return _load_csv(handle)
