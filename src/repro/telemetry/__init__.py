"""repro.telemetry — zero-cost-when-disabled run observability.

Three layers over one :class:`RunTelemetry` object per system:

* :mod:`repro.telemetry.lifecycle` — per-request milestone tracing
  (core submit → interface-queue accept → VTMS stamp → RAS/CAS issue →
  data return → core retire-unblock) into bounded per-thread rings.
* :mod:`repro.telemetry.sampler` — fixed-period interval metrics
  (per-thread bandwidth, queue occupancy, row-hit rate, VFT lag,
  priority inversions) whose deadlines participate in the event
  engine's target computation so bulk skips land exactly on sample
  boundaries.
* :mod:`repro.telemetry.export` / :mod:`repro.telemetry.report` —
  Chrome/Perfetto ``trace_event`` JSON, CSV/JSONL interval dumps, and
  the ``repro-fqms report`` textual dashboard.

Tracing is opt-in: pass ``--trace`` on the CLI or set ``REPRO_TRACE=1``
(mirroring :mod:`repro.check`'s pattern).  The flag is deliberately
*not* part of :class:`~repro.sim.config.SystemConfig`, so result-cache
fingerprints do not fork on it; traced and untraced runs are
bit-identical because every hook only observes, never steers.  When
disabled, the hook sites cost one ``telemetry is None`` attribute test
each (~0% overhead, enforced by ``benchmarks/bench_telemetry_overhead``).

All timestamps are simulated cycles — wall-clock or RNG use inside
this package is a DET006 determinism-lint error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .. import env

from .lifecycle import (
    DEFAULT_RING_CAPACITY,
    BankCommandLog,
    LifecycleTracer,
    RequestLifecycle,
)
from .sampler import DEFAULT_SAMPLE_PERIOD, IntervalSample, IntervalSampler

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycle)
    from ..controller.bank_scheduler import BankScheduler, CandidateCommand
    from ..controller.request import MemoryRequest
    from ..sim.system import CmpSystem

__all__ = [
    "BankCommandLog",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_SAMPLE_PERIOD",
    "IntervalSample",
    "IntervalSampler",
    "LifecycleTracer",
    "RequestLifecycle",
    "RunTelemetry",
    "TRACE_ENV_VAR",
    "trace_enabled",
    "trace_period",
    "trace_ring_capacity",
]

#: Environment switch for run tracing (mirrors ``REPRO_CHECK``).
TRACE_ENV_VAR = "REPRO_TRACE"
#: Sampling-period override (cycles).
TRACE_PERIOD_ENV_VAR = "REPRO_TRACE_PERIOD"
#: Ring-capacity override (completed lifecycles retained per thread).
TRACE_RING_ENV_VAR = "REPRO_TRACE_RING"

#: Command durations drawn on the Perfetto bank tracks, by kind name;
#: resolved against the run's DDR2 timing at record time.
_COMMAND_SPANS = {
    "ACTIVATE": "t_rcd",
    "PRECHARGE": "t_rp",
    "READ": "burst",
    "WRITE": "burst",
}


def trace_enabled() -> bool:
    """True when run tracing is requested via the environment.

    Any value other than the empty string, ``"0"``, or ``"false"``
    (case-insensitive) enables tracing — the same convention as
    :func:`repro.check.checks_enabled`, and propagated the same way
    (worker processes inherit the environment).
    """
    return env.flag(TRACE_ENV_VAR)


def trace_period(default: int = DEFAULT_SAMPLE_PERIOD) -> int:
    """Sampling period in cycles (``REPRO_TRACE_PERIOD`` or default)."""
    return env.positive_int(TRACE_PERIOD_ENV_VAR, default)


def trace_ring_capacity(default: int = DEFAULT_RING_CAPACITY) -> int:
    """Per-thread lifecycle ring capacity (``REPRO_TRACE_RING`` or default)."""
    return env.positive_int(TRACE_RING_ENV_VAR, default)


class RunTelemetry:
    """Observability state for one :class:`~repro.sim.system.CmpSystem`.

    The system attaches one instance to itself, its controllers, its
    bank/channel schedulers, and its cores; each component calls the
    hook for its own station with a ``telemetry is not None`` guard.
    Every hook is a pure observer: it reads simulator state and writes
    only telemetry-owned buffers, which is what keeps traced runs
    bit-identical to untraced runs.
    """

    def __init__(
        self,
        system: "CmpSystem",
        sample_period: Optional[int] = None,
        ring_capacity: Optional[int] = None,
    ):
        self.system = system
        num_threads = system.config.num_cores
        if sample_period is None:
            sample_period = trace_period()
        if ring_capacity is None:
            ring_capacity = trace_ring_capacity()
        self.tracer = LifecycleTracer(num_threads, ring_capacity)
        self.sampler = IntervalSampler(self, sample_period)
        self.bank_log = BankCommandLog(ring_capacity)
        #: Per-thread monotonic counters (the sampler takes deltas).
        self.first_commands: List[int] = [0] * num_threads
        self.row_hits: List[int] = [0] * num_threads
        self.row_conflicts: List[int] = [0] * num_threads
        self.inversions: List[int] = [0] * num_threads
        #: Channel-arbitration contention counters.
        self.arbitration_rounds = 0
        self.contended_arbitrations = 0
        #: What the scheduling policy's priority-key components mean,
        #: in comparison order — labels exported trace viewers show
        #: next to per-request keys ("virtual_finish_time" vs
        #: "blacklisted" vs "neg_slowdown", ...).
        self.policy_name: str = system.controller.policy.name
        self.policy_key_fields: Tuple[str, ...] = tuple(
            system.controller.policy.key_field_names()
        )

    # -- engine integration ------------------------------------------------

    @property
    def next_sample(self) -> int:
        """Next sampling deadline; folded into the event target."""
        return self.sampler.next_sample

    def maybe_sample(self, now: int) -> None:
        self.sampler.maybe_sample(now)

    def finalize(self, now: int) -> None:
        """Flush the trailing partial interval at end of run."""
        self.sampler.finalize(now)

    # -- core-side hooks ---------------------------------------------------

    def on_core_submit(self, request: "MemoryRequest", line: int, now: int) -> None:
        """An accepted submit left the core (lifecycle station 1)."""
        self.tracer.on_submit(request, line, now)

    def on_core_fill(self, thread: int, line: int, now: int) -> None:
        """A fill reached its core (terminal station for reads)."""
        self.tracer.on_fill(thread, line, now)

    # -- controller-side hooks ---------------------------------------------

    def on_accept(self, request: "MemoryRequest", now: int) -> None:
        """The controller admitted a request (station 2, VTMS arrival)."""
        self.tracer.on_accept(request, now)

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        """The request's data finished on the bus (station 5)."""
        self.tracer.on_complete(request, now)

    # -- scheduler-side hooks ----------------------------------------------

    def on_bank_issue(
        self, scheduler: "BankScheduler", cand: "CandidateCommand", now: int
    ) -> None:
        """A command issued from one bank queue (stations 3 and 4).

        Called by :meth:`BankScheduler.on_issue` *before* it mutates
        queue or row state, so the inversion check sees exactly the
        queue the selection saw.  Key recomputation goes through the
        policy directly (not the per-request memo) so tracing leaves
        the scheduler's caches byte-for-byte untouched.
        """
        request = cand.request
        timing = scheduler.dram.timing
        kind_name = cand.kind.name
        duration = getattr(timing, _COMMAND_SPANS.get(kind_name, "burst"))
        channel = request.channel if request is not None else 0
        self.bank_log.record(
            channel,
            cand.rank,
            cand.bank,
            now,
            kind_name,
            cand.row,
            cand.charge_thread,
            duration,
        )
        if request is None:
            return  # auto-precharge: no request lifecycle to annotate
        inverted = False
        if len(scheduler.queue) > 1:
            policy_key = scheduler.policy.request_key
            key = policy_key(request)
            for other in scheduler.queue:
                if other is not request and policy_key(other) < key:
                    inverted = True
                    break
        thread = request.thread_id
        tracer = self.tracer
        record = tracer._open.get(request.seq)
        first = record is not None and record.first_command_cycle is None
        tracer.on_command(request, kind_name, cand.kind.is_cas, inverted, now)
        if first:
            self.first_commands[thread] += 1
            if record.row_outcome == "hit":
                self.row_hits[thread] += 1
            elif record.row_outcome == "conflict":
                self.row_conflicts[thread] += 1
        if inverted:
            self.inversions[thread] += 1
        if cand.kind.is_cas:
            # Recompute the ordering tuple (cand.key may be a packed
            # int); called before any issue mutation, so it matches the
            # key the selection compared.
            tracer.on_command_key(
                request, scheduler.policy.request_key(request)
            )

    def on_arbitration(self, now: int, ready_candidates: int) -> None:
        """The channel scheduler issued with ``ready_candidates`` ready."""
        self.arbitration_rounds += 1
        if ready_candidates > 1:
            self.contended_arbitrations += 1

    # -- reporting ---------------------------------------------------------

    def samples(self) -> List[IntervalSample]:
        return self.sampler.samples

    def lifecycles(self, thread: int) -> List[RequestLifecycle]:
        """Retained completed lifecycles for one thread, oldest first."""
        return list(self.tracer.completed[thread])

    def summary(self) -> Dict[str, int]:
        """Counters proving the tracer saw traffic, plus truncation."""
        totals = dict(self.tracer.summary())
        totals["bank_events_dropped"] = self.bank_log.dropped
        totals["samples"] = len(self.sampler.samples)
        totals["inversions"] = sum(self.inversions)
        totals["arbitration_rounds"] = self.arbitration_rounds
        totals["contended_arbitrations"] = self.contended_arbitrations
        return totals

    def thread_names(self) -> List[str]:
        return [p.name for p in self.system.profiles]
