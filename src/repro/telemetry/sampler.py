"""Interval metrics sampler: fixed-period time series of run dynamics.

The sampler snapshots monotonic simulator counters at every multiple
of ``period`` cycles and emits one :class:`IntervalSample` per
boundary with the per-thread *deltas* over the interval: data-bus
utilization, completed reads and their mean latency, NACKs, row-buffer
outcome counts, priority inversions — plus two instantaneous gauges,
queue occupancy and VFT lag (per-thread channel virtual-finish
register minus the FQ virtual clock; how far ahead of its fair share
the thread has consumed service).

Engine interaction: the sampler's next deadline participates in
:meth:`CmpSystem._event_target`, so the event engine's bulk skips
never jump across a boundary — the boundary cycle is stepped and the
sample taken at its top, observing exactly the state the per-cycle
oracle would observe there.  Sampling only *reads* state, so traced
runs stay bit-identical to untraced runs (see docs/INTERNALS.md
"Observability").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default sampling period in cycles.
DEFAULT_SAMPLE_PERIOD = 1000


@dataclass
class IntervalSample:
    """Metrics for one sampling interval ending at ``cycle``.

    Per-thread lists are indexed by thread id.  ``span`` is the
    interval length in cycles (the final flush interval may be
    shorter than the configured period).
    """

    cycle: int
    span: int
    #: Per-thread data-bus utilization over the interval (fraction of
    #: total peak bandwidth across all channels).
    bus_utilization: List[float]
    #: Instantaneous queued-request count at the boundary.
    queue_occupancy: List[int]
    #: Row-buffer hit fraction of CAS-carrying requests this interval
    #: (0.0 when no request issued its first command).
    row_hit_rate: List[float]
    #: Channel virtual-finish register minus the FQ virtual clock at
    #: the boundary (0.0 under non-VTMS policies).
    vft_lag: List[float]
    #: Priority-inverting commands charged to each thread's bank queue.
    inversions: List[int]
    reads: List[int]
    mean_read_latency: List[float]
    nacks: List[int]
    #: Channel-arbitration rounds this interval where >1 candidate was
    #: ready (whole-system, not per-thread).
    contended_arbitrations: int = 0

    def row(self, thread: int) -> Dict[str, float]:
        """One thread's metrics as a flat dict (export row)."""
        return {
            "cycle": self.cycle,
            "span": self.span,
            "thread": thread,
            "bus_utilization": self.bus_utilization[thread],
            "queue_occupancy": self.queue_occupancy[thread],
            "row_hit_rate": self.row_hit_rate[thread],
            "vft_lag": self.vft_lag[thread],
            "inversions": self.inversions[thread],
            "reads": self.reads[thread],
            "mean_read_latency": self.mean_read_latency[thread],
            "nacks": self.nacks[thread],
        }


#: Ordered column names of :meth:`IntervalSample.row` (export header).
INTERVAL_COLUMNS = (
    "cycle",
    "span",
    "thread",
    "bus_utilization",
    "queue_occupancy",
    "row_hit_rate",
    "vft_lag",
    "inversions",
    "reads",
    "mean_read_latency",
    "nacks",
)


@dataclass
class _CounterSnapshot:
    """Monotonic per-thread counters at one boundary."""

    cas_cycles: List[int]
    reads: List[int]
    latency_sum: List[int]
    nacks: List[int]
    first_commands: List[int]
    row_hits: List[int]
    inversions: List[int]
    contended: int = 0


class IntervalSampler:
    """Periodic read-only sampler attached to one :class:`RunTelemetry`."""

    def __init__(self, telemetry, period: int = DEFAULT_SAMPLE_PERIOD):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.telemetry = telemetry
        self.period = period
        self.samples: List[IntervalSample] = []
        #: Next cycle at which a sample falls due; the system folds
        #: this into its event-target computation.
        self.next_sample = period
        self._last: Optional[_CounterSnapshot] = None
        self._last_cycle = 0

    # -- snapshotting ------------------------------------------------------

    def _snapshot(self) -> _CounterSnapshot:
        tel = self.telemetry
        system = tel.system
        n = system.config.num_cores
        controllers = system.controllers
        cas = [0] * n
        reads = [0] * n
        lat = [0] * n
        nacks = [0] * n
        for controller in controllers:
            stats = controller.stats
            for t in range(n):
                cas[t] += stats.cas_cycles[t]
                reads[t] += stats.read_count[t]
                lat[t] += stats.read_latency_sum[t]
                nacks[t] += stats.requests_nacked[t]
        for t in range(n):
            nacks[t] += system.cores[t].stats.nacks
        return _CounterSnapshot(
            cas_cycles=cas,
            reads=reads,
            latency_sum=lat,
            nacks=nacks,
            first_commands=list(tel.first_commands),
            row_hits=list(tel.row_hits),
            inversions=list(tel.inversions),
            contended=tel.contended_arbitrations,
        )

    def _gauges(self) -> Dict[str, List[float]]:
        """Instantaneous (non-delta) metrics at the current boundary."""
        system = self.telemetry.system
        n = system.config.num_cores
        occupancy = [
            sum(c.pending_requests(t) for c in system.controllers)
            for t in range(n)
        ]
        lag = [0.0] * n
        for controller in system.controllers:
            vtms = controller.vtms
            if vtms is None:
                continue
            clock = vtms.clock
            for t in range(n):
                lag[t] = max(lag[t], vtms[t].channel_finish - clock)
        return {"queue_occupancy": occupancy, "vft_lag": lag}

    # -- the sampling step -------------------------------------------------

    def maybe_sample(self, now: int) -> None:
        """Take every sample due at or before ``now``.

        The engines guarantee boundaries are reached exactly (the event
        engine clamps its skip targets to ``next_sample``), so in
        practice this fires with ``now == next_sample``.
        """
        while self.next_sample <= now:
            self._take(self.next_sample)
            self.next_sample += self.period

    def finalize(self, now: int) -> None:
        """Flush a final (possibly short) interval ending at ``now``."""
        if now > self._last_cycle:
            self._take(now)
            # Keep the schedule aligned to period multiples in case the
            # system runs further (e.g. a second measurement window).
            while self.next_sample <= now:
                self.next_sample += self.period

    def _take(self, cycle: int) -> None:
        if self._last is None:
            # Lazily snapshot the construction-time baseline; all
            # counters are zero at cycle 0.
            self._last = _CounterSnapshot(
                cas_cycles=[], reads=[], latency_sum=[], nacks=[],
                first_commands=[], row_hits=[], inversions=[],
            )
            n = self.telemetry.system.config.num_cores
            for name in (
                "cas_cycles", "reads", "latency_sum", "nacks",
                "first_commands", "row_hits", "inversions",
            ):
                setattr(self._last, name, [0] * n)
        current = self._snapshot()
        last = self._last
        span = cycle - self._last_cycle
        system = self.telemetry.system
        n = system.config.num_cores
        channels = system.config.num_channels
        bus_span = span * channels
        util = [0.0] * n
        hit_rate = [0.0] * n
        reads = [0] * n
        mean_lat = [0.0] * n
        nacks = [0] * n
        inversions = [0] * n
        for t in range(n):
            d_cas = current.cas_cycles[t] - last.cas_cycles[t]
            util[t] = (d_cas / bus_span) if bus_span else 0.0
            d_first = current.first_commands[t] - last.first_commands[t]
            d_hits = current.row_hits[t] - last.row_hits[t]
            hit_rate[t] = (d_hits / d_first) if d_first else 0.0
            reads[t] = current.reads[t] - last.reads[t]
            d_lat = current.latency_sum[t] - last.latency_sum[t]
            mean_lat[t] = (d_lat / reads[t]) if reads[t] else 0.0
            nacks[t] = current.nacks[t] - last.nacks[t]
            inversions[t] = current.inversions[t] - last.inversions[t]
        gauges = self._gauges()
        self.samples.append(
            IntervalSample(
                cycle=cycle,
                span=span,
                bus_utilization=util,
                queue_occupancy=[int(q) for q in gauges["queue_occupancy"]],
                row_hit_rate=hit_rate,
                vft_lag=gauges["vft_lag"],
                inversions=inversions,
                reads=reads,
                mean_read_latency=mean_lat,
                nacks=nacks,
                contended_arbitrations=current.contended - last.contended,
            )
        )
        self._last = current
        self._last_cycle = cycle
