"""Scheduler invariant checker: VTMS monotonicity, bounded inversion,
request conservation.

Observes the controller through the same event hooks as the protocol
sanitizer and asserts the fair-queuing properties the paper's
correctness argument rests on:

* **VFT register monotonicity** — each thread's per-bank and channel
  last-virtual-finish-time registers never decrease (they advance by
  ``max(arrival, R) + positive``, so any decrease is an accounting
  bug).
* **Virtual clock monotonicity** — the FQ real clock (which pauses
  during refresh) never runs backwards, including across idle
  fast-forward skips.
* **Bounded priority inversion** (paper §3.3) — under an FQ policy,
  once a bank has been continuously active for the inversion bound
  ``x`` (default t_RAS), any request-driven command issued on that
  bank must serve the earliest-virtual-finish-time request among the
  bank's pending requests.  The checker re-derives the priority key
  from the request fields rather than calling the scheduler's key
  function.
* **Request conservation** — every request the controller accepts is
  CAS-issued at most once and completes at most once; nothing
  completes that was never accepted, and the accept/issue/complete
  ledgers balance at the end of a run.

Violations raise :class:`InvariantViolation` naming the invariant and
the offending event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from ..dram.commands import CommandType
from .protocol import CheckError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..controller.bank_scheduler import CandidateCommand
    from ..controller.controller import MemoryController
    from ..controller.request import MemoryRequest


class InvariantViolation(CheckError):
    """A scheduler invariant was broken.

    Attributes:
        invariant: Short identifier of the violated property.
        cycle: Cycle of the offending event.
    """

    def __init__(self, invariant: str, message: str, cycle: int):
        self.invariant = invariant
        self.cycle = cycle
        super().__init__(
            f"scheduler invariant violation [{invariant}] at cycle "
            f"{cycle}: {message}"
        )


class _BankView:
    """The checker's own view of one bank's scheduling state."""

    __slots__ = ("open", "last_activate", "pending")

    def __init__(self) -> None:
        self.open = False
        self.last_activate = 0
        self.pending: Set["MemoryRequest"] = set()


class SchedulerInvariantChecker:
    """Asserts scheduler invariants for one memory controller.

    The checker only *reads* controller state (policy flags, VTMS
    registers); all bookkeeping it bases verdicts on is derived from
    the observed event stream.
    """

    def __init__(self, controller: "MemoryController"):
        self.controller = controller
        self.policy = controller.policy
        self.vtms = controller.vtms
        num_banks = controller.dram.num_banks
        self.banks: Dict[Tuple[int, int], _BankView] = {
            (rank.index, bank.index): _BankView()
            for rank in controller.dram.ranks
            for bank in rank.banks
        }
        #: The FQ bank rule's bound x, resolved the way the controller
        #: resolves it (explicit override, else t_RAS).
        bound = self.policy.inversion_bound
        if bound is None:
            bound = controller.dram.timing.t_ras
        self.inversion_bound = bound
        #: The §3.3 bounded-inversion invariant arms only for the
        #: FQ family — policies running the bank-commit rule.  Other
        #: policies (FR-FCFS, FR-VFTF, BLISS, MISE) permit unbounded
        #: inversion by design.  It also needs the scheduler's visible
        #: queue to equal the accepted-minus-retired set, which holds
        #: only under the paper's FCFS write scheduling (watermark
        #: draining hides writes from the queue).
        self.check_inversion = (
            self.policy.fq_family and controller.write_drain == "fcfs"
        )
        # Conservation ledgers (request seq -> lifecycle stage).
        self._pending_seqs: Set[int] = set()
        self._inflight_seqs: Set[int] = set()
        self.accepted = 0
        self.retired = 0
        self.completed = 0
        # Monotonicity shadows.
        self._clock_shadow = 0.0
        self._bank_finish_shadow: List[List[float]] = []
        self._channel_finish_shadow: List[float] = []
        if self.vtms is not None:
            self._bank_finish_shadow = [
                [0.0] * num_banks * controller.dram.num_ranks
                for _ in range(len(self.vtms))
            ]
            self._channel_finish_shadow = [0.0] * len(self.vtms)

    # -- priority key (independent re-derivation) --------------------------

    def _priority_key(self, request: "MemoryRequest") -> Tuple:
        """Re-derive the policy ordering key from request fields.

        Mirrors the *specification* of :meth:`repro.core.policies.
        Policy.request_key` without calling it, so a bug in the
        scheduler's memoized key path shows up as a disagreement here.
        """
        if self.policy.uses_vtms:
            if self.policy.start_time_priority:
                return (
                    request.virtual_start_time,
                    request.arrival_time,
                    request.seq,
                )
            return (
                request.virtual_finish_time,
                request.arrival_time,
                request.seq,
            )
        return (request.arrival_time, request.seq)

    # -- shared monotonicity checks ----------------------------------------

    def _check_clocks(self, now: int) -> None:
        if self.vtms is None:
            return
        clock = self.vtms.clock
        if clock < self._clock_shadow:
            raise InvariantViolation(
                "virtual-clock",
                f"FQ real clock moved backwards: {clock} < "
                f"{self._clock_shadow}",
                now,
            )
        self._clock_shadow = clock

    def _check_vft_registers(self, thread_id: int, now: int) -> None:
        if self.vtms is None:
            return
        thread = self.vtms[thread_id]
        shadows = self._bank_finish_shadow[thread_id]
        for bank, value in enumerate(thread.bank_finish):
            if value < shadows[bank]:
                raise InvariantViolation(
                    "vft-monotone",
                    f"thread {thread_id} bank {bank} finish-time register "
                    f"decreased: {value} < {shadows[bank]}",
                    now,
                )
            shadows[bank] = value
        if thread.channel_finish < self._channel_finish_shadow[thread_id]:
            raise InvariantViolation(
                "vft-monotone",
                f"thread {thread_id} channel finish-time register "
                f"decreased: {thread.channel_finish} < "
                f"{self._channel_finish_shadow[thread_id]}",
                now,
            )
        self._channel_finish_shadow[thread_id] = thread.channel_finish

    # -- observation hooks -------------------------------------------------

    def on_accept(self, request: "MemoryRequest", now: int) -> None:
        seq = request.seq
        if seq in self._pending_seqs or seq in self._inflight_seqs:
            raise InvariantViolation(
                "conservation",
                f"request seq={seq} accepted twice",
                now,
            )
        self._pending_seqs.add(seq)
        self.accepted += 1
        self.banks[(request.rank, request.bank)].pending.add(request)
        self._check_clocks(now)
        self._check_vft_registers(request.thread_id, now)

    def on_command(self, cand: "CandidateCommand", now: int) -> None:
        view = self.banks[(cand.rank, cand.bank)]
        request = cand.request

        if (
            self.check_inversion
            and request is not None
            and view.open
            and now - view.last_activate >= self.inversion_bound
        ):
            # Committed mode: the bank must serve the earliest-VFT
            # pending request, whatever command that request needs.
            expected = min(view.pending, key=self._priority_key)
            if request is not expected:
                raise InvariantViolation(
                    "bounded-inversion",
                    f"bank ({cand.rank},{cand.bank}) active "
                    f"{now - view.last_activate} >= bound "
                    f"{self.inversion_bound} cycles but issued "
                    f"{cand.kind.value} for seq={request.seq} "
                    f"(key={self._priority_key(request)}) instead of "
                    f"seq={expected.seq} "
                    f"(key={self._priority_key(expected)})",
                    now,
                )

        if cand.kind is CommandType.ACTIVATE:
            view.open = True
            view.last_activate = now
        elif cand.kind is CommandType.PRECHARGE:
            view.open = False

        if cand.kind.is_cas and request is not None:
            seq = request.seq
            if seq not in self._pending_seqs:
                raise InvariantViolation(
                    "conservation",
                    f"CAS issued for seq={seq} which is not pending "
                    f"(duplicate issue or never accepted)",
                    now,
                )
            self._pending_seqs.discard(seq)
            self._inflight_seqs.add(seq)
            self.retired += 1
            view.pending.discard(request)

        self._check_clocks(now)
        if cand.charge_thread is not None:
            self._check_vft_registers(cand.charge_thread, now)

    def on_refresh(self, now: int) -> None:
        for view in self.banks.values():
            view.open = False
        self._check_clocks(now)

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        seq = request.seq
        if seq not in self._inflight_seqs:
            raise InvariantViolation(
                "conservation",
                f"completion for seq={seq} with no CAS in flight "
                f"(duplicate or spurious completion)",
                now,
            )
        if request.completed_at is None or request.completed_at > now:
            raise InvariantViolation(
                "conservation",
                f"seq={seq} delivered at {now} before its data completed "
                f"(completed_at={request.completed_at})",
                now,
            )
        self._inflight_seqs.discard(seq)
        self.completed += 1

    def finalize(self, now: int) -> None:
        """End-of-run balance: accepted == retired + still pending."""
        if self.accepted != self.retired + len(self._pending_seqs):
            raise InvariantViolation(
                "conservation",
                f"{self.accepted} accepted != {self.retired} retired + "
                f"{len(self._pending_seqs)} still pending",
                now,
            )
        if self.retired != self.completed + len(self._inflight_seqs):
            raise InvariantViolation(
                "conservation",
                f"{self.retired} retired != {self.completed} completed + "
                f"{len(self._inflight_seqs)} in flight",
                now,
            )
