"""Runtime DDR2 protocol sanitizer.

An independent re-implementation of the full DDR2 constraint set that
*observes* every command the controller issues and validates it
against its own per-bank / per-rank / per-channel timing ledger.  It
deliberately shares no code with :mod:`repro.dram`: the device model
answers "when is this command legal?" while the sanitizer answers "was
that command legal?", so a bug in the model's earliest-issue algebra
cannot hide itself from the check.

Checked constraints:

=============  ====================================================
t_rcd          activate → read/write, same bank
t_rp           precharge → activate (and precharge → refresh)
t_ras          activate → precharge, same bank
t_rc           activate → activate, same bank
t_rrd          activate → activate, same rank (any banks)
t_faw          rolling four-activate window per rank
t_ccd          CAS → CAS, same channel
t_wtr          end of write data → read, same rank
t_wr           end of write data → precharge, same bank
t_rtp          read → precharge, same bank
burst          data-bus occupancy: bursts must never overlap
address bus    at most one command per cycle per channel
t_rfc          refresh blackout: no commands mid-refresh
t_refi         refresh cadence: no interval drifts past the deadline
=============  ====================================================

Violations raise :class:`ProtocolViolation` carrying the offending
command and a bounded history of recent commands for diagnosis.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..dram.commands import CommandType
from ..dram.timing import DDR2Timing

#: "Never happened" sentinel, mirroring the device model's convention
#: but defined independently so the sanitizer stands on its own.
_NEVER = -(10**12)

#: Commands retained for the violation report.
HISTORY_DEPTH = 32

#: A history entry: (cycle, command name, rank, bank, row).
CommandRecord = Tuple[int, str, int, int, int]


class CheckError(AssertionError):
    """Base class for repro.check failures.

    Derives from :class:`AssertionError` so ``pytest`` renders these as
    genuine check failures rather than unexpected errors.
    """


class ProtocolViolation(CheckError):
    """A command violated a DDR2 protocol constraint.

    Attributes:
        rule: Constraint identifier (``"t_rcd"``, ``"data-bus"``, ...).
        cycle: Cycle the offending command issued.
        command: The offending command as a :data:`CommandRecord`.
        history: Recent commands, oldest first (bounded).
    """

    def __init__(
        self,
        rule: str,
        message: str,
        cycle: int,
        command: CommandRecord,
        history: List[CommandRecord],
    ):
        self.rule = rule
        self.cycle = cycle
        self.command = command
        self.history = history
        lines = [f"DDR2 protocol violation [{rule}] at cycle {cycle}: {message}"]
        if history:
            lines.append("recent commands (oldest first):")
            for entry in history:
                c, kind, rank, bank, row = entry
                lines.append(f"  @{c:<10d} {kind:<10s} rank={rank} bank={bank} row={row}")
        super().__init__("\n".join(lines))


class _BankLedger:
    """Independent per-bank timing record."""

    __slots__ = (
        "open_row",
        "last_activate",
        "last_read",
        "last_precharge",
        "write_data_end",
    )

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.last_activate = _NEVER
        self.last_read = _NEVER
        self.last_precharge = _NEVER
        self.write_data_end = _NEVER


class _RankLedger:
    """Independent per-rank timing record."""

    __slots__ = ("banks", "last_activate", "activate_times", "write_data_end")

    def __init__(self, num_banks: int) -> None:
        self.banks = [_BankLedger() for _ in range(num_banks)]
        self.last_activate = _NEVER
        #: Last four activate cycles in this rank, oldest first.
        self.activate_times: Deque[int] = deque(maxlen=4)
        self.write_data_end = _NEVER


class DramProtocolSanitizer:
    """Validates a stream of observed commands for one memory channel.

    Feed it every command via :meth:`on_command` and every refresh via
    :meth:`on_refresh`; it raises :class:`ProtocolViolation` the moment
    a constraint is broken.

    Args:
        timing: The DDR2 constraint set the stream must respect.
        num_ranks / num_banks: Channel topology.
        refresh_slack: Extra cycles tolerated beyond ``t_refi`` between
            consecutive refreshes, covering the drain window while open
            rows close.  The default (ten ``t_rc``) is generous for any
            sane drain but still catches a refresh engine that skips or
            forgets refreshes.
    """

    def __init__(
        self,
        timing: DDR2Timing,
        num_ranks: int = 1,
        num_banks: int = 8,
        refresh_slack: Optional[int] = None,
    ):
        self.timing = timing
        self.ranks = [_RankLedger(num_banks) for _ in range(num_ranks)]
        self.refresh_slack = (
            10 * timing.t_rc if refresh_slack is None else refresh_slack
        )
        self.last_command_cycle = _NEVER
        self.last_cas_cycle = _NEVER
        #: First cycle the data bus is free of every reserved burst.
        self.data_busy_until = _NEVER
        #: End of the current/most recent refresh blackout.
        self.refresh_ready = _NEVER
        self.last_refresh_start: Optional[int] = None
        self.commands_checked = 0
        self.refreshes_checked = 0
        self.history: Deque[CommandRecord] = deque(maxlen=HISTORY_DEPTH)

    # -- violation plumbing ------------------------------------------------

    def _fail(
        self, rule: str, message: str, cycle: int, command: CommandRecord
    ) -> None:
        raise ProtocolViolation(
            rule, message, cycle, command, list(self.history)
        )

    # -- observation hooks -------------------------------------------------

    def on_command(
        self, kind: CommandType, rank: int, bank: int, row: int, now: int
    ) -> None:
        """Validate and record one issued command."""
        t = self.timing
        record: CommandRecord = (now, kind.value, rank, bank, row)
        rk = self.ranks[rank]
        bk = rk.banks[bank]

        # Channel-wide rules: one command per cycle, refresh blackout.
        if now <= self.last_command_cycle:
            self._fail(
                "address-bus",
                f"command at {now} but address bus used at "
                f"{self.last_command_cycle}",
                now,
                record,
            )
        if now < self.refresh_ready:
            self._fail(
                "t_rfc",
                f"command during refresh blackout (busy until "
                f"{self.refresh_ready})",
                now,
                record,
            )

        if kind is CommandType.ACTIVATE:
            self._check_activate(rk, bk, now, record)
            bk.open_row = row
            bk.last_activate = now
            rk.last_activate = now
            rk.activate_times.append(now)
        elif kind is CommandType.PRECHARGE:
            self._check_precharge(bk, now, record)
            bk.open_row = None
            bk.last_precharge = now
        elif kind is CommandType.READ:
            self._check_cas(bk, now, record)
            if now < rk.write_data_end + t.t_wtr:
                self._fail(
                    "t_wtr",
                    f"read {now - rk.write_data_end} cycles after write "
                    f"data ended (t_wtr={t.t_wtr})",
                    now,
                    record,
                )
            self._check_data_bus(now + t.t_cl, now, record)
            bk.last_read = now
            self.last_cas_cycle = now
            self.data_busy_until = now + t.t_cl + t.burst
        elif kind is CommandType.WRITE:
            self._check_cas(bk, now, record)
            self._check_data_bus(now + t.t_wl, now, record)
            data_end = now + t.t_wl + t.burst
            bk.write_data_end = data_end
            rk.write_data_end = data_end
            self.last_cas_cycle = now
            self.data_busy_until = data_end
        else:
            self._fail(
                "command-set",
                f"unexpected command kind {kind.value!r} on the command bus",
                now,
                record,
            )

        self.last_command_cycle = now
        self.commands_checked += 1
        self.history.append(record)

    def on_refresh(self, now: int) -> None:
        """Validate and record an all-bank refresh starting at ``now``."""
        t = self.timing
        record: CommandRecord = (now, "refresh", -1, -1, -1)
        if now <= self.last_command_cycle:
            self._fail(
                "address-bus",
                f"refresh at {now} but address bus used at "
                f"{self.last_command_cycle}",
                now,
                record,
            )
        if now < self.refresh_ready:
            self._fail(
                "t_rfc",
                "refresh started while a previous refresh was in progress",
                now,
                record,
            )
        for rank_index, rank in enumerate(self.ranks):
            for bank_index, bank in enumerate(rank.banks):
                if bank.open_row is not None:
                    self._fail(
                        "refresh-open-row",
                        f"refresh with rank {rank_index} bank {bank_index} "
                        f"row {bank.open_row} open",
                        now,
                        record,
                    )
                if now < bank.last_precharge + t.t_rp:
                    self._fail(
                        "t_rp",
                        f"refresh {now - bank.last_precharge} cycles after "
                        f"precharge to rank {rank_index} bank {bank_index} "
                        f"(t_rp={t.t_rp})",
                        now,
                        record,
                    )
        if self.last_refresh_start is not None:
            interval = now - self.last_refresh_start
            if interval > t.t_refi + self.refresh_slack:
                self._fail(
                    "t_refi",
                    f"refresh interval {interval} exceeds t_refi="
                    f"{t.t_refi} (+{self.refresh_slack} drain slack)",
                    now,
                    record,
                )
        self.last_refresh_start = now
        self.refresh_ready = now + t.t_rfc
        self.last_command_cycle = now
        self.refreshes_checked += 1
        self.history.append(record)

    # -- per-kind constraint groups ---------------------------------------

    def _check_activate(
        self, rk: _RankLedger, bk: _BankLedger, now: int, record: CommandRecord
    ) -> None:
        t = self.timing
        if bk.open_row is not None:
            self._fail(
                "bank-state",
                f"activate with row {bk.open_row} already open",
                now,
                record,
            )
        if now < bk.last_activate + t.t_rc:
            self._fail(
                "t_rc",
                f"activate {now - bk.last_activate} cycles after previous "
                f"activate to the same bank (t_rc={t.t_rc})",
                now,
                record,
            )
        if now < bk.last_precharge + t.t_rp:
            self._fail(
                "t_rp",
                f"activate {now - bk.last_precharge} cycles after precharge "
                f"(t_rp={t.t_rp})",
                now,
                record,
            )
        if now < rk.last_activate + t.t_rrd:
            self._fail(
                "t_rrd",
                f"activate {now - rk.last_activate} cycles after an "
                f"activate in the same rank (t_rrd={t.t_rrd})",
                now,
                record,
            )
        if (
            len(rk.activate_times) == 4
            and now < rk.activate_times[0] + t.t_faw
        ):
            self._fail(
                "t_faw",
                f"fifth activate {now - rk.activate_times[0]} cycles after "
                f"the fourth-previous one (t_faw={t.t_faw})",
                now,
                record,
            )

    def _check_precharge(
        self, bk: _BankLedger, now: int, record: CommandRecord
    ) -> None:
        t = self.timing
        if bk.open_row is None:
            self._fail("bank-state", "precharge with no row open", now, record)
        if now < bk.last_activate + t.t_ras:
            self._fail(
                "t_ras",
                f"precharge {now - bk.last_activate} cycles after activate "
                f"(t_ras={t.t_ras})",
                now,
                record,
            )
        if now < bk.last_read + t.t_rtp:
            self._fail(
                "t_rtp",
                f"precharge {now - bk.last_read} cycles after read "
                f"(t_rtp={t.t_rtp})",
                now,
                record,
            )
        if now < bk.write_data_end + t.t_wr:
            self._fail(
                "t_wr",
                f"precharge {now - bk.write_data_end} cycles after write "
                f"data ended (t_wr={t.t_wr})",
                now,
                record,
            )

    def _check_cas(
        self, bk: _BankLedger, now: int, record: CommandRecord
    ) -> None:
        t = self.timing
        _, kind, _, _, row = record
        if bk.open_row is None:
            self._fail("bank-state", f"{kind} with no row open", now, record)
        elif bk.open_row != row:
            self._fail(
                "bank-state",
                f"{kind} to row {row} but row {bk.open_row} is open",
                now,
                record,
            )
        if now < bk.last_activate + t.t_rcd:
            self._fail(
                "t_rcd",
                f"{kind} {now - bk.last_activate} cycles after activate "
                f"(t_rcd={t.t_rcd})",
                now,
                record,
            )
        if now < self.last_cas_cycle + t.t_ccd:
            self._fail(
                "t_ccd",
                f"{kind} {now - self.last_cas_cycle} cycles after previous "
                f"CAS (t_ccd={t.t_ccd})",
                now,
                record,
            )

    def _check_data_bus(
        self, burst_start: int, now: int, record: CommandRecord
    ) -> None:
        if burst_start < self.data_busy_until:
            self._fail(
                "data-bus",
                f"data burst starting at {burst_start} overlaps the bus, "
                f"busy until {self.data_busy_until}",
                now,
                record,
            )
