"""repro.check — independent runtime cross-checks of the simulator.

Three layers, all deliberately re-implemented rather than shared with
the code they check:

* :mod:`repro.check.protocol` — a DDR2 protocol sanitizer that
  validates every issued command against its own timing ledger.
* :mod:`repro.check.invariants` — a scheduler invariant checker for
  the fair-queuing properties (VFT monotonicity, virtual-clock
  monotonicity, bounded priority inversion, request conservation).
* ``tools/lint_determinism.py`` — a static determinism lint run in CI
  (not imported here; it is a standalone script).

Checks are opt-in: pass ``--check`` on the CLI or set ``REPRO_CHECK=1``
in the environment.  The environment variable is the propagation
mechanism — worker processes of the parallel experiment engine inherit
it, so checked runs stay checked across a process pool.  When enabled,
a :class:`RunChecker` attaches to each memory controller; when a check
fails the run dies immediately with a :class:`CheckError` subclass
carrying the offending event.

Checked and unchecked runs must be bit-identical: the checkers only
observe, never steer, and ``REPRO_CHECK`` is deliberately *not* part of
:class:`~repro.sim.config.SystemConfig` (so result-cache fingerprints
do not fork on it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .. import env
from .invariants import InvariantViolation, SchedulerInvariantChecker
from .protocol import CheckError, DramProtocolSanitizer, ProtocolViolation

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..controller.bank_scheduler import CandidateCommand
    from ..controller.controller import MemoryController
    from ..controller.request import MemoryRequest

__all__ = [
    "CheckError",
    "DramProtocolSanitizer",
    "InvariantViolation",
    "ProtocolViolation",
    "RunChecker",
    "SchedulerInvariantChecker",
    "checks_enabled",
]

#: Environment switch for the runtime checkers.
CHECK_ENV_VAR = "REPRO_CHECK"


def checks_enabled() -> bool:
    """True when runtime checking is requested via the environment.

    Any value other than the empty string, ``"0"``, or ``"false"``
    (case-insensitive) enables checking.
    """
    return env.flag(CHECK_ENV_VAR)


class RunChecker:
    """Protocol sanitizer + invariant checker for one memory controller.

    The controller calls the four observation hooks from its own event
    sites; each hook fans out to both layers.  All hooks raise a
    :class:`CheckError` subclass on the first violation.
    """

    def __init__(self, controller: "MemoryController"):
        dram = controller.dram
        self.protocol = DramProtocolSanitizer(
            dram.timing,
            num_ranks=dram.num_ranks,
            num_banks=dram.num_banks,
        )
        self.invariants = SchedulerInvariantChecker(controller)

    def on_accept(self, request: "MemoryRequest", now: int) -> None:
        self.invariants.on_accept(request, now)

    def on_command(self, cand: "CandidateCommand", now: int) -> None:
        self.protocol.on_command(cand.kind, cand.rank, cand.bank, cand.row, now)
        self.invariants.on_command(cand, now)

    def on_refresh(self, now: int) -> None:
        self.protocol.on_refresh(now)
        self.invariants.on_refresh(now)

    def on_complete(self, request: "MemoryRequest", now: int) -> None:
        self.invariants.on_complete(request, now)

    def finalize(self, now: int) -> None:
        """End-of-run invariants (request conservation balance)."""
        self.invariants.finalize(now)

    def summary(self) -> Dict[str, int]:
        """Counters proving the checkers actually saw traffic."""
        return {
            "commands_checked": self.protocol.commands_checked,
            "refreshes_checked": self.protocol.refreshes_checked,
            "requests_accepted": self.invariants.accepted,
            "requests_retired": self.invariants.retired,
            "requests_completed": self.invariants.completed,
        }
