"""Differential checking harness: run policies with and without checks.

Drives a fresh (uncached) simulation of a shared workload under each
scheduling policy twice — once plain, once with the runtime checkers
attached — and verifies both that no checker fired and that the two
runs produced **bit-identical** results.  The second property is what
makes ``--check`` safe to leave on: the checkers observe, they must
never steer.

The same harness also cross-checks the two simulation engines: the
event-driven engine (skip-to-next-event) must produce bit-identical
results to the per-cycle oracle for every policy, on both the
two-processor and four-processor canonical workloads.

Used by the ``check`` CLI subcommand and the differential test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

from ..policy import HEADLINE_POLICIES
from ..sim.config import SystemConfig
from ..sim.system import CmpSystem, SimResult, comparable_result
from ..workloads.spec2000 import profile

#: The policies every differential check covers: the paper's three
#: headline schedulers (§5 evaluation) plus the post-paper policies
#: (BLISS, MISE) — all must satisfy the protocol sanitizer and engine
#: bit-identity.
DEFAULT_POLICIES: Tuple[str, ...] = HEADLINE_POLICIES

#: The paper's canonical mixed pair: latency-sensitive vpr against the
#: bandwidth-hungry art stream (Figures 1 and 5–7).
DEFAULT_WORKLOAD: Tuple[str, ...] = ("vpr", "art")

#: Four-processor mix covering the interesting behaviours: a stream
#: (art), an irregular latency-sensitive thread (vpr), a mixed pointer
#: chaser (parser), and a cache-resident thread (crafty).
QUAD_WORKLOAD: Tuple[str, ...] = ("art", "vpr", "parser", "crafty")


def run_checked_pair(
    policy: str,
    cycles: int,
    seed: int = 0,
    workload: Sequence[str] = DEFAULT_WORKLOAD,
    warmup: int = 0,
    engine: str | None = None,
) -> Tuple[SimResult, SimResult, Dict[str, int]]:
    """Run ``workload`` under ``policy`` unchecked then checked.

    Returns ``(plain, checked, counters)`` where ``counters`` is the
    checked system's :meth:`~repro.sim.system.CmpSystem.check_summary`.
    Both runs build fresh systems from the same config, so any
    divergence is the checkers' fault, not residual state.  ``engine``
    pins the simulation engine; None defers to the environment default.
    """
    kwargs = {} if engine is None else {"engine": engine}
    config = SystemConfig(
        policy=policy, num_cores=len(workload), seed=seed, **kwargs
    )
    profiles = [profile(name) for name in workload]
    plain = CmpSystem(config, profiles, check=False).run(cycles, warmup=warmup)
    checked_system = CmpSystem(config, profiles, check=True)
    checked = checked_system.run(cycles, warmup=warmup)
    return plain, checked, checked_system.check_summary()


def run_engine_pair(
    policy: str,
    cycles: int,
    seed: int = 0,
    workload: Sequence[str] = DEFAULT_WORKLOAD,
    warmup: int = 0,
    check: bool = True,
) -> Tuple[SimResult, SimResult]:
    """Run ``workload`` under both engines; return (cycle, event) results.

    Both systems are built from otherwise-identical configs, with the
    runtime checkers attached so the event engine is validated against
    the protocol sanitizer as well as against the oracle.
    """
    profiles = [profile(name) for name in workload]
    results = []
    for engine in ("cycle", "event"):
        config = SystemConfig(
            policy=policy, num_cores=len(workload), seed=seed, engine=engine
        )
        results.append(
            CmpSystem(config, profiles, check=check).run(cycles, warmup=warmup)
        )
    return results[0], results[1]


def _assert_identical(label: str, oracle: SimResult, subject: SimResult) -> None:
    a = dataclasses.asdict(comparable_result(oracle))
    b = dataclasses.asdict(comparable_result(subject))
    if a != b:
        raise AssertionError(
            f"{label}: results diverged (oracle={a!r}, subject={b!r})"
        )


def differential_report(
    cycles: int,
    seed: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload: Sequence[str] = DEFAULT_WORKLOAD,
) -> str:
    """Run the differential checks for every policy; return a report.

    Two independent comparisons per policy: checked vs unchecked (the
    checkers must observe, never steer) and event engine vs per-cycle
    oracle (skipping must not change a single bit) — the latter on both
    the pair workload and the four-processor mix.

    Raises the underlying :class:`~repro.check.CheckError` on any
    protocol or invariant violation, and :class:`AssertionError` on any
    divergence.
    """
    lines = [
        f"differential check: workload={'+'.join(workload)} "
        f"cycles={cycles} seed={seed}"
    ]
    for policy in policies:
        plain, checked, counters = run_checked_pair(
            policy, cycles, seed=seed, workload=workload
        )
        if checked != plain:
            raise AssertionError(
                f"{policy}: checked run diverged from unchecked run — "
                f"the checkers must observe, never steer "
                f"(plain={plain!r}, checked={checked!r})"
            )
        detail = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        lines.append(f"  {policy:<10s} OK bit-identical; {detail}")
    for engine_workload in (workload, QUAD_WORKLOAD):
        tag = "+".join(engine_workload)
        for policy in policies:
            oracle, event = run_engine_pair(
                policy, cycles, seed=seed, workload=engine_workload
            )
            _assert_identical(f"{policy} on {tag}", oracle, event)
            ratio = event.extras.get("engine_skip_ratio", 0.0)
            lines.append(
                f"  {policy:<10s} OK engines bit-identical on {tag} "
                f"(skip ratio {ratio:.1%})"
            )
    lines.append("all policies clean: 0 violations, results identical")
    return "\n".join(lines)
