"""Differential checking harness: run policies with and without checks.

Drives a fresh (uncached) simulation of a shared workload under each
scheduling policy twice — once plain, once with the runtime checkers
attached — and verifies both that no checker fired and that the two
runs produced **bit-identical** results.  The second property is what
makes ``--check`` safe to leave on: the checkers observe, they must
never steer.

Used by the ``check`` CLI subcommand and the differential test suite.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..sim.config import SystemConfig
from ..sim.system import CmpSystem, SimResult
from ..workloads.spec2000 import profile

#: The paper's three headline policies (§5 evaluation).
DEFAULT_POLICIES: Tuple[str, ...] = ("FR-FCFS", "FR-VFTF", "FQ-VFTF")

#: The paper's canonical mixed pair: latency-sensitive vpr against the
#: bandwidth-hungry art stream (Figures 1 and 5–7).
DEFAULT_WORKLOAD: Tuple[str, ...] = ("vpr", "art")


def run_checked_pair(
    policy: str,
    cycles: int,
    seed: int = 0,
    workload: Sequence[str] = DEFAULT_WORKLOAD,
    warmup: int = 0,
) -> Tuple[SimResult, SimResult, Dict[str, int]]:
    """Run ``workload`` under ``policy`` unchecked then checked.

    Returns ``(plain, checked, counters)`` where ``counters`` is the
    checked system's :meth:`~repro.sim.system.CmpSystem.check_summary`.
    Both runs build fresh systems from the same config, so any
    divergence is the checkers' fault, not residual state.
    """
    config = SystemConfig(
        policy=policy, num_cores=len(workload), seed=seed
    )
    profiles = [profile(name) for name in workload]
    plain = CmpSystem(config, profiles, check=False).run(cycles, warmup=warmup)
    checked_system = CmpSystem(config, profiles, check=True)
    checked = checked_system.run(cycles, warmup=warmup)
    return plain, checked, checked_system.check_summary()


def differential_report(
    cycles: int,
    seed: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload: Sequence[str] = DEFAULT_WORKLOAD,
) -> str:
    """Run the differential check for every policy; return a report.

    Raises the underlying :class:`~repro.check.CheckError` on any
    protocol or invariant violation, and :class:`AssertionError` if a
    checked run diverges from its unchecked twin.
    """
    lines = [
        f"differential check: workload={'+'.join(workload)} "
        f"cycles={cycles} seed={seed}"
    ]
    for policy in policies:
        plain, checked, counters = run_checked_pair(
            policy, cycles, seed=seed, workload=workload
        )
        if checked != plain:
            raise AssertionError(
                f"{policy}: checked run diverged from unchecked run — "
                f"the checkers must observe, never steer "
                f"(plain={plain!r}, checked={checked!r})"
            )
        detail = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        lines.append(f"  {policy:<10s} OK bit-identical; {detail}")
    lines.append("all policies clean: 0 violations, results identical")
    return "\n".join(lines)
