"""The fair job scheduler: the paper's queuing discipline, dogfooded.

The simulated memory controller orders requests by per-thread virtual
finish times (:mod:`repro.core.vtms`); this module applies the same
start-time/finish-time fair queuing to the experiment service's own
job queue.  Each *tenant* (a submitting user or driver) holds a
configurable share φ; each job costs its simulated-cycle count; and
the scheduler dispatches the globally smallest virtual finish tag:

* ``start_tag = max(virtual_time, tenant.last_finish_tag)`` — a tenant
  idle past the virtual clock re-anchors to *now* instead of burning
  banked credit (the same idle-thread re-anchoring the paper's
  scheduler does), while a backlogged tenant queues behind its own
  last job.
* ``finish_tag = start_tag + cost / φ`` — a φ=4 tenant's tags advance
  a quarter as fast, so it drains four jobs per competitor job.
* Dispatch pops the minimum ``(finish_tag, seqno)`` — the integer
  sequence number is the deterministic tie-breaker (no float equality
  anywhere near the ordering, same discipline as the VTMS keys).

The module is deliberately wall-clock-free and async-free: virtual
time advances on job *costs*, so the dispatch sequence is a pure
function of (submission order, shares, costs) and the unit tests
verify weighted interleavings exactly, without sleeping.  Host-time
accounting (busy seconds, turnaround) is *recorded* here but measured
by the service through :mod:`repro.serve.clock`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..sim.parallel import RunSpec


class Job:
    """One schedulable run: a spec plus its fair-queuing tags.

    Lifecycle state mirrors the fleet dashboard vocabulary
    (:data:`repro.obs.fleet.RUN_STATES`): ``queued`` → ``running`` →
    ``done``/``cached``/``error``/``lost``, with ``retried`` as the
    transient crash-resubmission state.  ``attempts`` counts executions
    started; the retry budget in :class:`~repro.sim.retry.RetryPolicy`
    bounds it.
    """

    __slots__ = (
        "job_id", "tenant", "spec", "cost", "start_tag", "finish_tag",
        "attempts", "state", "submitted_s", "started_s", "finished_s",
        "busy_s", "error",
    )

    def __init__(
        self, job_id: int, tenant: str, spec: RunSpec, cost: float
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.spec = spec
        self.cost = float(cost)
        self.start_tag = 0.0
        self.finish_tag = 0.0
        self.attempts = 0
        self.state = "queued"
        #: Host-time stamps (service-measured, via serve.clock); used
        #: only for metrics, never for scheduling or results.
        self.submitted_s = 0.0
        self.started_s = 0.0
        self.finished_s = 0.0
        self.busy_s = 0.0
        self.error: Optional[str] = None


class TenantAccount:
    """Per-tenant share and service accounting."""

    __slots__ = (
        "name", "weight", "last_finish_tag", "submitted", "finished",
        "busy_s", "turnaround_s", "queued",
    )

    def __init__(self, name: str, weight: float = 1.0):
        if weight <= 0:
            raise ValueError(f"tenant share must be positive, got {weight}")
        self.name = name
        self.weight = float(weight)
        self.last_finish_tag = 0.0
        self.submitted = 0
        self.finished = 0
        self.busy_s = 0.0
        self.turnaround_s = 0.0
        self.queued = 0

    @property
    def slowdown(self) -> float:
        """MISE-style tenant slowdown: turnaround over pure service time.

        1.0 means the tenant's jobs never waited behind anyone; k means
        its jobs spent k× their own execution time in the system.
        """
        if self.busy_s <= 0.0:
            return 1.0
        return max(1.0, self.turnaround_s / self.busy_s)


class FairJobQueue:
    """SFQ over jobs: submit with tags, pop the minimum finish tag."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Job]] = []
        self._virtual = 0.0
        self._seq = 0
        self.tenants: Dict[str, TenantAccount] = {}

    # -- tenants -----------------------------------------------------------

    def tenant(self, name: str, weight: Optional[float] = None) -> TenantAccount:
        """The account for ``name``, created (or re-weighted) on demand."""
        account = self.tenants.get(name)
        if account is None:
            account = TenantAccount(name, weight if weight is not None else 1.0)
            self.tenants[name] = account
        elif weight is not None:
            if weight <= 0:
                raise ValueError(f"tenant share must be positive, got {weight}")
            account.weight = float(weight)
        return account

    # -- scheduling --------------------------------------------------------

    @property
    def virtual_time(self) -> float:
        return self._virtual

    def __len__(self) -> int:
        return len(self._heap)

    def submit(self, tenant: str, spec: RunSpec, cost: float) -> Job:
        """Tag and enqueue one job for ``tenant``."""
        account = self.tenant(tenant)
        self._seq += 1
        job = Job(self._seq, tenant, spec, cost)
        job.start_tag = max(self._virtual, account.last_finish_tag)
        job.finish_tag = job.start_tag + job.cost / account.weight
        account.last_finish_tag = job.finish_tag
        account.submitted += 1
        account.queued += 1
        heapq.heappush(self._heap, (job.finish_tag, job.job_id, job))
        return job

    def requeue(self, job: Job) -> None:
        """Put a crash-orphaned job back, keeping its original tags.

        The tenant already paid for this service interval when the job
        was first tagged; re-tagging at the current virtual time would
        double-charge a tenant for a *service-side* fault.  Keeping the
        tags also sends the retried job to the front of its tenant's
        backlog, bounding the extra delay a crash inflicts.
        """
        self.tenant(job.tenant).queued += 1
        heapq.heappush(self._heap, (job.finish_tag, job.job_id, job))

    def pop(self) -> Optional[Job]:
        """Dispatch the job with the globally smallest finish tag."""
        if not self._heap:
            return None
        _, _, job = heapq.heappop(self._heap)
        # SFQ virtual clock: v(t) is the start tag of the job in
        # service — monotone, and what makes idle tenants re-anchor.
        self._virtual = max(self._virtual, job.start_tag)
        self.tenant(job.tenant).queued -= 1
        return job

    # -- accounting --------------------------------------------------------

    def charge(self, job: Job, busy_s: float, turnaround_s: float) -> None:
        """Credit one finished job's measured host-time usage."""
        account = self.tenant(job.tenant)
        account.finished += 1
        account.busy_s += busy_s
        account.turnaround_s += turnaround_s

    def fairness(self) -> Dict[str, float]:
        """Headline fairness metrics over tenants that ran anything.

        ``unfairness`` is the paper's metric shape — max over min
        tenant slowdown (1.0 = perfectly fair); ``max_slowdown`` is
        the MISE-style headline.  Share-normalized busy-second ratios
        let the dogfood test check worker-time shares against φ.
        """
        active = [t for t in self.tenants.values() if t.busy_s > 0.0]
        if not active:
            return {"max_slowdown": 1.0, "unfairness": 1.0}
        slowdowns = [t.slowdown for t in active]
        metrics = {
            "max_slowdown": max(slowdowns),
            "unfairness": max(slowdowns) / min(slowdowns),
        }
        total_busy = sum(t.busy_s for t in active)
        total_weight = sum(t.weight for t in active)
        for account in active:
            fair_share = account.weight / total_weight
            observed = account.busy_s / total_busy
            metrics[f"tenant.{account.name}.busy_share"] = observed
            metrics[f"tenant.{account.name}.fair_share"] = fair_share
            metrics[f"tenant.{account.name}.slowdown"] = account.slowdown
        return metrics
