"""The submit/status/results wire protocol: JSON lines over a socket.

One request per connection-line, one JSON response per request — the
simplest protocol that lets ``repro-fqms submit|status|results`` talk
to a running service from another process.  The server prefers a unix
domain socket under the service root (no ports, no firewalls); hosts
without unix sockets fall back to loopback TCP on an ephemeral port.
Either way the bound address is written to ``<root>/serve.addr``, so
clients need only the root directory to find the service.

Ops (the ``op`` field of the request object):

* ``ping`` — liveness probe.
* ``submit`` — ``{"tenant", "share", "sweep": <SweepSpec payload>}``;
  responds with the service's ticket (queued/cached split + job ids).
* ``status`` — the full service snapshot, fleet dashboard included.
* ``results`` — store query; filters ride the request verbatim.
* ``shutdown`` — graceful drain-and-exit of the serve loop.

Every response carries ``"ok"``; failures carry ``"error"`` instead of
tearing the connection down, so a malformed submission is a readable
message, not a hung client.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .service import ExperimentService
from .spec import SweepSpec
from .store import ResultStore

#: Address-file and unix-socket names under the service root.
ADDRESS_FILE = "serve.addr"
SOCKET_FILE = "serve.sock"

#: Client-side connect/response timeout.
CLIENT_TIMEOUT_S = 30.0


def results_rows(
    store: ResultStore,
    policy: Optional[str] = None,
    workload: Optional[List[str]] = None,
    seed: Optional[int] = None,
    tenant: Optional[str] = None,
    source: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Store query as JSON rows, fingerprint-sorted (deterministic).

    The one query surface shared by the online ``results`` op and the
    offline CLI, so both render byte-identical output for the same
    store state.
    """
    rows = []
    for entry in store.query(
        policy=policy, workload=workload, seed=seed,
        tenant=tenant, source=source,
    ):
        metrics = store.metrics(entry)
        ipcs = []
        i = 0
        while f"thread.{i}.ipc" in metrics:
            ipcs.append(metrics[f"thread.{i}.ipc"])
            i += 1
        rows.append(
            {
                "fingerprint": entry.fingerprint,
                "policy": entry.policy,
                "workload": list(entry.workload),
                "seed": entry.seed,
                "shares": list(entry.shares) if entry.shares is not None else None,
                "source": entry.source,
                "tenant": entry.tenant,
                "attempts": entry.attempts,
                "cycles": metrics.get("result.cycles"),
                "ipc": ipcs,
            }
        )
    return rows


class ProtocolServer:
    """Asyncio server binding a service to a unix/TCP JSON-line socket."""

    def __init__(self, service: ExperimentService, root: Union[str, Path]):
        self.service = service
        self.root = Path(root).expanduser()
        self.address: Optional[str] = None
        self.shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> str:
        """Bind, write the address file, and begin serving; returns the address."""
        self.root.mkdir(parents=True, exist_ok=True)
        sock_path = self.root / SOCKET_FILE
        try:
            if sock_path.exists():
                sock_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(sock_path)
            )
            self.address = f"unix:{sock_path}"
        except (AttributeError, NotImplementedError, OSError):
            self._server = await asyncio.start_server(
                self._handle, host="127.0.0.1", port=0
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp:{bound[0]}:{bound[1]}"
        (self.root / ADDRESS_FILE).write_text(self.address + "\n")
        return self.address

    async def stop(self) -> None:
        server = self._server
        if server is not None:
            server.close()
            await server.wait_closed()
            self._server = None
        try:
            (self.root / ADDRESS_FILE).unlink()
        except OSError:
            pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch(line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.shutdown_requested.set()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
        except ValueError:
            return {"ok": False, "error": "request is not valid JSON"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping", "pong": True}
            if op == "submit":
                sweep = SweepSpec.from_payload(request.get("sweep") or {})
                tenant = str(request.get("tenant") or "anonymous")
                share = float(request.get("share", 1.0))
                ticket = self.service.submit_sweep(tenant, sweep, share=share)
                return {"ok": True, "op": "submit", "ticket": ticket}
            if op == "status":
                return {"ok": True, "op": "status", "status": self.service.status()}
            if op == "results":
                rows = results_rows(
                    self.service.store,
                    policy=request.get("policy"),
                    workload=request.get("workload"),
                    seed=request.get("seed"),
                    tenant=request.get("tenant"),
                    source=request.get("source"),
                )
                return {"ok": True, "op": "results", "rows": rows}
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}
        except (ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        return {"ok": False, "error": f"unknown op {op!r}"}


# -- the synchronous client (CLI side) -------------------------------------


def read_address(root: Union[str, Path]) -> str:
    """The bound address of the service rooted at ``root``.

    Raises ``FileNotFoundError`` when no service has written its
    address file — the CLI turns that into a friendly message.
    """
    path = Path(root).expanduser() / ADDRESS_FILE
    return path.read_text().strip()


def request(
    root: Union[str, Path],
    payload: Dict[str, Any],
    timeout_s: float = CLIENT_TIMEOUT_S,
) -> Dict[str, Any]:
    """Send one request to the service at ``root``; returns the response."""
    address = read_address(root)
    if address.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target: Any = address[len("unix:"):]
    elif address.startswith("tcp:"):
        _, host, port = address.split(":", 2)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (host, int(port))
    else:
        raise ValueError(f"unrecognized service address {address!r}")
    sock.settimeout(timeout_s)
    try:
        sock.connect(target)
        sock.sendall(json.dumps(payload, sort_keys=True).encode() + b"\n")
        with sock.makefile("r") as handle:
            line = handle.readline()
    finally:
        sock.close()
    if not line:
        raise ConnectionError("service closed the connection without replying")
    return json.loads(line)
