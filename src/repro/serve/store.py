"""The queryable result store: durable manifests plus an index.

``run_many`` and the figure drivers historically left results in two
places results go to be forgotten: an in-process memo and a
content-addressed disk cache keyed by opaque fingerprints.  The store
is the third, *queryable* layer: an append-only directory of
``repro.obs/1`` run manifests (one per distinct run, fingerprint-named,
each embedding the declarative spec and the full cache-canonical
result payload) plus a line-oriented index for cheap filtering.

Layout under ``root``::

    runs/run-<fp16>.json   # schema-validated manifests (atomic writes)
    index.jsonl            # one JSON line per recorded run

The index is a pure acceleration structure: :meth:`ResultStore.rebuild`
regenerates it from the manifests alone, and a corrupted or truncated
line (or manifest) is tolerated — skipped, counted, and reported via
:attr:`ResultStore.problems` — never fatal.  Records are idempotent by
fingerprint, so resubmitting a sweep converges instead of accumulating.

The store plugs into ``run_many(store=...)`` through the two-method
duck type it defined: :meth:`get_result` (cache layer 3) and
:meth:`record` (write-back).  The fairness tournament and the figure
drivers pass a store through, so every evaluation run lands in one
queryable place.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.manifest import ManifestError, emit_run_manifest, load_manifest
from ..sim.cache import result_from_json
from ..sim.parallel import RunSpec
from ..sim.system import SimResult
from .spec import spec_payload

#: Subdirectory holding the per-run manifests.
RUNS_DIR = "runs"

#: The index file name under the store root.
INDEX_NAME = "index.jsonl"


@dataclass(frozen=True)
class StoreEntry:
    """One indexed run: the filterable fields plus the manifest path."""

    fingerprint: str
    file: str
    policy: str
    workload: Tuple[str, ...]
    cycles: int
    warmup: int
    seed: int
    shares: Optional[Tuple[float, ...]]
    source: str
    tenant: Optional[str]
    attempts: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "file": self.file,
            "policy": self.policy,
            "workload": list(self.workload),
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seed": self.seed,
            "shares": list(self.shares) if self.shares is not None else None,
            "source": self.source,
            "tenant": self.tenant,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "StoreEntry":
        shares = payload.get("shares")
        return cls(
            fingerprint=str(payload["fingerprint"]),
            file=str(payload["file"]),
            policy=str(payload["policy"]),
            workload=tuple(str(n) for n in payload["workload"]),
            cycles=int(payload["cycles"]),
            warmup=int(payload["warmup"]),
            seed=int(payload["seed"]),
            shares=tuple(float(s) for s in shares) if shares is not None else None,
            source=str(payload.get("source", "fresh")),
            tenant=payload.get("tenant"),
            attempts=int(payload.get("attempts", 0)),
        )


class ResultStore:
    """Append-only manifest store with an index and filter/aggregate queries."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root).expanduser()
        self.runs_dir = self.root / RUNS_DIR
        self.index_path = self.root / INDEX_NAME
        self._entries: Dict[str, StoreEntry] = {}
        #: Human-readable notes about tolerated damage (corrupt index
        #: lines, unreadable manifests); surfaced by status/results.
        self.problems: List[str] = []
        self._load_index()

    def __len__(self) -> int:
        return len(self._entries)

    # -- loading -----------------------------------------------------------

    def _load_index(self) -> None:
        try:
            lines = self.index_path.read_text().splitlines()
        except OSError:
            return
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = StoreEntry.from_json(json.loads(line))
            except (ValueError, KeyError, TypeError):
                self.problems.append(
                    f"{self.index_path.name}:{number}: corrupt index line skipped"
                )
                continue
            self._entries[entry.fingerprint] = entry

    def rebuild(self) -> int:
        """Regenerate the index from the manifests; returns the run count.

        The recovery path for a lost or damaged index: every readable
        manifest under ``runs/`` becomes an entry, unreadable ones are
        reported in :attr:`problems`, and the index file is rewritten
        atomically.
        """
        self._entries = {}
        self.problems = []
        if self.runs_dir.is_dir():
            for path in sorted(self.runs_dir.glob("run-*.json")):
                try:
                    manifest = load_manifest(path)
                    entry = self._entry_from_manifest(path.name, manifest)
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    self.problems.append(
                        f"{RUNS_DIR}/{path.name}: unreadable manifest "
                        f"skipped ({type(exc).__name__})"
                    )
                    continue
                self._entries[entry.fingerprint] = entry
        self._rewrite_index()
        return len(self._entries)

    def _entry_from_manifest(
        self, file_name: str, manifest: Dict[str, Any]
    ) -> StoreEntry:
        window = manifest["window"]
        spec_block = manifest.get("spec") or {}
        shares = spec_block.get("shares")
        labels = manifest.get("labels", {})
        attempts = manifest.get("metrics", {}).get("run.attempts", 0)
        return StoreEntry(
            fingerprint=manifest["fingerprint"],
            file=file_name,
            policy=manifest["policy"],
            workload=tuple(manifest["workload"]),
            cycles=int(window["cycles"]),
            warmup=int(window["warmup"]),
            seed=int(window["seed"]),
            shares=tuple(float(s) for s in shares) if shares is not None else None,
            source=str(labels.get("run.source", "fresh")),
            tenant=labels.get("run.tenant"),
            attempts=int(attempts),
        )

    def _rewrite_index(self) -> None:
        blob = "".join(
            json.dumps(self._entries[fp].to_json(), sort_keys=True) + "\n"
            for fp in sorted(self._entries)
        )
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        tmp.write_text(blob)
        os.replace(tmp, self.index_path)

    # -- the run_many duck type -------------------------------------------

    def get_result(self, spec: RunSpec) -> Optional[SimResult]:
        """The stored result for ``spec``, or None (damage counts as miss)."""
        entry = self._entries.get(spec.fingerprint())
        if entry is None:
            return None
        path = self.runs_dir / entry.file
        try:
            manifest = load_manifest(path)
            payload = manifest["result"]["payload"]
            return result_from_json(payload)
        except (OSError, ManifestError, ValueError, KeyError, TypeError) as exc:
            self.problems.append(
                f"{RUNS_DIR}/{entry.file}: result unreadable "
                f"({type(exc).__name__}); treated as a miss"
            )
            return None

    def record(
        self,
        spec: RunSpec,
        result: SimResult,
        source: str = "fresh",
        tenant: Optional[str] = None,
        attempts: int = 0,
    ) -> Optional[StoreEntry]:
        """Persist one run (idempotent by fingerprint); returns its entry.

        Best-effort on I/O failure (an unwritable store degrades to "no
        store", never kills a sweep); a manifest that fails validation
        is a programming error and raises.
        """
        fingerprint = spec.fingerprint()
        existing = self._entries.get(fingerprint)
        if existing is not None:
            return existing
        try:
            path = emit_run_manifest(
                self.runs_dir,
                fingerprint=fingerprint,
                policy=spec.policy,
                workload=spec.names,
                cycles=spec.cycles,
                warmup=spec.warmup,
                seed=spec.seed,
                result=result,
                source=source,
                attempts=attempts,
                tenant=tenant,
                spec_payload=spec_payload(spec),
                embed_result=True,
            )
        except OSError as exc:
            self.problems.append(
                f"store write failed for {fingerprint[:16]} "
                f"({type(exc).__name__}); run not recorded"
            )
            return None
        entry = StoreEntry(
            fingerprint=fingerprint,
            file=path.name,
            policy=spec.policy,
            workload=spec.names,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            shares=spec.shares,
            source=source,
            tenant=tenant,
            attempts=attempts,
        )
        self._entries[fingerprint] = entry
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.index_path, "a") as handle:
                handle.write(json.dumps(entry.to_json(), sort_keys=True) + "\n")
        except OSError:
            self.problems.append(
                f"index append failed for {fingerprint[:16]}; "
                "run rebuild() to restore the index"
            )
        return entry

    # -- queries -----------------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """Every indexed run, fingerprint-sorted (the deterministic order)."""
        return [self._entries[fp] for fp in sorted(self._entries)]

    def query(
        self,
        policy: Optional[str] = None,
        workload: Optional[Sequence[str]] = None,
        shares: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
        source: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[StoreEntry]:
        """Indexed runs matching every given filter, fingerprint-sorted."""
        want_workload = tuple(workload) if workload is not None else None
        want_shares = (
            tuple(float(s) for s in shares) if shares is not None else None
        )
        out = []
        for entry in self.entries():
            if policy is not None and entry.policy != policy:
                continue
            if want_workload is not None and entry.workload != want_workload:
                continue
            if want_shares is not None and entry.shares != want_shares:
                continue
            if seed is not None and entry.seed != seed:
                continue
            if source is not None and entry.source != source:
                continue
            if tenant is not None and entry.tenant != tenant:
                continue
            out.append(entry)
        return out

    def metrics(self, entry: StoreEntry) -> Dict[str, float]:
        """The flat metric table of one entry's manifest ({} on damage)."""
        try:
            manifest = load_manifest(self.runs_dir / entry.file)
            return dict(manifest.get("metrics", {}))
        except (OSError, ManifestError, ValueError) as exc:
            self.problems.append(
                f"{RUNS_DIR}/{entry.file}: metrics unreadable "
                f"({type(exc).__name__})"
            )
            return {}

    def aggregate(
        self,
        metric: str,
        by: str = "policy",
        **filters: Any,
    ) -> Dict[str, float]:
        """Mean of ``metric`` over matching runs, grouped by a field.

        ``by`` names a :class:`StoreEntry` field (``policy``,
        ``workload``, ``seed``, ``tenant``, ``source``); runs whose
        manifests lack the metric are skipped.  Group keys are strings
        (workload mixes render as ``a+b``) and the result is key-sorted.
        """
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for entry in self.query(**filters):
            value = self.metrics(entry).get(metric)
            if value is None:
                continue
            field = getattr(entry, by)
            key = "+".join(field) if isinstance(field, tuple) else str(field)
            sums[key] = sums.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
        return {key: sums[key] / counts[key] for key in sorted(sums)}
