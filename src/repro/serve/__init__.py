"""``repro.serve``: the fair-queued asynchronous experiment service.

The evaluation's figure drivers run sweeps synchronously: expand specs,
``run_many``, read results.  That shape breaks down at thousands of
runs shared between several users (or several figure drivers): batches
queue head-of-line behind each other, a crashed worker takes its batch
down, and results evaporate into whichever process ran them.  This
package is the long-running answer — and it *dogfoods the paper*: the
job scheduler is the same start-time/finish-time fair queuing the
simulated memory controller uses, applied to the service's own job
queue, with per-tenant φ shares and virtual-finish-time accounting.

Layout (one concern per module, mirroring ``repro.obs``):

* :mod:`repro.serve.clock` — the single wall-clock module under
  ``serve/`` (DET009 confines ``time`` imports here, the way DET008
  confines them to ``repro/obs/phases.py``).
* :mod:`repro.serve.spec` — declarative sweep specs: policy × workload
  × φ × window × seed grids, expanded to deduplicated
  :class:`~repro.sim.parallel.RunSpec` lists.
* :mod:`repro.serve.queue` — the fair job scheduler: per-tenant
  virtual start/finish tags, weighted by configurable shares.
* :mod:`repro.serve.store` — the queryable result store: append-only
  directory of ``repro.obs/1`` run manifests plus an index, with
  filter/aggregate queries; pluggable into ``run_many(store=...)``.
* :mod:`repro.serve.service` — the asyncio orchestrator: worker
  subprocess pool, per-job timeouts, crash detection with bounded
  retry/backoff, graceful drain, fleet dashboard state, per-tenant
  slowdown/unfairness metrics.
* :mod:`repro.serve.protocol` — the JSON-lines submit/status/results
  protocol over a unix (or loopback TCP) socket.
* :mod:`repro.serve.cli` — ``repro-fqms serve|submit|status|results``.

Determinism contract: simulation *results* never depend on the
service — a job is executed by the same :func:`repro.sim.parallel.
execute_spec` a synchronous sweep would use, and retry counts, tenant
names, and scheduling order never enter cache fingerprints.  The wall
clock exists here only to time out and pace *jobs*, not simulations.
"""

from __future__ import annotations

from .queue import FairJobQueue, Job
from .spec import SweepSpec, spec_from_payload, spec_payload
from .store import ResultStore, StoreEntry

__all__ = [
    "FairJobQueue",
    "Job",
    "ResultStore",
    "StoreEntry",
    "SweepSpec",
    "spec_from_payload",
    "spec_payload",
]
