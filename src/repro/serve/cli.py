"""``repro-fqms serve|submit|status|results``: the service front-end.

``serve`` runs the orchestrator in the foreground (address printed and
written to ``<root>/serve.addr``); ``submit``/``status`` talk to it
over the JSON-line protocol; ``results`` reads the result store
*directly*, so queries work with no service running — the store is the
durable artifact, the service only fills it.

The service root defaults to ``REPRO_SERVE`` (else ``.repro-serve``),
so a shell exporting the knob can drop ``--root`` everywhere.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .. import env
from ..stats.report import render_table
from . import clock
from .protocol import ProtocolServer, request, results_rows
from .service import ExperimentService
from .spec import SweepSpec
from .store import ResultStore

#: Environment knob naming the default service root.
ROOT_ENV_VAR = "REPRO_SERVE"

DEFAULT_ROOT = ".repro-serve"


def default_root() -> str:
    value = env.text(ROOT_ENV_VAR, "").strip()
    return value if value else DEFAULT_ROOT


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default=None,
        help=f"service root directory (default REPRO_SERVE or {DEFAULT_ROOT})",
    )


def _parse_share_vector(value: str) -> Optional[List[float]]:
    if value.strip().lower() in ("", "none", "equal"):
        return None
    return [float(x) for x in value.split(",") if x.strip()]


def _sweep_from_args(args: argparse.Namespace) -> Dict[str, Any]:
    workloads = [
        [n.strip() for n in mix.split(",") if n.strip()]
        for mix in (args.workload or ["vpr,art"])
    ]
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    share_vectors = (
        [_parse_share_vector(v) for v in args.shares]
        if args.shares
        else [None]
    )
    warmup = args.cycles // 4 if args.warmup is None else args.warmup
    return SweepSpec(
        workloads=tuple(tuple(mix) for mix in workloads),
        policies=tuple(policies),
        cycles=args.cycles,
        warmup=warmup,
        seeds=tuple(seeds),
        share_vectors=tuple(
            tuple(v) if v is not None else None for v in share_vectors
        ),
    ).to_payload()


# -- serve ------------------------------------------------------------------


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms serve",
        description="Run the fair-queued experiment service in the foreground.",
    )
    _add_root(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="concurrent worker processes (default REPRO_SERVE_WORKERS or 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock timeout in seconds "
        "(default REPRO_SERVE_TIMEOUT or 600)",
    )
    return parser


async def _serve_until_shutdown(
    root: str, workers: Optional[int], timeout_s: Optional[float]
) -> int:
    service = ExperimentService(root, workers=workers, timeout_s=timeout_s)
    server = ProtocolServer(service, root)
    await service.start()
    address = await server.start()
    print(f"serve: listening on {address} (root {root})")
    sys.stdout.flush()
    try:
        await server.shutdown_requested.wait()
        print("serve: shutdown requested; draining")
        await service.drain()
    finally:
        await server.stop()
        await service.stop(drain=False)
    counts = service.counts
    print(
        f"serve: drained ({counts['done']} done, {counts['cached']} cached, "
        f"{counts['retried']} retried, {counts['lost']} lost, "
        f"{counts['error']} error)"
    )
    return 0


def _cmd_serve(argv: Sequence[str]) -> int:
    args = _serve_parser().parse_args(list(argv))
    root = args.root if args.root is not None else default_root()
    try:
        return asyncio.run(
            _serve_until_shutdown(root, args.workers, args.timeout)
        )
    except KeyboardInterrupt:
        print("serve: interrupted")
        return 130


# -- submit -----------------------------------------------------------------


def _submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms submit",
        description="Submit a sweep grid to a running experiment service.",
    )
    _add_root(parser)
    parser.add_argument(
        "--tenant", default="anonymous", help="submitting tenant name"
    )
    parser.add_argument(
        "--share", type=float, default=1.0,
        help="this tenant's fair-queuing share φ (default 1.0)",
    )
    parser.add_argument(
        "--workload", action="append", default=None, metavar="A,B,...",
        help="comma-separated benchmark mix; repeat for several mixes "
        "(default vpr,art)",
    )
    parser.add_argument(
        "--policies", default="FR-FCFS,FQ-VFTF",
        help="comma-separated policies (default %(default)s)",
    )
    parser.add_argument(
        "--cycles", type=int, default=20000,
        help="measurement window per run (default %(default)s)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup cycles (default cycles//4)",
    )
    parser.add_argument(
        "--seeds", default="0", help="comma-separated seed list (default 0)",
    )
    parser.add_argument(
        "--shares", action="append", default=None, metavar="P1,P2,...",
        help="per-thread φ vector to sweep; repeat for a φ grid; "
        "'none' = equal shares (the default)",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="poll the service until every submitted job is terminal",
    )
    return parser


def _cmd_submit(argv: Sequence[str]) -> int:
    args = _submit_parser().parse_args(list(argv))
    root = args.root if args.root is not None else default_root()
    try:
        sweep = _sweep_from_args(args)
    except ValueError as exc:
        print(f"submit: {exc}")
        return 2
    try:
        response = request(
            root,
            {
                "op": "submit",
                "tenant": args.tenant,
                "share": args.share,
                "sweep": sweep,
            },
        )
    except (OSError, ValueError) as exc:
        print(f"submit: cannot reach a service at {root!r}: {exc}")
        return 1
    if not response.get("ok"):
        print(f"submit: rejected: {response.get('error')}")
        return 1
    ticket = response["ticket"]
    print(
        f"submit: {ticket['runs']} runs for tenant {ticket['tenant']} "
        f"(φ={ticket['share']:g}): {ticket['queued']} queued, "
        f"{ticket['cached']} cache-served"
    )
    if args.wait:
        return _wait_for_drain(root)
    return 0


def _wait_for_drain(root: str) -> int:
    while True:
        try:
            response = request(root, {"op": "status"})
        except (OSError, ValueError) as exc:
            print(f"submit: lost the service while waiting: {exc}")
            return 1
        status = response.get("status", {})
        if status.get("outstanding", 0) <= 0:
            counts = status.get("counts", {})
            print(
                f"submit: drained ({counts.get('done', 0)} done, "
                f"{counts.get('cached', 0)} cached, "
                f"{counts.get('lost', 0)} lost)"
            )
            return 1 if counts.get("lost", 0) else 0
        clock.sleep(0.2)


# -- status -----------------------------------------------------------------


def _status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms status",
        description="Snapshot of a running experiment service.",
    )
    _add_root(parser)
    parser.add_argument(
        "--json", action="store_true", help="print the raw status object"
    )
    return parser


def _cmd_status(argv: Sequence[str]) -> int:
    args = _status_parser().parse_args(list(argv))
    root = args.root if args.root is not None else default_root()
    try:
        response = request(root, {"op": "status"})
    except (OSError, ValueError) as exc:
        print(f"status: cannot reach a service at {root!r}: {exc}")
        return 1
    status = response.get("status", {})
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status.get("counts", {})
    print(
        f"status: {status.get('queued', 0)} queued, "
        f"{len(status.get('running', []))} running "
        f"(of {status.get('workers', 0)} workers), "
        f"{counts.get('done', 0)} done, {counts.get('cached', 0)} cached, "
        f"{counts.get('retried', 0)} retried, {counts.get('lost', 0)} lost"
    )
    pids = status.get("worker_pids", {})
    if pids:
        pairs = ", ".join(f"job {j}: pid {p}" for j, p in sorted(pids.items()))
        print(f"status: workers: {pairs}")
    tenants = status.get("tenants", {})
    if tenants:
        rows = [
            (
                name,
                f"{t['share']:g}",
                t["submitted"],
                t["finished"],
                f"{t['busy_s']:.2f}",
                f"{t['slowdown']:.2f}",
            )
            for name, t in sorted(tenants.items())
        ]
        print(
            render_table(
                ["tenant", "phi", "submitted", "finished", "busy_s", "slowdown"],
                rows,
            )
        )
    fairness = status.get("fairness", {})
    if fairness:
        print(
            f"status: max_slowdown {fairness.get('max_slowdown', 1.0):.2f}, "
            f"unfairness {fairness.get('unfairness', 1.0):.2f}"
        )
    dashboard = status.get("dashboard")
    if dashboard:
        print(dashboard)
    problems = status.get("store_problems", [])
    for problem in problems:
        print(f"status: store problem: {problem}")
    return 0


# -- results ----------------------------------------------------------------


def _results_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms results",
        description="Query the result store (works with no service running).",
    )
    _add_root(parser)
    parser.add_argument("--policy", default=None, help="filter: policy name")
    parser.add_argument(
        "--workload", default=None, metavar="A,B,...",
        help="filter: exact benchmark mix",
    )
    parser.add_argument("--seed", type=int, default=None, help="filter: seed")
    parser.add_argument("--tenant", default=None, help="filter: tenant")
    parser.add_argument(
        "--source", default=None, help="filter: run source (fresh/cache)"
    )
    parser.add_argument(
        "--aggregate", default=None, metavar="METRIC",
        help="print the mean of one manifest metric instead of rows "
        "(e.g. result.cycles, thread.0.ipc)",
    )
    parser.add_argument(
        "--by", default="policy",
        help="aggregation group field (policy, workload, seed, tenant, "
        "source; default %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print rows as JSON"
    )
    return parser


def _cmd_results(argv: Sequence[str]) -> int:
    args = _results_parser().parse_args(list(argv))
    root = args.root if args.root is not None else default_root()
    from pathlib import Path

    store = ResultStore(Path(root) / "store")
    workload = (
        [n.strip() for n in args.workload.split(",") if n.strip()]
        if args.workload
        else None
    )
    filters: Dict[str, Any] = {
        "policy": args.policy,
        "workload": workload,
        "seed": args.seed,
        "tenant": args.tenant,
        "source": args.source,
    }
    if args.aggregate:
        table = store.aggregate(
            args.aggregate,
            by=args.by,
            **{k: v for k, v in filters.items() if v is not None},
        )
        rows = [(key, f"{value:.6g}") for key, value in table.items()]
        print(render_table([args.by, f"mean {args.aggregate}"], rows))
    else:
        rows_json = results_rows(store, **filters)
        if args.json:
            print(json.dumps(rows_json, indent=2, sort_keys=True))
        else:
            rows = [
                (
                    row["fingerprint"][:16],
                    "+".join(row["workload"]),
                    row["policy"],
                    (
                        ",".join(f"{s:g}" for s in row["shares"])
                        if row["shares"]
                        else "equal"
                    ),
                    row["seed"],
                    row["source"],
                    row["attempts"],
                    ", ".join(f"{ipc:.3f}" for ipc in row["ipc"]),
                )
                for row in rows_json
            ]
            print(
                render_table(
                    [
                        "fingerprint", "mix", "policy", "phi", "seed",
                        "source", "retries", "ipc/thread",
                    ],
                    rows,
                )
            )
    for problem in store.problems:
        print(f"results: store problem: {problem}")
    return 0


# -- dispatch ---------------------------------------------------------------

_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "results": _cmd_results,
}


def main(argv: Sequence[str]) -> int:
    """Entry point: ``argv[0]`` selects the serve-family command."""
    if not argv or argv[0] not in _COMMANDS:
        names = ", ".join(sorted(_COMMANDS))
        print(f"serve: expected one of {names}")
        return 2
    return _COMMANDS[argv[0]](list(argv[1:]))
