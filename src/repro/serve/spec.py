"""Declarative sweep specs: grids of runs, expanded deterministically.

A :class:`SweepSpec` names a full experiment grid — workload mixes ×
policies × φ share vectors × seeds at one run window — without holding
any live simulator state, so it travels as JSON over the submit
protocol and expands to the same deduplicated
:class:`~repro.sim.parallel.RunSpec` list on any host.

Expansion order is part of the contract (workloads outermost, then
policies, then share vectors, then seeds): job ids, queue submission
order, and therefore the fair scheduler's dispatch sequence are all
derived from it, and the service's end-to-end tests pin byte-identical
results across resubmissions.

:func:`spec_payload` / :func:`spec_from_payload` are the JSON round
trip for a single ``RunSpec`` — the form the result store embeds in
every manifest so a stored run can be re-queried (or re-executed) from
the document alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.parallel import RunSpec, group_spec


@dataclass(frozen=True)
class SweepSpec:
    """One declarative experiment grid.

    ``workloads`` is a tuple of benchmark mixes (each a tuple of
    registered profile names); ``share_vectors`` is a tuple of φ
    vectors to sweep — ``None`` entries mean equal shares (the
    historical fingerprint).  Every non-``None`` share vector must
    match the arity of every workload mix, checked at construction so
    a bad grid fails at submit time, not deep inside a worker.
    """

    workloads: Tuple[Tuple[str, ...], ...]
    policies: Tuple[str, ...]
    cycles: int
    warmup: int
    seeds: Tuple[int, ...] = (0,)
    share_vectors: Tuple[Optional[Tuple[float, ...]], ...] = (None,)

    def __post_init__(self) -> None:
        if not self.workloads or not self.policies or not self.seeds:
            raise ValueError("sweep needs >=1 workload, policy, and seed")
        if self.cycles <= 0 or self.warmup < 0:
            raise ValueError(
                f"window must have cycles > 0 and warmup >= 0, got "
                f"cycles={self.cycles} warmup={self.warmup}"
            )
        if not self.share_vectors:
            raise ValueError("share_vectors must not be empty (use (None,))")
        for shares in self.share_vectors:
            if shares is None:
                continue
            for mix in self.workloads:
                if len(shares) != len(mix):
                    raise ValueError(
                        f"share vector {shares} has {len(shares)} entries "
                        f"but mix {'+'.join(mix)} has {len(mix)} threads"
                    )

    def expand(self) -> List[RunSpec]:
        """The grid as a deduplicated, deterministically ordered spec list."""
        specs: List[RunSpec] = []
        for mix in self.workloads:
            for policy in self.policies:
                for shares in self.share_vectors:
                    for seed in self.seeds:
                        specs.append(
                            group_spec(
                                mix,
                                policy,
                                self.cycles,
                                self.warmup,
                                seed,
                                shares=shares,
                            )
                        )
        return list(dict.fromkeys(specs))

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form (the submit protocol's ``sweep`` field)."""
        return {
            "workloads": [list(mix) for mix in self.workloads],
            "policies": list(self.policies),
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seeds": list(self.seeds),
            "share_vectors": [
                list(shares) if shares is not None else None
                for shares in self.share_vectors
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Parse a submit payload; raises ``ValueError`` on a bad grid."""
        try:
            workloads = tuple(
                tuple(str(name) for name in mix) for mix in payload["workloads"]
            )
            policies = tuple(str(p) for p in payload["policies"])
            cycles = int(payload["cycles"])
            warmup = int(payload["warmup"])
            seeds = tuple(int(s) for s in payload.get("seeds", [0]))
            raw_shares = payload.get("share_vectors", [None])
            share_vectors = tuple(
                tuple(float(x) for x in shares) if shares is not None else None
                for shares in raw_shares
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed sweep payload: {exc!r}") from exc
        return cls(
            workloads=workloads,
            policies=policies,
            cycles=cycles,
            warmup=warmup,
            seeds=seeds,
            share_vectors=share_vectors,
        )


def spec_payload(spec: RunSpec) -> Dict[str, Any]:
    """JSON-safe form of one ``RunSpec`` (embedded in store manifests)."""
    return {
        "kind": spec.kind,
        "names": list(spec.names),
        "policy": spec.policy,
        "scale": spec.scale,
        "cycles": spec.cycles,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "shares": list(spec.shares) if spec.shares is not None else None,
    }


def spec_from_payload(payload: Dict[str, Any]) -> RunSpec:
    """Rebuild the ``RunSpec`` stored by :func:`spec_payload`."""
    shares = payload.get("shares")
    return RunSpec(
        kind=str(payload["kind"]),
        names=tuple(str(n) for n in payload["names"]),
        policy=str(payload["policy"]),
        scale=float(payload["scale"]),
        cycles=int(payload["cycles"]),
        warmup=int(payload["warmup"]),
        seed=int(payload["seed"]),
        shares=tuple(float(s) for s in shares) if shares is not None else None,
    )


def job_cost(spec: RunSpec) -> float:
    """The scheduler's cost estimate for one run: simulated cycles.

    Deliberately the same unit the paper's memory scheduler charges
    (service time in its own clock): virtual finish tags advance by
    ``cost / φ``, so two tenants with equal shares interleave whole
    runs and a φ=4 tenant drains four runs per competitor run.
    """
    return float(spec.warmup + spec.cycles)
