"""The asyncio experiment orchestrator: fair dispatch over a worker pool.

:class:`ExperimentService` accepts sweep submissions from named
tenants, expands them to deduplicated :class:`~repro.sim.parallel.
RunSpec` jobs, and drains the :class:`~repro.serve.queue.FairJobQueue`
across a bounded pool of worker *subprocesses* — one process per job,
so a crash (OOM kill, segfault, chaos test) takes down exactly one job
and is detected by the parent as :class:`~repro.sim.retry.
WorkerCrashError`, classified and resubmitted with the same bounded
:class:`~repro.sim.retry.RetryPolicy` backoff ``run_many`` uses.

Caching is layered exactly like ``run_many``: memo → disk cache →
result store, checked at submit *and* again at dispatch (so duplicate
jobs queued concurrently — two tenants submitting overlapping grids —
collapse to one simulation and the rest serve as ``cached``).  Every
completed result lands in all three layers, which is what makes a
resubmitted sweep 100% cache-served.

Live progress reuses the PR 9 fleet machinery verbatim: workers
heartbeat simulated-cycle progress over a Manager queue into a
:class:`~repro.obs.fleet.FleetState`, whose render *is* the
``repro-fqms status`` dashboard.  Per-tenant busy-seconds, MISE-style
slowdowns, and the unfairness headline flow into a
:class:`~repro.obs.registry.MetricsRegistry` — the same metrics
surface the simulator's own observability uses.
"""

from __future__ import annotations

import asyncio
import traceback
from typing import Any, Dict, List, Optional

from .. import env
from ..obs import fleet
from ..obs.registry import MetricsRegistry
from ..sim import cache as result_cache
from ..sim import parallel
from ..sim.retry import RetryPolicy, WorkerCrashError
from ..sim.system import SimResult
from . import clock
from .queue import FairJobQueue, Job
from .spec import SweepSpec, job_cost
from .store import ResultStore

#: Environment knobs (declared in repro.env; README-documented).
WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"
TIMEOUT_ENV_VAR = "REPRO_SERVE_TIMEOUT"

DEFAULT_WORKERS = 2
DEFAULT_TIMEOUT_S = 600.0

#: How often the scheduler wakes to pump heartbeats / re-check slots.
_TICK_S = 0.02


def default_workers() -> int:
    return env.positive_int(WORKERS_ENV_VAR, DEFAULT_WORKERS)


def default_timeout_s() -> float:
    return env.positive_float(TIMEOUT_ENV_VAR, DEFAULT_TIMEOUT_S)


# -- the per-job worker subprocess ----------------------------------------


def _child_main(spec: parallel.RunSpec, conn: Any, queue: Any) -> None:
    """Worker entry: simulate one spec, send ('ok', result) | ('err', tb).

    A worker that dies (or is killed) before sending anything is the
    crash signature the parent classifies as retryable; a simulation
    exception travels back as a deterministic ``err`` and is *not*
    retried.
    """
    if queue is not None:
        fleet.init_worker(queue)
    try:
        result = parallel.execute_spec(spec)
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


class ProcessJobExecutor:
    """Runs each job in its own subprocess with a wall-clock timeout.

    One process per job (not a shared pool) is deliberate: a kill
    affects exactly one job, the pid is known for status displays and
    chaos tests, and a timeout can hard-kill the worker without
    poisoning siblings.  Environments that cannot fork degrade to
    in-thread execution (no timeout, no crash isolation — but sweeps
    still complete, matching ``run_many``'s inline fallback).
    """

    def __init__(self, timeout_s: Optional[float] = None, heartbeat_queue: Any = None):
        self.timeout_s = timeout_s
        self.heartbeat_queue = heartbeat_queue
        #: job_id -> live worker pid (chaos tests kill from here).
        self.pids: Dict[int, int] = {}

    async def run(self, job: Job) -> SimResult:
        try:
            return await asyncio.to_thread(self._run_subprocess, job)
        except (OSError, PermissionError, NotImplementedError):
            # No subprocesses in this sandbox: run inline.
            return await asyncio.to_thread(parallel.execute_spec, job.spec)

    def _run_subprocess(self, job: Job) -> SimResult:
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_main,
            args=(job.spec, child_conn, self.heartbeat_queue),
            daemon=True,
        )
        process.start()
        child_conn.close()
        if process.pid is not None:
            self.pids[job.job_id] = process.pid
        try:
            return self._await_worker(job, process, parent_conn)
        finally:
            self.pids.pop(job.job_id, None)
            parent_conn.close()
            if process.is_alive():
                process.kill()
            process.join()

    def _await_worker(self, job: Job, process: Any, conn: Any) -> SimResult:
        timeout_s = self.timeout_s
        deadline = clock.monotonic() + timeout_s if timeout_s else None
        while True:
            if conn.poll(0.05):
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashError(
                        f"worker for job {job.job_id} closed its pipe "
                        "without a result"
                    )
                if kind == "ok":
                    return payload
                raise RuntimeError(
                    f"job {job.job_id} ({parallel.run_label(job.spec)}) "
                    f"failed in its worker:\n{payload}"
                )
            if not process.is_alive():
                if conn.poll(0):
                    continue  # final message raced process exit
                raise WorkerCrashError(
                    f"worker for job {job.job_id} exited "
                    f"(code {process.exitcode}) without a result"
                )
            if deadline is not None and clock.monotonic() >= deadline:
                process.kill()
                process.join()
                raise WorkerCrashError(
                    f"worker for job {job.job_id} timed out "
                    f"after {timeout_s:g}s and was killed"
                )


# -- the orchestrator ------------------------------------------------------


class ExperimentService:
    """Fair-queued async job orchestrator over the result store.

    ``executor`` is injectable for tests: any object with
    ``async run(job) -> SimResult`` (raising
    :class:`~repro.sim.retry.WorkerCrashError` for retryable deaths)
    and an optional ``pids`` mapping.
    """

    def __init__(
        self,
        root: Any,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        executor: Optional[Any] = None,
    ):
        from pathlib import Path

        self.root = Path(root).expanduser()
        self.workers = workers if workers is not None else default_workers()
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        self.timeout_s = (
            timeout_s if timeout_s is not None else default_timeout_s()
        )
        self.retry = (
            retry_policy if retry_policy is not None else RetryPolicy.from_env()
        )
        self.store = ResultStore(self.root / "store")
        self.queue = FairJobQueue()
        self.state = fleet.FleetState()
        self.registry = MetricsRegistry()
        self.jobs: Dict[int, Job] = {}
        self._manager: Any = None
        self._heartbeats: Optional[fleet.FleetMonitor] = None
        if executor is None:
            queue = self._make_heartbeat_queue()
            executor = ProcessJobExecutor(self.timeout_s, heartbeat_queue=queue)
        self.executor = executor
        self._running: Dict[int, "asyncio.Task[None]"] = {}
        self._outstanding = 0
        self._stopping = False
        self._scheduler_task: Optional["asyncio.Task[None]"] = None
        self._idle: Optional[asyncio.Event] = None
        #: Terminal-state tallies (the manifest/status surface).
        self.counts: Dict[str, int] = {
            "submitted": 0, "cached": 0, "done": 0,
            "retried": 0, "lost": 0, "error": 0,
        }

    def _make_heartbeat_queue(self) -> Any:
        """A Manager queue for worker heartbeats, or None (degraded)."""
        try:
            from multiprocessing import Manager

            self._manager = Manager()
            queue = self._manager.Queue()
        except (OSError, PermissionError, NotImplementedError):
            return None
        self._heartbeats = fleet.FleetMonitor(queue, state=self.state)
        return queue

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._scheduler_task is not None:
            return
        self._idle = asyncio.Event()
        self._idle.set()
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: optionally drain, then stop the scheduler."""
        if drain:
            await self.drain()
        self._stopping = True
        task = self._scheduler_task
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for running in list(self._running.values()):
            running.cancel()
        if self._running:
            await asyncio.gather(*self._running.values(), return_exceptions=True)
            self._running.clear()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    async def drain(self) -> None:
        """Wait until every submitted job has reached a terminal state."""
        idle = self._idle
        if idle is not None:
            await idle.wait()

    # -- submission --------------------------------------------------------

    def submit_sweep(
        self, tenant: str, sweep: SweepSpec, share: float = 1.0
    ) -> Dict[str, Any]:
        """Expand, dedupe, and enqueue one sweep; returns the ticket."""
        self.queue.tenant(tenant, weight=share)
        specs = sweep.expand()
        queued: List[int] = []
        cached = 0
        for spec in specs:
            hit = self._lookup(spec)
            if hit is not None:
                self.store.record(spec, hit, source="cache", tenant=tenant)
                self._observe(parallel.run_label(spec), "cached", spec)
                cached += 1
                continue
            job = self.queue.submit(tenant, spec, job_cost(spec))
            job.submitted_s = clock.monotonic()
            self.jobs[job.job_id] = job
            self.state.expect(self._run_id(job))
            self._outstanding += 1
            queued.append(job.job_id)
        self.counts["submitted"] += len(specs)
        self.counts["cached"] += cached
        if queued and self._idle is not None:
            self._idle.clear()
        return {
            "tenant": tenant,
            "share": share,
            "runs": len(specs),
            "queued": len(queued),
            "cached": cached,
            "job_ids": queued,
        }

    def _lookup(self, spec: parallel.RunSpec) -> Optional[SimResult]:
        """Memo → disk → store, write-back on the colder hits."""
        from ..sim import runner

        hit = runner.memo_get(spec)
        if hit is not None:
            return hit
        disk = result_cache.active_cache()
        if disk is not None:
            hit = disk.get(spec.fingerprint())
        if hit is None:
            hit = self.store.get_result(spec)
            if hit is not None and disk is not None:
                disk.put(spec.fingerprint(), hit)
        if hit is not None:
            runner.memo_put(spec, hit)
        return hit

    # -- scheduling --------------------------------------------------------

    @staticmethod
    def _run_id(job: Job) -> str:
        return parallel.run_label(job.spec)

    def _observe(
        self, run_id: str, state: str, spec: parallel.RunSpec
    ) -> None:
        total = spec.warmup + spec.cycles
        cycle = total if state in ("done", "cached") else 0
        self.state.observe(fleet.heartbeat_event(run_id, state, cycle, total))

    async def _scheduler(self) -> None:
        while True:
            if self._heartbeats is not None:
                self._heartbeats.pump()
            launched = False
            while len(self._running) < self.workers:
                job = self.queue.pop()
                if job is None:
                    break
                task = asyncio.create_task(self._run_job(job))
                self._running[job.job_id] = task
                launched = True
            if not launched:
                await asyncio.sleep(_TICK_S)

    async def _run_job(self, job: Job) -> None:
        try:
            await self._execute(job)
        finally:
            self._running.pop(job.job_id, None)

    async def _execute(self, job: Job) -> None:
        run_id = self._run_id(job)
        # Dispatch-time dedupe: a duplicate queued while its twin ran
        # is served from the caches the twin just filled.
        hit = self._lookup(job.spec)
        if hit is not None:
            self.store.record(
                job.spec, hit, source="cache",
                tenant=job.tenant, attempts=job.attempts,
            )
            job.state = "cached"
            self.counts["cached"] += 1
            self._observe(run_id, "cached", job.spec)
            self._finish(job)
            return
        job.attempts += 1
        job.state = "running"
        job.started_s = clock.monotonic()
        self._observe(run_id, "running", job.spec)
        try:
            result = await self.executor.run(job)
        except WorkerCrashError as exc:
            self._crashed(job, exc)
            return
        except asyncio.CancelledError:
            job.state = "lost"
            job.error = "service shut down mid-run"
            self.counts["lost"] += 1
            self._observe(run_id, "lost", job.spec)
            self._finish(job)
            raise
        except Exception:
            job.state = "error"
            job.error = traceback.format_exc()
            self.counts["error"] += 1
            self._observe(run_id, "error", job.spec)
            self._finish(job)
            return
        finished_s = clock.monotonic()
        job.busy_s += finished_s - job.started_s
        self._record_success(job, result)
        self.queue.charge(job, job.busy_s, finished_s - job.submitted_s)
        job.state = "done"
        self.counts["done"] += 1
        self._observe(run_id, "done", job.spec)
        self._finish(job)

    def _crashed(self, job: Job, exc: WorkerCrashError) -> None:
        run_id = self._run_id(job)
        if self.retry.should_retry(job.attempts):
            job.state = "retried"
            self.counts["retried"] += 1
            self._observe(run_id, "retried", job.spec)
            delay = self.retry.delay_s(job.attempts)
            asyncio.get_running_loop().create_task(
                self._requeue_later(job, delay)
            )
        else:
            job.state = "lost"
            job.error = str(exc)
            self.counts["lost"] += 1
            self._observe(run_id, "lost", job.spec)
            self._finish(job)

    async def _requeue_later(self, job: Job, delay_s: float) -> None:
        if delay_s > 0:
            await asyncio.sleep(delay_s)
        self.queue.requeue(job)

    def _record_success(self, job: Job, result: SimResult) -> None:
        from ..sim import runner

        runner.memo_put(job.spec, result)
        disk = result_cache.active_cache()
        if disk is not None:
            disk.put(job.spec.fingerprint(), result)
        self.store.record(
            job.spec, result, source="fresh",
            tenant=job.tenant, attempts=job.attempts - 1,
        )

    def _finish(self, job: Job) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0 and self._idle is not None:
            self._idle.set()

    # -- introspection -----------------------------------------------------

    def worker_pids(self) -> Dict[int, int]:
        """Live job_id → pid (empty for inline/injected executors)."""
        return dict(getattr(self.executor, "pids", {}) or {})

    def fairness_metrics(self) -> Dict[str, float]:
        """Tenant fairness headline, mirrored into the obs registry."""
        metrics = self.queue.fairness()
        for name, value in metrics.items():
            self.registry.gauge(f"serve.{name}", value)
        return metrics

    def status(self) -> Dict[str, Any]:
        """The queryable service snapshot (the ``status`` op's payload)."""
        if self._heartbeats is not None:
            self._heartbeats.pump()
        tenants = {
            name: {
                "share": account.weight,
                "submitted": account.submitted,
                "finished": account.finished,
                "queued": account.queued,
                "busy_s": account.busy_s,
                "slowdown": account.slowdown,
            }
            for name, account in sorted(self.queue.tenants.items())
        }
        return {
            "workers": self.workers,
            "queued": len(self.queue),
            "running": sorted(self._running),
            "worker_pids": {
                str(job_id): pid
                for job_id, pid in sorted(self.worker_pids().items())
            },
            "counts": dict(self.counts),
            "outstanding": self._outstanding,
            "virtual_time": self.queue.virtual_time,
            "tenants": tenants,
            "fairness": self.fairness_metrics(),
            "store_runs": len(self.store),
            "store_problems": list(self.store.problems),
            "dashboard": self.state.render(),
        }
