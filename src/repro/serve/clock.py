"""The one wall-clock module under ``repro.serve`` (DET009's harness).

The experiment service genuinely needs host time — job timeouts,
retry backoff pacing, tenant busy-second accounting — and the
determinism contract genuinely bans it everywhere results are
computed.  The resolution is the same as :mod:`repro.obs.phases` under
DET008: confine every ``time`` import under ``serve/`` to this single
registered module, and keep the hazard contained by construction:

* Nothing here ever flows into a simulation: timeouts kill *worker
  processes*, backoff paces *resubmissions*, and busy-seconds ride
  *service metrics* — a retried or slow job recomputes the identical
  bit-identical result.
* The scheduler (:mod:`repro.serve.queue`) is wall-clock-free: virtual
  time advances on job *costs* (simulated cycles), so dispatch order
  is a pure function of submission order and shares, unit-testable
  without sleeping.
"""

from __future__ import annotations

import time  # lint: allow(DET009, the registered serve wall-clock module: timeouts/backoff/busy-second accounting pace jobs and feed metrics; nothing here ever becomes a simulation input)


def monotonic() -> float:
    """Monotonic seconds for deadlines and busy-time accounting."""
    return time.monotonic()  # lint: allow(DET002, harness-side deadline clock; never a simulation input)


def sleep(seconds: float) -> None:
    """Blocking sleep (retry backoff in synchronous callers)."""
    time.sleep(seconds)
