"""Synthetic benchmark trace generation.

The paper's evaluation uses proprietary 100M-instruction SPEC CPU2000
sampled traces.  We substitute parameterized synthetic reference
streams.  Every behaviour the paper's results depend on is an explicit
parameter:

* **intensity** — mean instruction gap between L2-reaching references,
  shaped into bursts (``burst_len`` refs spaced ``burst_gap`` apart,
  then ``inter_burst_gap``); frequent long bursts are exactly the
  access pattern the paper says FR-FCFS unfairly rewards;
* **memory-level parallelism** — ``dep_frac`` builds dependence chains
  (a reference waits for its predecessor), reproducing the low-MLP,
  preemption-latency-sensitive behaviour of vpr/twolf;
* **row locality** — ``row_locality`` continues sequential streams
  within an SDRAM row, creating the row-hit runs that cause bank
  priority chaining;
* **footprint** — ``working_set_lines`` sets the L2 hit rate
  (cache-resident benchmarks like crafty barely touch memory);
* **write mix** — ``write_frac`` stores dirty lines that return to
  memory as writebacks.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator, List

from ..cpu.trace import TraceRecord


@dataclass(frozen=True)
class BenchmarkProfile:
    """Parameters describing one synthetic benchmark's memory behaviour."""

    name: str
    burst_len: float
    burst_gap: float
    inter_burst_gap: float
    row_locality: float
    num_streams: int
    working_set_lines: int
    dep_frac: float
    write_frac: float

    def __post_init__(self) -> None:
        if self.burst_len < 1:
            raise ValueError(f"{self.name}: burst_len must be >= 1")
        if self.burst_gap < 0 or self.inter_burst_gap < 0:
            raise ValueError(f"{self.name}: gaps must be >= 0")
        for frac_name in ("row_locality", "dep_frac", "write_frac"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {frac_name} must be in [0, 1]")
        if self.num_streams < 1:
            raise ValueError(f"{self.name}: need at least one stream")
        if self.working_set_lines < self.num_streams:
            raise ValueError(f"{self.name}: working set smaller than stream count")

    def mean_gap(self) -> float:
        """Expected instruction gap per reference."""
        per_burst = self.burst_gap * (self.burst_len - 1) + self.inter_burst_gap
        return per_burst / self.burst_len

    def make_trace(self, seed: int, base_address: int) -> "SyntheticTraceGenerator":
        """Per-core infinite trace stream (the workload interface)."""
        return SyntheticTraceGenerator(self, seed=seed, base_address=base_address)

    def prewarm_stream(self, seed: int, base_address: int) -> Iterator[TraceRecord]:
        """Leading records used to warm the L2 before timing starts.

        A twin generator (same seed) supplies them, so the live trace
        is unaffected.  Cache-resident benchmarks would otherwise spend
        millions of cycles compulsory-missing their footprint.
        """
        twin = SyntheticTraceGenerator(self, seed=seed, base_address=base_address)
        touches = min(4 * self.working_set_lines, 40_000)
        return (next(twin) for _ in range(touches))


class SyntheticTraceGenerator:
    """Deterministic (seeded) infinite reference stream for one profile."""

    LINE_BYTES = 64

    def __init__(self, profile: BenchmarkProfile, seed: int = 0, base_address: int = 0):
        self.profile = profile
        self.base_address = base_address
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # randomized per interpreter run) so traces are reproducible.
        name_hash = zlib.crc32(profile.name.encode())
        self._rng = random.Random(name_hash ^ (seed * 0x9E3779B1) ^ base_address)
        self._streams: List[int] = [
            self._rng.randrange(profile.working_set_lines)
            for _ in range(profile.num_streams)
        ]
        self._burst_left = 0
        self._stream_idx = 0

    def _gap(self, mean: float) -> int:
        if mean <= 0:
            return 0
        return int(self._rng.expovariate(1.0 / mean))

    def _next_line(self) -> int:
        profile = self.profile
        self._stream_idx = (self._stream_idx + 1) % profile.num_streams
        idx = self._stream_idx
        if self._rng.random() < profile.row_locality:
            self._streams[idx] = (self._streams[idx] + 1) % profile.working_set_lines
        else:
            self._streams[idx] = self._rng.randrange(profile.working_set_lines)
        return self._streams[idx]

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        profile = self.profile
        if self._burst_left > 0:
            self._burst_left -= 1
            gap = self._gap(profile.burst_gap)
        else:
            # Start a new burst: geometric length with the given mean.
            mean_extra = profile.burst_len - 1.0
            self._burst_left = (
                int(self._rng.expovariate(1.0 / mean_extra)) if mean_extra > 0 else 0
            )
            gap = self._gap(profile.inter_burst_gap)
        line = self._next_line()
        address = self.base_address + line * self.LINE_BYTES
        is_write = self._rng.random() < profile.write_frac
        dep = 1 if self._rng.random() < profile.dep_frac else 0
        return TraceRecord(inst_gap=gap, is_write=is_write, address=address, dep=dep)

    def take(self, count: int) -> List[TraceRecord]:
        """Materialize the next ``count`` records (testing, trace files)."""
        return [next(self) for _ in range(count)]
