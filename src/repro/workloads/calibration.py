"""Profile calibration against Figure-4 solo-utilization targets.

The paper characterizes each SPEC trace by its solo data-bus
utilization (Figure 4).  Our synthetic stand-ins fix the *qualitative*
parameters per benchmark (row locality, dependence fraction, burst
shape, write mix, footprint) and solve for the reference-stream
intensity (``inter_burst_gap``) that lands the solo utilization on the
paper's spectrum.  This module is how `spec2000.py`'s frozen profiles
were produced; re-run it after changing the core or DRAM models.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from .synthetic import BenchmarkProfile


def solo_utilization(
    profile: BenchmarkProfile, cycles: int = 30_000, warmup: int = 8_000
) -> float:
    """Measure a profile's solo data-bus utilization (baseline policy, 1 core)."""
    from ..policy import BASELINE_POLICY
    from ..sim.config import SystemConfig
    from ..sim.system import CmpSystem

    system = CmpSystem(
        SystemConfig(num_cores=1, policy=BASELINE_POLICY), [profile]
    )
    result = system.run(cycles, warmup=warmup)
    return result.data_bus_utilization


def calibrate_intensity(
    profile: BenchmarkProfile,
    target: float,
    tolerance: float = 0.08,
    max_iters: int = 8,
    cycles: int = 30_000,
    gap_bounds: Tuple[float, float] = (0.5, 200_000.0),
) -> Tuple[BenchmarkProfile, float]:
    """Solve for the ``inter_burst_gap`` that hits ``target`` utilization.

    Uses bisection on the gap (utilization is monotonically decreasing
    in it).  Returns the calibrated profile and its measured solo
    utilization.  ``tolerance`` is relative.
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target utilization must be in (0, 1), got {target}")
    gap_min, gap_max = gap_bounds

    def measure(gap: float) -> Tuple[BenchmarkProfile, float]:
        candidate = dataclasses.replace(profile, inter_burst_gap=gap)
        return candidate, solo_utilization(candidate, cycles=cycles)

    # Utilization decreases monotonically in the gap: bracket the
    # target by doubling/halving, then bisect.
    gap = max(gap_min, min(gap_max, profile.inter_burst_gap))
    candidate, util = measure(gap)
    best = (candidate, util)
    lo = hi = gap  # lo: util >= target side, hi: util <= target side
    while util > target and gap < gap_max:
        lo, gap = gap, min(gap_max, gap * 2)
        candidate, util = measure(gap)
        if abs(util - target) < abs(best[1] - target):
            best = (candidate, util)
    hi = gap
    while util < target and gap > gap_min:
        hi, gap = gap, max(gap_min, gap / 2)
        candidate, util = measure(gap)
        if abs(util - target) < abs(best[1] - target):
            best = (candidate, util)
    lo = gap
    for _ in range(max_iters):
        if abs(best[1] - target) <= tolerance * target:
            break
        gap = (lo + hi) / 2
        candidate, util = measure(gap)
        if abs(util - target) < abs(best[1] - target):
            best = (candidate, util)
        if util > target:
            lo = gap
        else:
            hi = gap
    return best
