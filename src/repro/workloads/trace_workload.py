"""Trace-file-driven workloads.

The synthetic profiles stand in for the paper's proprietary SPEC
traces, but the simulator is equally happy replaying *recorded* traces
(the format of :mod:`repro.cpu.trace`).  A :class:`TraceWorkload`
wraps a trace file — or an in-memory record list — behind the same
interface :class:`~repro.workloads.synthetic.BenchmarkProfile`
provides to the system builder: a name, a per-core trace iterator, and
a prewarm stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from ..cpu.trace import TraceRecord, read_trace


@dataclass(frozen=True)
class TraceWorkload:
    """A recorded reference stream usable anywhere a profile is.

    Attributes:
        name: Label used in results.
        path: Trace file (``repro.cpu.trace`` text format), or None
            when ``records`` supplies the stream directly.
        records: In-memory record list (takes precedence over ``path``).
        repeat: Loop the trace when the simulation outlives it; a
            finite trace otherwise simply lets the core run dry.
        prewarm_records: How many leading records to push through the
            L2 before timing starts.
    """

    name: str
    path: Optional[Union[str, Path]] = None
    records: Optional[Sequence[TraceRecord]] = None
    repeat: bool = True
    prewarm_records: int = 10_000

    def __post_init__(self) -> None:
        if self.path is None and self.records is None:
            raise ValueError(f"{self.name}: needs a path or records")
        if self.prewarm_records < 0:
            raise ValueError(f"{self.name}: prewarm_records must be >= 0")

    def _raw_iter(self) -> Iterator[TraceRecord]:
        if self.records is not None:
            return iter(self.records)
        return read_trace(self.path)

    def make_trace(self, seed: int, base_address: int) -> Iterator[TraceRecord]:
        """Per-core trace stream, rebased to the core's address slice.

        ``seed`` is accepted for interface parity with synthetic
        profiles; recorded traces replay verbatim.
        """
        def rebased() -> Iterator[TraceRecord]:
            while True:
                for record in self._raw_iter():
                    if base_address:
                        record = TraceRecord(
                            inst_gap=record.inst_gap,
                            is_write=record.is_write,
                            address=record.address + base_address,
                            dep=record.dep,
                        )
                    yield record
                if not self.repeat:
                    return

        return rebased()

    def prewarm_stream(self, seed: int, base_address: int) -> Iterator[TraceRecord]:
        """Leading records used to warm the L2 (bounded)."""
        return itertools.islice(
            self.make_trace(seed, base_address), self.prewarm_records
        )


def workload_from_records(
    name: str, records: List[TraceRecord], repeat: bool = True
) -> TraceWorkload:
    """Convenience constructor for in-memory traces."""
    return TraceWorkload(name=name, records=list(records), repeat=repeat)
