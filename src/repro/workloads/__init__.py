"""Synthetic SPEC-2000-like workloads and workload construction."""

from .spec2000 import (
    BACKGROUND,
    BENCHMARKS,
    BY_NAME,
    four_proc_workloads,
    profile,
    two_proc_pairs,
)
from .sampling import (
    Representativeness,
    representativeness,
    sample_trace,
    trace_statistics,
)
from .synthetic import BenchmarkProfile, SyntheticTraceGenerator
from .trace_workload import TraceWorkload, workload_from_records

__all__ = [
    "BACKGROUND",
    "BENCHMARKS",
    "BY_NAME",
    "BenchmarkProfile",
    "Representativeness",
    "SyntheticTraceGenerator",
    "TraceWorkload",
    "four_proc_workloads",
    "profile",
    "representativeness",
    "sample_trace",
    "trace_statistics",
    "two_proc_pairs",
    "workload_from_records",
]
