"""Trace sampling and representativeness validation.

The paper drives its evaluation with "100 million instruction SPEC
benchmark sampled traces that have been verified to be statistically
representative of the entire SPEC application" (citing Iyengar et
al.).  This module provides that methodology for user traces:

* :func:`sample_trace` — extract evenly spaced contiguous sample
  windows from a long reference stream;
* :func:`trace_statistics` — the summary statistics that matter to a
  memory-scheduling study (reference intensity, write mix, dependence
  fraction, spatial locality, footprint);
* :func:`representativeness` — compare a sample against its parent
  trace, reporting the relative error of each statistic and an overall
  verdict against a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cpu.trace import TraceRecord


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a reference stream.

    Attributes:
        records: Number of references.
        instructions: Total instructions spanned (gaps + references).
        mean_gap: Mean instruction gap per reference.
        write_fraction: Fraction of stores.
        dep_fraction: Fraction of dependent references.
        sequential_fraction: Fraction of references to the line
            immediately after their predecessor (spatial locality).
        footprint_lines: Distinct cache lines touched.
    """

    records: int
    instructions: int
    mean_gap: float
    write_fraction: float
    dep_fraction: float
    sequential_fraction: float
    footprint_lines: int


def trace_statistics(records: Sequence[TraceRecord], line_bytes: int = 64) -> TraceStatistics:
    """Compute the scheduling-relevant statistics of ``records``."""
    if not records:
        raise ValueError("cannot summarize an empty trace")
    instructions = sum(r.inst_gap + 1 for r in records)
    writes = sum(1 for r in records if r.is_write)
    deps = sum(1 for r in records if r.dep > 0)
    lines = [r.address // line_bytes for r in records]
    sequential = sum(1 for a, b in zip(lines, lines[1:]) if b == a + 1)
    return TraceStatistics(
        records=len(records),
        instructions=instructions,
        mean_gap=(instructions - len(records)) / len(records),
        write_fraction=writes / len(records),
        dep_fraction=deps / len(records),
        sequential_fraction=sequential / max(1, len(records) - 1),
        footprint_lines=len(set(lines)),
    )


def sample_trace(
    records: Sequence[TraceRecord],
    num_samples: int,
    sample_len: int,
) -> List[TraceRecord]:
    """Evenly spaced contiguous sampling (Iyengar-style).

    Splits the trace into ``num_samples`` windows of ``sample_len``
    references, spaced uniformly across the whole stream, and
    concatenates them.  The gap record at each window boundary keeps
    its original value, so instruction counts remain meaningful.
    """
    if num_samples <= 0 or sample_len <= 0:
        raise ValueError("num_samples and sample_len must be positive")
    total_needed = num_samples * sample_len
    if total_needed > len(records):
        raise ValueError(
            f"cannot take {num_samples}×{sample_len} references from a "
            f"{len(records)}-reference trace"
        )
    if num_samples == 1:
        return list(records[:sample_len])
    stride = (len(records) - sample_len) / (num_samples - 1)
    sampled: List[TraceRecord] = []
    for i in range(num_samples):
        start = round(i * stride)
        sampled.extend(records[start:start + sample_len])
    return sampled


#: Statistics compared by :func:`representativeness` and their weights.
_COMPARED = ("mean_gap", "write_fraction", "dep_fraction", "sequential_fraction")


@dataclass(frozen=True)
class Representativeness:
    """Outcome of comparing a sample against its parent trace."""

    relative_errors: Dict[str, float]
    tolerance: float

    @property
    def worst_error(self) -> float:
        """Largest relative error across the compared statistics."""
        return max(self.relative_errors.values())

    @property
    def representative(self) -> bool:
        """True when every statistic is within the tolerance."""
        return self.worst_error <= self.tolerance


def representativeness(
    parent: Sequence[TraceRecord],
    sample: Sequence[TraceRecord],
    tolerance: float = 0.15,
) -> Representativeness:
    """Validate that ``sample`` reproduces ``parent``'s statistics.

    Relative error is computed per statistic with an absolute floor so
    near-zero fractions do not explode the ratio.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    parent_stats = trace_statistics(parent)
    sample_stats = trace_statistics(sample)
    errors: Dict[str, float] = {}
    for stat in _COMPARED:
        reference = getattr(parent_stats, stat)
        measured = getattr(sample_stats, stat)
        floor = max(abs(reference), 0.02)
        errors[stat] = abs(measured - reference) / floor
    return Representativeness(relative_errors=errors, tolerance=tolerance)
