"""The 20 SPEC-2000-like benchmark profiles and workload construction.

The paper orders its twenty SPEC 2000 traces by solo data-bus
utilization (its Figure 4), with *art* the most aggressive (~47% of
peak) down to *crafty* (~1%).  The profiles below are synthetic
stand-ins calibrated to span the same spectrum in the same order, and
to reproduce the behaviours the paper singles out:

* **art** — the most aggressive: long independent streaming bursts.
* **swim/mgrid/applu/lucas** — bandwidth-heavy scientific loops.
* **vpr/twolf** — modest demand but long dependence chains (little
  memory-level parallelism), which makes them sensitive to preemption
  latency — the paper's one near-miss QoS case.
* **sixtrack/perlbmk/crafty** — cache-resident, under 2% utilization;
  excluded from the four-processor workloads exactly as in the paper.

Workload construction mirrors the paper: the two-processor experiments
pair background *art* with every other benchmark; the four-processor
workloads take every fourth benchmark of the first sixteen.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .synthetic import BenchmarkProfile

#: Figure-4 ordering: most aggressive first.  The intensity parameter
#: (``inter_burst_gap``) of each profile was solved by
#: :mod:`repro.workloads.calibration` (see ``tools/run_calibration.py``)
#: so that solo data-bus utilizations span the paper's Figure 4
#: spectrum; the measured solo utilization is noted per profile.
BENCHMARKS: List[BenchmarkProfile] = [
    BenchmarkProfile("art", 64, 1, 128, 0.95, 4, 1 << 20, 0.00, 0.35),  # ~0.86
    BenchmarkProfile("swim", 48, 2, 9600, 0.95, 3, 1 << 20, 0.00, 0.40),  # ~0.73
    BenchmarkProfile("mgrid", 32, 2, 19200, 0.90, 3, 1 << 20, 0.05, 0.30),  # ~0.69
    BenchmarkProfile("applu", 32, 3, 16000, 0.90, 3, 1 << 20, 0.05, 0.30),  # ~0.63
    BenchmarkProfile("lucas", 24, 3, 6000, 0.85, 2, 1 << 20, 0.10, 0.25),  # ~0.60
    BenchmarkProfile("galgel", 24, 3, 4800, 0.85, 3, 1 << 19, 0.10, 0.30),  # ~0.53
    BenchmarkProfile("equake", 16, 4, 3500, 0.75, 2, 1 << 19, 0.20, 0.20),  # ~0.52
    BenchmarkProfile("facerec", 16, 4, 5400, 0.75, 2, 1 << 19, 0.20, 0.25),  # ~0.45
    BenchmarkProfile("apsi", 12, 4, 6600, 0.70, 2, 1 << 19, 0.25, 0.30),  # ~0.40
    BenchmarkProfile("wupwise", 12, 5, 5200, 0.65, 2, 1 << 19, 0.25, 0.25),  # ~0.32
    BenchmarkProfile("parser", 8, 5, 3750, 0.50, 1, 1 << 18, 0.40, 0.20),  # ~0.28
    BenchmarkProfile("bzip2", 8, 5, 14400, 0.60, 1, 1 << 18, 0.35, 0.30),  # ~0.23
    BenchmarkProfile("ammp", 6, 6, 4950, 0.50, 1, 1 << 18, 0.45, 0.20),  # ~0.19
    BenchmarkProfile("vpr", 2, 6, 1000, 0.25, 1, 1 << 18, 0.85, 0.15),  # ~0.14
    BenchmarkProfile("twolf", 2, 6, 2100, 0.20, 1, 1 << 18, 0.90, 0.15),  # ~0.11
    BenchmarkProfile("gzip", 4, 8, 9000, 0.50, 1, 1 << 17, 0.30, 0.30),  # ~0.08
    BenchmarkProfile("gap", 2, 10, 9000, 0.35, 1, 1 << 17, 0.50, 0.20),  # ~0.04
    BenchmarkProfile("sixtrack", 1, 10, 13125, 0.40, 1, 1 << 14, 0.30, 0.20),  # ~0.017
    BenchmarkProfile("perlbmk", 1, 10, 7375, 0.30, 1, 1 << 14, 0.50, 0.20),  # ~0.012
    BenchmarkProfile("crafty", 1, 10, 33000, 0.30, 1, 1 << 14, 0.50, 0.10),  # ~0.008
]

BY_NAME: Dict[str, BenchmarkProfile] = {b.name: b for b in BENCHMARKS}

#: Calibrated solo data-bus utilizations (Figure 4 reference spectrum).
#: ``tools/run_calibration.py`` regenerates these; the test suite
#: asserts the live profiles still land near them, so any change to the
#: core, prefetcher, or DRAM model that silently shifts workload
#: intensity fails loudly.
TARGET_SOLO_UTILIZATION: Dict[str, float] = {
    "art": 0.86,
    "swim": 0.73,
    "mgrid": 0.69,
    "applu": 0.63,
    "lucas": 0.60,
    "galgel": 0.53,
    "equake": 0.52,
    "facerec": 0.45,
    "apsi": 0.40,
    "wupwise": 0.32,
    "parser": 0.28,
    "bzip2": 0.23,
    "ammp": 0.19,
    "vpr": 0.14,
    "twolf": 0.11,
    "gzip": 0.08,
    "gap": 0.037,
    "sixtrack": 0.017,
    "perlbmk": 0.012,
    "crafty": 0.008,
}

#: The paper's most aggressive benchmark, used as the background thread
#: in every two-processor experiment.
BACKGROUND = BY_NAME["art"]


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    if name not in BY_NAME:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(BY_NAME)}")
    return BY_NAME[name]


def two_proc_pairs() -> List[Tuple[BenchmarkProfile, BenchmarkProfile]]:
    """(subject, background=art) for every benchmark except art itself."""
    return [(b, BACKGROUND) for b in BENCHMARKS if b.name != BACKGROUND.name]


def four_proc_workloads() -> List[List[BenchmarkProfile]]:
    """The paper's four heterogeneous four-thread workloads.

    Every fourth benchmark of the first sixteen (the last four are
    excluded for very low memory utilization), so the first workload is
    (art, lucas, apsi, ammp) exactly as in the paper.
    """
    eligible = BENCHMARKS[:16]
    return [[eligible[i + 4 * j] for j in range(4)] for i in range(4)]
