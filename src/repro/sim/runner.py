"""High-level run helpers: solo runs, co-scheduled runs, baselines.

The paper's experiments repeatedly need (a) each benchmark run alone
on a private memory system — possibly time-scaled — and (b) the same
benchmark co-scheduled under each scheduling policy.  Both are
memoized through two transparent layers: a per-process memo (same
object back, as the figure drivers expect) and the persistent disk
cache of :mod:`repro.sim.cache`, so repeated figure regenerations and
``pytest benchmarks/`` invocations stop re-simulating the world.
Batch sweeps go through :func:`repro.sim.parallel.run_many`, which
fans cache misses out across cores and seeds the same memo.

Run lengths default to a statistically stable but laptop-friendly
window; set ``REPRO_SIM_CYCLES`` to lengthen every run proportionally
for a higher-fidelity regeneration.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from .. import env
from ..core.shares import equal_shares
from ..obs import manifest_dir
from ..policy import BASELINE_POLICY
from ..workloads.spec2000 import profile as lookup_profile
from ..workloads.synthetic import BenchmarkProfile
from . import cache as result_cache
from .config import SystemConfig
from .parallel import RunSpec, execute_spec, group_spec, solo_spec
from .system import CmpSystem, SimResult

#: Default measurement window in cycles (override via REPRO_SIM_CYCLES).
DEFAULT_CYCLES = int(env.text("REPRO_SIM_CYCLES", "60000"))
#: Warmup fraction applied before the measurement window opens.
WARMUP_FRACTION = 0.25


def default_warmup(cycles: int) -> int:
    """Warmup cycles preceding a measurement window of ``cycles``."""
    return int(cycles * WARMUP_FRACTION)


#: Upper bound on memoized results (override via REPRO_MEMO_CAP).  The
#: default comfortably holds a full figure regeneration (hundreds of
#: runs) while bounding long-lived processes that sweep thousands of
#: configurations; eviction is least-recently-used.
MEMO_CAP_ENV_VAR = "REPRO_MEMO_CAP"
DEFAULT_MEMO_CAP = 4096


def _memo_cap() -> int:
    return env.positive_int(MEMO_CAP_ENV_VAR, DEFAULT_MEMO_CAP)


#: In-process memo: spec → result object (identity-stable per process
#: while resident; bounded LRU, see ``REPRO_MEMO_CAP``).
_memo: "OrderedDict[RunSpec, SimResult]" = OrderedDict()


def memo_get(spec: RunSpec) -> Optional[SimResult]:
    """The memoized result for ``spec``, if this process has one."""
    result = _memo.get(spec)
    if result is not None:
        _memo.move_to_end(spec)
    return result


def memo_put(spec: RunSpec, result: SimResult) -> None:
    """Install ``result`` as the canonical in-process result for ``spec``."""
    _memo[spec] = result
    _memo.move_to_end(spec)
    cap = _memo_cap()
    while len(_memo) > cap:
        _memo.popitem(last=False)


def clear_solo_cache() -> None:
    """Drop memoized runs (tests that vary global state use this).

    Clears the in-process layer only; the disk cache is content-keyed
    (config + profile content + code salt) so it never needs flushing
    for correctness.
    """
    _memo.clear()


def _fetch(spec: RunSpec) -> SimResult:
    """Resolve ``spec`` through memo → disk cache → fresh simulation."""
    result = memo_get(spec)
    if result is not None:
        return result
    disk = result_cache.active_cache()
    if disk is not None:
        key = spec.fingerprint()
        result = disk.get(key)
        if result is None:
            result = execute_spec(spec)
            disk.put(key, result)
    else:
        result = execute_spec(spec)
    memo_put(spec, result)
    return result


def run_workload(
    profiles: Sequence[BenchmarkProfile],
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    shares: Optional[List[float]] = None,
    seed: int = 0,
    inversion_bound: Optional[int] = None,
    engine: Optional[str] = None,
    trace: Optional[bool] = None,
) -> SimResult:
    """Co-schedule ``profiles`` (one per core) under ``policy`` (uncached).

    ``engine`` overrides the simulation engine ("event" or "cycle");
    None defers to ``REPRO_ENGINE`` / the event default.  ``trace``
    attaches :mod:`repro.telemetry` observers (None defers to
    ``REPRO_TRACE``); use :func:`repro.telemetry.driver.run_traced`
    when you need the telemetry object back, not just the result.
    """
    kwargs = {} if engine is None else {"engine": engine}
    config = SystemConfig(
        num_cores=len(profiles),
        policy=policy,
        shares=shares,
        seed=seed,
        inversion_bound=inversion_bound,
        **kwargs,
    )
    system = CmpSystem(config, profiles, trace=trace)
    if warmup is None:
        warmup = default_warmup(cycles)
    result = system.run(cycles, warmup=warmup)
    out_dir = manifest_dir()
    if out_dir:
        # Same best-effort per-run manifest the batch workers emit.
        from ..obs.manifest import emit_run_manifest

        try:
            emit_run_manifest(
                out_dir,
                fingerprint=result_cache.fingerprint(
                    config, list(profiles), cycles, warmup, seed
                ),
                policy=config.policy,
                workload=[p.name for p in profiles],
                cycles=cycles,
                warmup=warmup,
                seed=seed,
                result=result,
                source="fresh",
                obs=system.obs,
            )
        except OSError:
            pass
    return result


def _registered(profile: BenchmarkProfile) -> bool:
    """True when ``profile`` is exactly the registered profile of its name."""
    try:
        return lookup_profile(profile.name) == profile
    except KeyError:
        return False


def run_solo(
    profile: BenchmarkProfile,
    scale: float = 1.0,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> SimResult:
    """Run one benchmark alone on a (possibly time-scaled) private system.

    ``scale`` > 1 slows the memory system down, e.g. ``scale=2`` is the
    paper's two-processor QoS baseline (a private memory system at half
    frequency, i.e. 1/φ with φ = ½).  Cached through both layers for
    registered profiles.
    """
    if warmup is None:
        warmup = default_warmup(cycles)
    if not _registered(profile):
        config = SystemConfig(num_cores=1, policy=BASELINE_POLICY, seed=seed)
        if scale != 1.0:
            config = config.scaled_baseline(scale)
        return CmpSystem(config, [profile]).run(cycles, warmup=warmup)
    return _fetch(solo_spec(profile.name, scale, cycles, warmup, seed))


def run_group(
    profiles: Sequence[BenchmarkProfile],
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> SimResult:
    """Memoized co-scheduled run of named benchmark profiles.

    Figures 5, 6, and 7 share the same two-processor runs and Figures 8
    and 9 share the four-processor runs; the memo avoids re-simulating.
    Profiles not registered in :mod:`repro.workloads.spec2000` fall
    back to a direct (uncached) simulation.
    """
    if warmup is None:
        warmup = default_warmup(cycles)
    if not all(_registered(p) for p in profiles):
        return run_workload(profiles, policy, cycles=cycles, warmup=warmup, seed=seed)
    names = tuple(p.name for p in profiles)
    return _fetch(group_spec(names, policy, cycles, warmup, seed))


def coscheduled_pair(
    subject: BenchmarkProfile,
    background: BenchmarkProfile,
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> Tuple[SimResult, float, float]:
    """Run subject+background on a 2-CPU CMP; return (result, nIPC_s, nIPC_b).

    Normalized IPC is measured against each benchmark running alone on
    the paper's baseline: a private memory system time-scaled by 1/φ = 2.
    The co-run goes through the memoized :func:`run_group`, so pair
    figures reuse runs the group cache already holds.
    """
    result = run_group(
        [subject, background], policy, cycles=cycles, warmup=warmup, seed=seed
    )
    base_s = run_solo(subject, scale=2.0, cycles=cycles, warmup=warmup, seed=seed)
    base_b = run_solo(background, scale=2.0, cycles=cycles, warmup=warmup, seed=seed)
    n_subject = result.threads[0].ipc / base_s.threads[0].ipc
    n_background = result.threads[1].ipc / base_b.threads[0].ipc
    return result, n_subject, n_background


def equal_share_list(num_threads: int) -> List[float]:
    """Convenience re-export for experiment drivers."""
    return equal_shares(num_threads)
