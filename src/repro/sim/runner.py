"""High-level run helpers: solo runs, co-scheduled runs, baselines.

The paper's experiments repeatedly need (a) each benchmark run alone
on a private memory system — possibly time-scaled — and (b) the same
benchmark co-scheduled under each scheduling policy.  Solo runs are
memoized per process since every figure reuses them.

Run lengths default to a statistically stable but laptop-friendly
window; set ``REPRO_SIM_CYCLES`` to lengthen every run proportionally
for a higher-fidelity regeneration.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from ..core.shares import equal_shares
from ..workloads.spec2000 import profile as lookup_profile
from ..workloads.synthetic import BenchmarkProfile
from .config import SystemConfig
from .system import CmpSystem, SimResult

#: Default measurement window in cycles (override via REPRO_SIM_CYCLES).
DEFAULT_CYCLES = int(os.environ.get("REPRO_SIM_CYCLES", "60000"))
#: Warmup fraction applied before the measurement window opens.
WARMUP_FRACTION = 0.25


def default_warmup(cycles: int) -> int:
    """Warmup cycles preceding a measurement window of ``cycles``."""
    return int(cycles * WARMUP_FRACTION)


def run_workload(
    profiles: Sequence[BenchmarkProfile],
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    shares: Optional[List[float]] = None,
    seed: int = 0,
    inversion_bound: Optional[int] = None,
) -> SimResult:
    """Co-schedule ``profiles`` (one per core) under ``policy``."""
    config = SystemConfig(
        num_cores=len(profiles),
        policy=policy,
        shares=shares,
        seed=seed,
        inversion_bound=inversion_bound,
    )
    system = CmpSystem(config, profiles)
    if warmup is None:
        warmup = default_warmup(cycles)
    return system.run(cycles, warmup=warmup)


@lru_cache(maxsize=None)
def _run_solo_cached(
    name: str, scale: float, cycles: int, warmup: int, seed: int
) -> SimResult:
    profile = lookup_profile(name)
    config = SystemConfig(num_cores=1, policy="FR-FCFS", seed=seed)
    if scale != 1.0:
        config = config.scaled_baseline(scale)
    system = CmpSystem(config, [profile])
    return system.run(cycles, warmup=warmup)


def run_solo(
    profile: BenchmarkProfile,
    scale: float = 1.0,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> SimResult:
    """Run one benchmark alone on a (possibly time-scaled) private system.

    ``scale`` > 1 slows the memory system down, e.g. ``scale=2`` is the
    paper's two-processor QoS baseline (a private memory system at half
    frequency, i.e. 1/φ with φ = ½).
    """
    if warmup is None:
        warmup = default_warmup(cycles)
    return _run_solo_cached(profile.name, scale, cycles, warmup, seed)


def clear_solo_cache() -> None:
    """Drop memoized runs (tests that vary global state use this)."""
    _run_solo_cached.cache_clear()
    _run_group_cached.cache_clear()


@lru_cache(maxsize=None)
def _run_group_cached(
    names: Tuple[str, ...], policy: str, cycles: int, warmup: int, seed: int
) -> SimResult:
    profiles = [lookup_profile(name) for name in names]
    return run_workload(profiles, policy, cycles=cycles, warmup=warmup, seed=seed)


def run_group(
    profiles: Sequence[BenchmarkProfile],
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> SimResult:
    """Memoized co-scheduled run of named benchmark profiles.

    Figures 5, 6, and 7 share the same two-processor runs and Figures 8
    and 9 share the four-processor runs; the memo avoids re-simulating.
    Only profiles registered in :mod:`repro.workloads.spec2000` are
    cacheable by name.
    """
    if warmup is None:
        warmup = default_warmup(cycles)
    names = tuple(p.name for p in profiles)
    return _run_group_cached(names, policy, cycles, warmup, seed)


def coscheduled_pair(
    subject: BenchmarkProfile,
    background: BenchmarkProfile,
    policy: str,
    cycles: int = DEFAULT_CYCLES,
    warmup: Optional[int] = None,
    seed: int = 0,
) -> Tuple[SimResult, float, float]:
    """Run subject+background on a 2-CPU CMP; return (result, nIPC_s, nIPC_b).

    Normalized IPC is measured against each benchmark running alone on
    the paper's baseline: a private memory system time-scaled by 1/φ = 2.
    """
    result = run_workload(
        [subject, background], policy, cycles=cycles, warmup=warmup, seed=seed
    )
    base_s = run_solo(subject, scale=2.0, cycles=cycles, warmup=warmup, seed=seed)
    base_b = run_solo(background, scale=2.0, cycles=cycles, warmup=warmup, seed=seed)
    n_subject = result.threads[0].ipc / base_s.threads[0].ipc
    n_background = result.threads[1].ipc / base_b.threads[0].ipc
    return result, n_subject, n_background


def equal_share_list(num_threads: int) -> List[float]:
    """Convenience re-export for experiment drivers."""
    return equal_shares(num_threads)
