"""Shared worker-crash detection and retry/backoff policy.

Both batch front-ends — :func:`repro.sim.parallel.run_many`'s process
pool and the :mod:`repro.serve` job scheduler — hand simulation work to
worker processes that can die underneath them: OOM kills, segfaulting
native extensions, operators reaping strays, deliberate chaos tests.
A crashed worker must never silently swallow a run (PR 9 only *marked*
such runs ``lost``); it must be detected, resubmitted up to a bounded
budget with backoff, and surfaced as ``retried``/``lost`` either way.

This module is the one place that policy lives:

* :func:`is_worker_crash` classifies an exception as "the worker died"
  (as opposed to "the simulation raised", which is a real error and
  must propagate — retrying deterministic code on a deterministic
  exception would loop forever on a genuine bug).
* :class:`RetryPolicy` carries the resubmission budget
  (``REPRO_SERVE_RETRIES``) and computes deterministic exponential
  backoff delays.  Delays are *computed* here and *slept* by the
  caller, so this module stays free of wall-clock access and the
  policy is unit-testable without waiting.

Results are unaffected by contract: a retried job recomputes the
identical bit-identical result, so retry counts never enter cache
fingerprints or result payloads.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

from .. import env

#: Environment knob naming the shared resubmission budget.
RETRIES_ENV_VAR = "REPRO_SERVE_RETRIES"

#: Default resubmissions of a crashed/timed-out job before ``lost``.
DEFAULT_RETRIES = 2

#: First backoff delay; doubles per attempt up to the cap.
DEFAULT_BASE_DELAY_S = 0.1
DEFAULT_MAX_DELAY_S = 5.0


class WorkerCrashError(RuntimeError):
    """A worker process died (or timed out) before reporting a result.

    Raised by executors that manage their own child processes (the
    serve job pool); the stdlib process pool signals the same condition
    with :class:`BrokenExecutor`.  Both classify as retryable.
    """


def is_worker_crash(exc: BaseException) -> bool:
    """True when ``exc`` means "the worker died", not "the code raised".

    ``BrokenExecutor`` (and its ``BrokenProcessPool`` subclass) is the
    stdlib pool's worker-death signal; :class:`WorkerCrashError` is the
    serve pool's.  Anything else — including errors raised *by* the
    simulation — is deterministic and must not be retried.
    """
    return isinstance(exc, (BrokenExecutor, WorkerCrashError))


def default_retries() -> int:
    """The configured resubmission budget (``REPRO_SERVE_RETRIES``)."""
    return env.positive_int(RETRIES_ENV_VAR, DEFAULT_RETRIES)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded resubmission with deterministic exponential backoff.

    ``retries`` is the number of *re*-submissions after the first
    attempt: a job is tried at most ``retries + 1`` times.  Backoff is
    jitter-free on purpose — the consumers are a single parent process
    resubmitting to its own pool, where jitter buys nothing and
    determinism keeps tests exact.
    """

    retries: int
    base_delay_s: float = DEFAULT_BASE_DELAY_S
    max_delay_s: float = DEFAULT_MAX_DELAY_S

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        return cls(retries=default_retries())

    def should_retry(self, attempts: int) -> bool:
        """May a job that has already run ``attempts`` times run again?"""
        return attempts <= self.retries

    def delay_s(self, attempts: int) -> float:
        """Backoff before resubmission number ``attempts`` (1-based).

        ``delay_s(1)`` is the base delay, doubling per attempt and
        saturating at ``max_delay_s``.
        """
        if attempts <= 0:
            return 0.0
        return min(self.base_delay_s * (2.0 ** (attempts - 1)), self.max_delay_s)
