"""Sharded lazy min-heap over component wake times (the wake index).

The event engine needs, on every iteration, the earliest cycle at which
any component's tick could do unskippable work.  PR 3 answered that
with a linear scan over every controller and core — O(n) per event, the
loop the ROADMAP names as the blocker for many-core scale-out.  The
wake index replaces the scan with per-shard min-heaps of
``(wake_time, epoch, slot)`` entries:

* **Slots** are stable small integers assigned by the system — one per
  controller and one per core.  The system publishes a slot's wake only
  when the component's externally visible state changed (it was ticked,
  or it accepted a request/fill), mirroring the activity-counter cache
  the scan engine already kept for cores.
* **Epoch invalidation**: each publish bumps the slot's epoch and
  pushes a fresh entry; entries whose epoch no longer matches are stale
  and are popped and discarded on first contact (``stale_pops`` counts
  them).  At most one entry per slot is live at any time, so heap size
  is bounded by slots plus not-yet-collected garbage.
* **Sharding**: each controller lives in its own shard and all cores
  share one, so a channel's bank/refresh/legality wake churn touches
  only that channel's heap.  The global minimum is the min over shard
  tops — O(shards) peeks plus amortized stale-entry collection.

Correctness leans on the WAKE400 wake-time contracts: published wakes
are conservative (early answers are safe — the engine just steps a
no-op cycle) and a component's wake bound cannot move *earlier* while
the component is untouched, so retained entries never cause a late
wake.  The differential suites (golden matrix, ``repro-fqms check``,
``tests/sim/test_wakeindex.py``) prove the indexed engine bit-identical
to the scan oracle kept behind ``REPRO_WAKE_INDEX=0``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

#: Published wake meaning "no self-generated event" (matches the scan
#: engine's ``CmpSystem._NO_EVENT`` sentinel).  Slots at NO_EVENT hold
#: no live heap entry at all: an idle component costs nothing.
NO_EVENT = 1 << 62


class WakeIndex:
    """Lazy sharded min-heap of component wake times."""

    __slots__ = ("_shard_of", "_heaps", "_wakes", "_epochs",
                 "stale_pops", "publishes")

    def __init__(self, shard_of: List[int]):
        """Build an index over ``len(shard_of)`` slots.

        ``shard_of[slot]`` names the shard (a dense small integer) whose
        heap carries that slot's entries.
        """
        if not shard_of:
            raise ValueError("wake index needs at least one slot")
        num_shards = max(shard_of) + 1
        if min(shard_of) < 0:
            raise ValueError(f"negative shard id in {shard_of!r}")
        self._shard_of = list(shard_of)
        self._heaps: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(num_shards)
        ]
        self._wakes: List[int] = [NO_EVENT] * len(shard_of)
        self._epochs: List[int] = [0] * len(shard_of)
        #: Stale entries discarded during peeks/pops (instrumentation).
        self.stale_pops = 0
        #: Wake changes actually recorded (no-op republishes excluded).
        self.publishes = 0

    def wake_of(self, slot: int) -> int:
        """The slot's currently published wake (NO_EVENT when idle)."""
        return self._wakes[slot]

    def publish(self, slot: int, wake: Optional[int]) -> None:
        """Record ``slot``'s new wake bound, invalidating the old entry.

        ``None`` (and anything at or past NO_EVENT) means "no
        self-generated event".  Republishing an unchanged wake is a
        no-op — the live entry already says exactly this — which is
        what keeps heap garbage proportional to real wake *changes*.
        """
        if wake is None or wake >= NO_EVENT:
            wake = NO_EVENT
        wakes = self._wakes
        if wake == wakes[slot]:
            return
        wakes[slot] = wake
        epoch = self._epochs[slot] + 1
        self._epochs[slot] = epoch
        self.publishes += 1
        if wake < NO_EVENT:
            heappush(self._heaps[self._shard_of[slot]], (wake, epoch, slot))

    def min_wake(self) -> int:
        """The earliest live published wake (NO_EVENT when all idle).

        Peeks each shard's top, popping stale entries until a live one
        (or an empty heap) surfaces.  Does not consume live entries.
        """
        best = NO_EVENT
        epochs = self._epochs
        for heap in self._heaps:
            while heap:
                wake, epoch, slot = heap[0]
                if epoch != epochs[slot]:
                    heappop(heap)
                    self.stale_pops += 1
                    continue
                if wake < best:
                    best = wake
                break
        return best

    def pop_due(self, now: int, due: List[bool]) -> int:
        """Consume every live entry with ``wake <= now``.

        Sets ``due[slot] = True`` for each and resets the slot's
        published wake to NO_EVENT (the component is about to be ticked
        and must republish), so an identical post-tick wake still lands
        back in the heap.  Returns the number of due slots found.
        """
        count = 0
        epochs = self._epochs
        wakes = self._wakes
        for heap in self._heaps:
            while heap:
                wake, epoch, slot = heap[0]
                if wake > now:
                    break
                heappop(heap)
                if epoch != epochs[slot]:
                    self.stale_pops += 1
                    continue
                wakes[slot] = NO_EVENT
                due[slot] = True
                count += 1
        return count
