"""Persistent content-addressed result store for simulation runs.

Every figure in the evaluation is a sweep of *independent, fully
deterministic* simulations, so a run is reproducible from its inputs
alone: the :class:`~repro.sim.config.SystemConfig`, the workload
profiles, the run window (cycles + warmup), and the seed.  This module
fingerprints those inputs — plus a *code salt* derived from the
package sources, so any change to simulator code invalidates stale
entries — and stores each :class:`~repro.sim.system.SimResult` as a
small JSON document under a content-addressed path.

The cache is transparent: a hit returns a ``SimResult`` equal to what
a fresh simulation would produce (JSON round-trips Python floats
exactly).  Layering, fastest first:

1. the in-process memo in :mod:`repro.sim.runner` (object identity),
2. this on-disk store (survives across processes and pytest runs),
3. a fresh simulation (whose result is written back to both).

Configuration:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-fqms``).
* ``REPRO_NO_CACHE=1`` — disable the disk layer entirely.
* ``REPRO_CACHE_SALT`` — override the source-derived code salt
  (used by tests; also handy to pin a salt across checkouts).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from .. import env
from .system import SimResult, ThreadResult

#: Bump when the stored JSON layout changes shape.
SCHEMA_VERSION = 1

#: Default cache root when ``REPRO_CACHE_DIR`` is unset.
DEFAULT_CACHE_DIR = Path("~/.cache/repro-fqms")

_code_salt_memo: Optional[str] = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (or ``REPRO_CACHE_SALT``).

    Baked into every fingerprint so a simulator code change can never
    satisfy a lookup with results computed by older code.
    """
    override = env.raw("REPRO_CACHE_SALT")
    if override:
        return override
    global _code_salt_memo
    if _code_salt_memo is None:
        digest = hashlib.sha256()
        package_root = Path(__file__).resolve().parent.parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_salt_memo = digest.hexdigest()[:16]
    return _code_salt_memo


def _profile_payload(profile: Any) -> Any:
    """Canonical content of one workload profile.

    Profiles are fingerprinted by *content*, not name, so a test that
    registers a modified profile under an existing name cannot hit a
    stale entry.
    """
    if dataclasses.is_dataclass(profile) and not isinstance(profile, type):
        return {type(profile).__name__: dataclasses.asdict(profile)}
    return repr(profile)


def fingerprint(
    config: Any,
    profiles: Sequence[Any],
    cycles: int,
    warmup: int,
    seed: int,
) -> str:
    """Content hash identifying one simulation run."""
    payload = {
        "schema": SCHEMA_VERSION,
        "salt": code_salt(),
        "config": dataclasses.asdict(config),
        "profiles": [_profile_payload(p) for p in profiles],
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- SimResult <-> JSON ----------------------------------------------------


def result_to_json(result: SimResult) -> Dict[str, Any]:
    """Plain-JSON form of a :class:`SimResult` (exact float round-trip)."""
    return {
        "schema": SCHEMA_VERSION,
        "policy": result.policy,
        "cycles": result.cycles,
        "threads": [dataclasses.asdict(t) for t in result.threads],
        "data_bus_utilization": result.data_bus_utilization,
        "bank_utilization": result.bank_utilization,
        "refreshes": result.refreshes,
        "extras": dict(result.extras),
    }


def result_from_json(payload: Dict[str, Any]) -> SimResult:
    """Rebuild a :class:`SimResult` stored by :func:`result_to_json`.

    ``extras`` is a *required* payload key: the engine counters ride in
    it, and silently defaulting them away would make cache hits
    distinguishable from fresh runs.  A payload without it (hand-edited
    or written by a pre-``extras`` schema) raises ``KeyError``, which
    :meth:`ResultCache.get` treats as a miss — the run is simply
    re-simulated and re-stored.
    """
    return SimResult(
        policy=payload["policy"],
        cycles=payload["cycles"],
        threads=[ThreadResult(**t) for t in payload["threads"]],
        data_bus_utilization=payload["data_bus_utilization"],
        bank_utilization=payload["bank_utilization"],
        refreshes=payload.get("refreshes", 0),
        extras=dict(payload["extras"]),
    )


# -- the store -------------------------------------------------------------


class ResultCache:
    """Content-addressed on-disk store of simulation results.

    Entries live at ``<root>/<key[:2]>/<key>.json``; writes go through
    a temporary file and ``os.replace`` so concurrent writers (the
    parallel engine's workers, or several pytest sessions) can never
    leave a torn entry behind.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        #: Completed writes (skips best-effort failures); harvested
        #: into run manifests alongside hits/misses.
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """The stored result for ``key``, or None (corrupt counts as miss)."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("schema") != SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            result = result_from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins).

        Best-effort: an unwritable cache root (read-only filesystem,
        a file where the directory should be, disk full) must degrade
        to "no cache", never kill a sweep mid-run.
        """
        path = self.path_for(key)
        payload = json.dumps(result_to_json(result), sort_keys=True)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
            self.stores += 1
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


# -- process-wide active cache --------------------------------------------

_UNSET = object()
_active: Any = _UNSET


def active_cache() -> Optional[ResultCache]:
    """The process-wide cache, configured from the environment on first use."""
    global _active
    if _active is _UNSET:
        if env.truthy("REPRO_NO_CACHE"):
            _active = None
        else:
            root = env.raw("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
            _active = ResultCache(root)
    return _active


def configure_cache(
    cache_dir: Optional[Union[str, os.PathLike]] = None, enabled: bool = True
) -> Optional[ResultCache]:
    """Explicitly set the process-wide cache (CLI ``--cache-dir``/``--no-cache``).

    ``enabled=False`` turns the disk layer off; otherwise ``cache_dir``
    (or the environment/default resolution) selects the root.
    """
    global _active
    if not enabled:
        _active = None
    elif cache_dir is not None:
        _active = ResultCache(cache_dir)
    else:
        _active = _UNSET
        return active_cache()
    return _active
