"""The CMP system: cores + interconnect latencies + controller + DRAM.

Builds the full simulated machine from a :class:`SystemConfig` and a
list of benchmark profiles (one per core), runs it for a bounded number
of cycles with an optional warmup, and reports windowed statistics.

The only shared resource is the SDRAM memory system, matching the
paper's methodology: each core has private caches and a private slice
of the physical address space (threads still contend for the same
banks, rows, and buses through the shared address map).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from .. import env
from ..check import RunChecker, checks_enabled
from ..controller.address_map import AddressMap
from ..controller.controller import MemoryController
from ..controller.request import MemoryRequest, RequestKind
from ..cpu.core_model import OooCore
from ..cpu.hierarchy import CacheHierarchy
from ..dram.dram_system import DramSystem
from ..obs import RunObs, obs_enabled, phases_enabled
from ..obs.engine import ENGINE_EXTRA_PREFIX, engine_extras
from ..policy import make_policy
from ..telemetry import RunTelemetry, trace_enabled
from .config import SystemConfig
from .wakeindex import WakeIndex


def wake_index_enabled() -> bool:
    """``REPRO_WAKE_INDEX`` gate (default on; ``0``/``false`` is off).

    Off keeps the PR 3 linear wake scan as the differential oracle.
    The knob is semantics-free: both engines are bit-identical by
    contract (and by the differential suites).  Read at system
    construction so the parallel engine's worker processes inherit the
    choice, exactly like ``REPRO_CHECK``.
    """
    return env.text("REPRO_WAKE_INDEX").strip().lower() not in ("0", "false")


@dataclass
class ThreadResult:
    """Windowed per-thread measurements."""

    name: str
    instructions: float
    cycles: int
    mean_read_latency: float
    bus_utilization: float
    reads: int
    writes: int
    nacks: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measured window."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class SimResult:
    """Windowed whole-system measurements for one run."""

    policy: str
    cycles: int
    threads: List[ThreadResult]
    data_bus_utilization: float
    bank_utilization: float
    refreshes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def thread(self, name: str) -> ThreadResult:
        """Look up a thread result by benchmark name."""
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(f"no thread named {name!r}")


class CmpSystem:
    """A runnable CMP + memory-system instance."""

    def __init__(
        self,
        config: SystemConfig,
        profiles: Sequence,
        check: Optional[bool] = None,
        trace: Optional[bool] = None,
        wake_index: Optional[bool] = None,
        obs: Optional[bool] = None,
    ):
        """Build a system running one workload per core.

        ``profiles`` entries may be synthetic
        :class:`~repro.workloads.synthetic.BenchmarkProfile` objects or
        recorded :class:`~repro.workloads.trace_workload.TraceWorkload`
        streams — anything exposing ``name``, ``make_trace`` and
        ``prewarm_stream``.

        ``check`` attaches the :mod:`repro.check` runtime validators
        (protocol sanitizer + scheduler invariant checker) to every
        controller; ``None`` defers to the ``REPRO_CHECK`` environment
        variable so checked runs survive the parallel engine's process
        pool.  Checking never changes results — only whether violations
        raise.

        ``trace`` attaches the :mod:`repro.telemetry` observers
        (request-lifecycle tracer + interval sampler) the same way;
        ``None`` defers to ``REPRO_TRACE``.  Tracing never changes
        results either — hooks are pure readers.

        ``obs`` attaches the :mod:`repro.obs` engine-internals metrics
        registry (wake-index churn, legality-kernel traffic, policy-key
        memo effectiveness; with ``REPRO_OBS_PHASES`` also event-loop
        phase timings) the same way; ``None`` defers to ``REPRO_OBS``.
        Another pure observer — the obs-on/off differential tests pin
        bit-identical results.

        ``wake_index`` selects the event engine's targeting machinery:
        True uses the sharded wake index with sparse ticking, False the
        PR 3 linear scan (the differential oracle); ``None`` defers to
        ``REPRO_WAKE_INDEX`` (default on).  Results are bit-identical
        either way.
        """
        if len(profiles) != config.num_cores:
            raise ValueError(
                f"{len(profiles)} profiles for {config.num_cores} cores"
            )
        self.config = config
        self.profiles = list(profiles)
        self.address_map = AddressMap(
            line_bytes=config.l2.line_bytes,
            num_ranks=config.num_ranks,
            num_banks=config.num_banks,
            columns_per_row=config.columns_per_row,
            num_channels=config.num_channels,
            xor_bank=config.xor_bank,
        )
        # One independent DRAM device + controller per channel (the
        # paper evaluates a single channel; multi-channel is its stated
        # future work).  Each thread holds its share φ of *every*
        # channel, so per-channel VTMS state is the natural extension.
        # Stateful policies (BLISS, MISE) get a fresh instance per
        # channel — their bookkeeping is per-controller.
        self.drams: List[DramSystem] = []
        self.controllers: List[MemoryController] = []
        for _ in range(config.num_channels):
            dram = DramSystem(
                config.timing,
                num_ranks=config.num_ranks,
                num_banks=config.num_banks,
                enable_refresh=config.enable_refresh,
            )
            self.drams.append(dram)
            self.controllers.append(
                MemoryController(
                    dram=dram,
                    address_map=self.address_map,
                    num_threads=config.num_cores,
                    policy=make_policy(config),
                    shares=config.shares,
                    read_entries_per_thread=config.read_entries_per_thread,
                    write_entries_per_thread=config.write_entries_per_thread,
                    row_policy=config.row_policy,
                    write_drain=config.write_drain,
                )
            )
        #: Single-channel aliases (the common case and the public API).
        self.dram = self.drams[0]
        self.controller = self.controllers[0]
        if check is None:
            check = checks_enabled()
        self.check = check
        self.checkers: List[RunChecker] = []
        if check:
            for controller in self.controllers:
                checker = RunChecker(controller)
                controller.checker = checker
                self.checkers.append(checker)
        #: Requests in flight toward the controllers: (arrival, seq, request).
        self._to_controller: List[Tuple[int, int, MemoryRequest]] = []
        #: Fills in flight toward cores: (deliver, seq, thread, line).
        self._to_cores: List[Tuple[int, int, int, int]] = []
        self._in_transit: List[List[Dict[RequestKind, int]]] = [
            [
                {RequestKind.READ: 0, RequestKind.WRITE: 0}
                for _ in range(config.num_channels)
            ]
            for _ in range(config.num_cores)
        ]
        #: Interface queues: requests that arrived at their channel's
        #: controller but were NACKed (buffer partition full), indexed
        #: [channel][thread].
        self._awaiting_mc: List[List[Deque[MemoryRequest]]] = [
            [deque() for _ in range(config.num_cores)]
            for _ in range(config.num_channels)
        ]
        #: Dirty set of non-empty interface queues, so the per-cycle
        #: retry scan touches only (channel, thread) pairs with queued
        #: requests instead of all channels × all threads.
        self._awaiting_nonempty: Set[Tuple[int, int]] = set()
        #: The same occupancy, indexed per channel: the acceptance
        #: probe and the retry pass walk only occupied channels and
        #: skip empty shards outright.
        self._awaiting_by_channel: List[Set[int]] = [
            set() for _ in range(config.num_channels)
        ]
        #: Per-channel buffer version at the last all-rejected
        #: acceptance probe (-1 = must probe).  Acceptance can only
        #: flip to True when the channel's buffer occupancy moves, so
        #: an unchanged version proves the probe would repeat itself.
        self._probe_versions: List[int] = [-1] * config.num_channels
        #: Writes sitting in each interface queue, indexed
        #: [channel][thread] — consulted on every writeback submit for
        #: credit flow control, so counted incrementally.
        self._awaiting_writes: List[List[int]] = [
            [0] * config.num_cores for _ in range(config.num_channels)
        ]
        self._fill_seq = 0
        self.now = 0
        #: Event-engine state: cached per-core wake times (None = must
        #: recompute; _NO_EVENT = no self-generated event), plus a
        #: per-core activity counter bumped on every accepted submit and
        #: delivered fill so the cache invalidates when a stepped cycle
        #: changed a core's externally-visible state.
        self._core_wake: List[Optional[int]] = [None] * config.num_cores
        self._core_activity: List[int] = [0] * config.num_cores
        self._activity_seen: List[int] = [0] * config.num_cores
        #: Engine instrumentation: cycles stepped vs cycles skipped,
        #: plus targeting-call and component-tick counts for the
        #: engine-internals block in the throughput benchmarks.
        self.engine_steps = 0
        self.engine_cycles_skipped = 0
        self.engine_event_target_calls = 0
        self.engine_component_ticks = 0
        # -- wake-index state (None = linear-scan oracle) ---------------
        # Slot layout: controllers at [0, num_channels), cores after.
        # Each controller gets its own shard; cores share one, so a
        # channel's wake churn touches only that channel's heap.
        self._core_slot0 = config.num_channels
        self._num_slots = config.num_channels + config.num_cores
        if wake_index is None:
            wake_index = wake_index_enabled()
        self._windex: Optional[WakeIndex] = None
        if wake_index and config.engine == "event":
            self._windex = WakeIndex(
                list(range(config.num_channels))
                + [config.num_channels] * config.num_cores
            )
        #: Exclusive cycle each component's accounting has reached.  An
        #: un-due component is not touched at all while the engine runs
        #: ahead; its skipped span is applied lazily (catch-up) when it
        #: next becomes due, receives a delivery, or at a sync barrier
        #: (sample boundaries, snapshots, end of run).
        self._synced: List[int] = [0] * self._num_slots
        #: Components that must tick on the current stepped cycle.
        self._due_flag: List[bool] = [False] * self._num_slots
        #: Slots whose published wake is stale (touched since the last
        #: publish); refreshed in one pass per targeting call.
        self._dirty_slots: List[int] = list(range(self._num_slots))
        self._dirty_flag: List[bool] = [True] * self._num_slots
        #: Cores holding a NACK-blocked head writeback, mapped to the
        #: (channel, buffer version) of the last blocked verdict; the
        #: unblock probe re-runs only when the version moved.
        self._wb_blocked: Dict[int, Tuple[int, int]] = {}
        self.cores: List[OooCore] = []
        for core_id, workload in enumerate(self.profiles):
            base_address = core_id * config.thread_address_stride
            generator = workload.make_trace(config.seed, base_address)
            hierarchy = CacheHierarchy(config.l1i, config.l1d, config.l2)
            self._prewarm(hierarchy, workload, config.seed, base_address)
            core = OooCore(
                core_id=core_id,
                config=config.core,
                trace=generator,
                hierarchy=hierarchy,
                submit=self._make_submit(core_id),
            )
            self.cores.append(core)
        if trace is None:
            trace = trace_enabled()
        #: Optional observability layer (repro.telemetry); one shared
        #: instance fanned out to every hook site, or None (the normal
        #: case — each site then pays one attribute test per event).
        self.telemetry: Optional[RunTelemetry] = None
        if trace:
            telemetry = RunTelemetry(self)
            self.telemetry = telemetry
            for controller in self.controllers:
                controller.telemetry = telemetry
                controller.channel_scheduler.telemetry = telemetry
                for scheduler in controller.bank_schedulers:
                    scheduler.telemetry = telemetry
            for core in self.cores:
                core.telemetry = telemetry
        if obs is None:
            obs = obs_enabled()
        #: Optional engine-internals observability (repro.obs); like
        #: telemetry, one shared instance fanned out at attach time, or
        #: None (each hot site then pays one attribute test).
        self.obs: Optional[RunObs] = None
        #: The phase timer alone, hoisted by the engine loops; None
        #: unless both REPRO_OBS and REPRO_OBS_PHASES are set.
        self._obs_phases = None
        if obs:
            run_obs = RunObs(phase_timing=phases_enabled())
            self.obs = run_obs
            self._obs_phases = run_obs.phases
            run_obs.attach(self)

    #: Memoized prewarm fill sequences, keyed by (workload, seed,
    #: base address, line size).  The stream is a pure function of the
    #: key, so replaying the recorded (line, dirty) pairs produces a
    #: bit-identical warm cache while skipping the synthetic trace
    #: generator — the dominant cost of building a system, paid
    #: repeatedly by benchmark rounds and figure sweeps that rebuild
    #: the same workloads.  Bounded, least-recently-inserted eviction.
    _prewarm_memo: "OrderedDict[Tuple, List[Tuple[int, bool]]]" = OrderedDict()
    _PREWARM_MEMO_CAP = 64

    def _prewarm(
        self,
        hierarchy: CacheHierarchy,
        workload,
        seed: int,
        base_address: int,
    ) -> None:
        """Warm the L2 with the workload's prewarm stream.

        The stream comes from a twin of the live trace, so measurement
        starts in cache steady state without perturbing the replay.
        """
        fills: Optional[List[Tuple[int, bool]]] = None
        key: Optional[Tuple] = None
        try:
            key = (workload, seed, base_address, hierarchy.l2.config.line_bytes)
            fills = self._prewarm_memo.get(key)
        except TypeError:
            # Unhashable workload (e.g. a mutable trace replay): skip
            # the memo and generate the stream directly.
            key = None
        if fills is None:
            fills = [
                (hierarchy.line_of(record.address), record.is_write)
                for record in workload.prewarm_stream(seed, base_address)
            ]
            if key is not None:
                memo = self._prewarm_memo
                memo[key] = fills
                while len(memo) > self._PREWARM_MEMO_CAP:
                    memo.popitem(last=False)
        l2_fill = hierarchy.l2.fill
        for line, dirty in fills:
            l2_fill(line, dirty=dirty)
        hierarchy.l2.hits = 0
        hierarchy.l2.misses = 0
        hierarchy.l2.writebacks = 0
        hierarchy.pending_writebacks.clear()

    # -- flow control ------------------------------------------------------

    def _make_submit(self, core_id: int):
        def submit(request: MemoryRequest) -> bool:
            request.channel = self.address_map.channel_of(request.address)
            if request.kind is RequestKind.WRITE:
                # Writebacks are credit-controlled end to end: the core's
                # writeback queue absorbs NACK back-pressure, exactly the
                # paper's per-thread write-buffer partitioning.
                controller = self.controllers[request.channel]
                in_transit = self._in_transit[core_id][request.channel][
                    RequestKind.WRITE
                ]
                waiting_writes = self._awaiting_writes[request.channel][core_id]
                occupied = (
                    controller.buffers.occupancy(core_id, RequestKind.WRITE)
                    + in_transit
                    + waiting_writes
                )
                if occupied >= controller.buffers.write_capacity:
                    return False
                self._in_transit[core_id][request.channel][RequestKind.WRITE] += 1
            # Reads are bounded by the core's MSHR file; requests that
            # find the transaction-buffer partition full on arrival wait
            # at the controller interface and retry each cycle.
            arrival = self.now + self.config.front_latency
            heapq.heappush(self._to_controller, (arrival, request.seq, request))
            self._core_activity[core_id] += 1
            return True

        return submit

    def _deliver_to_controller(self, now: int) -> None:
        """Move arrived requests into their controllers, oldest first.

        A request whose buffer partition is full waits in its thread's
        interface queue (the paper's NACK back-pressure); it retries
        every cycle and enters in arrival order.
        """
        while self._to_controller and self._to_controller[0][0] <= now:
            _, _, request = heapq.heappop(self._to_controller)
            if request.kind is RequestKind.WRITE:
                self._in_transit[request.thread_id][request.channel][
                    request.kind
                ] -= 1
                self._awaiting_writes[request.channel][request.thread_id] += 1
            self._awaiting_mc[request.channel][request.thread_id].append(request)
            self._awaiting_nonempty.add((request.channel, request.thread_id))
            self._awaiting_by_channel[request.channel].add(request.thread_id)
        if not self._awaiting_nonempty:
            return
        # Retry pass, channel-major then thread order — the same
        # lexicographic (channel, thread) sequence the old sorted() pass
        # produced, without building the sorted temporary.  The
        # can_accept pre-gate is exactly the reserve predicate, so a
        # rejected head takes the same one-NACK accounting a failed
        # try_enqueue would have charged, without constructing the
        # enqueue attempt (and, under the wake index, without waking a
        # deferred controller).
        indexed = self._windex is not None
        num_threads = self.config.num_cores
        for channel, threads in enumerate(self._awaiting_by_channel):
            if not threads:
                continue
            controller = self.controllers[channel]
            channel_queues = self._awaiting_mc[channel]
            can_accept = controller.buffers.can_accept
            drained: List[int] = []
            for thread_id in range(num_threads):
                if thread_id not in threads:
                    continue
                thread_queue = channel_queues[thread_id]
                while thread_queue:
                    head = thread_queue[0]
                    if not can_accept(thread_id, head.kind):
                        controller.skip_interface_nacks(thread_id, 1)
                        break
                    if indexed:
                        # The acceptance mutates controller state: catch
                        # its deferred span up first (arrival stamps and
                        # the FQ real clock must read post-span state)
                        # and make sure it ticks this cycle.
                        self._catch_up_controller(channel, now)
                        self._due_flag[channel] = True
                    if not controller.try_enqueue(head):  # pragma: no cover
                        break  # unreachable: can_accept gates reserve
                    thread_queue.popleft()
                    if head.kind is RequestKind.WRITE:
                        self._awaiting_writes[channel][thread_id] -= 1
                if not thread_queue:
                    drained.append(thread_id)
            for thread_id in drained:
                threads.discard(thread_id)
                self._awaiting_nonempty.discard((channel, thread_id))

    # -- main loop --------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        now = self.now
        if self._windex is not None:
            # Manual stepping on an indexed system: catch every
            # deferred component up first (normally a no-op — the
            # indexed loop syncs on exit) and mark all wakes stale
            # after, since this full step ticks everything.
            self._sync_all(now)
        if self.telemetry is not None:
            # Sample at the top of the cycle, before any component
            # moves: both engines step every sample boundary (the event
            # engine clamps its skip targets to ``next_sample``), so on
            # or off, per-cycle or event-driven, the sampler observes
            # the exact same top-of-boundary state.
            self.telemetry.maybe_sample(now)
        phases = self._obs_phases
        if phases is not None:
            phases.begin("delivery")
        self._deliver_to_controller(now)
        if phases is not None:
            phases.begin("scheduling")
        for controller in self.controllers:
            for request in controller.tick(now):
                line = request.address >> self.address_map.offset_bits
                self._fill_seq += 1
                heapq.heappush(
                    self._to_cores,
                    (
                        now + self.config.back_latency,
                        self._fill_seq,
                        request.thread_id,
                        line,
                    ),
                )

        if phases is not None:
            phases.begin("dispatch")
        while self._to_cores and self._to_cores[0][0] <= now:
            _, _, thread_id, line = heapq.heappop(self._to_cores)
            self._core_activity[thread_id] += 1
            self.cores[thread_id].on_fill(line, now)

        for core in self.cores:
            core.tick(now)

        self.now = now + 1
        if self._windex is not None:
            self._after_full_step()

    # -- event-driven engine ------------------------------------------------
    #
    # Every component publishes the earliest cycle at which its tick
    # could do unskippable work — even while active: controllers from
    # their timing-ledger sleep times, in-flight data, and refresh
    # deadlines; cores from their next retire/fetch/local-completion
    # event; the interconnect heaps from their head timestamps.  The
    # loop jumps straight to the minimum, bulk-accounting the skipped
    # span (cycle and NACK counters, retirement, the FQ real clock) so
    # results are bit-identical to stepping every cycle.  Wake times
    # are conservative bounds: answering early just steps a no-op
    # cycle, which is always safe.

    #: Cached wake-time marker for "no self-generated event".
    _NO_EVENT = 1 << 62

    def _writeback_blocked(self, core: OooCore) -> bool:
        """True when the core's head writeback would be NACKed this cycle.

        The predicate mirrors the submit-time credit check exactly; its
        inputs (buffer occupancy, in-transit counts, interface-queue
        depth) only change at stepped cycles, so a head rejected at the
        start of a span stays rejected throughout it.
        """
        line = core.hierarchy.pending_writebacks[0]
        address = core.hierarchy.line_address(line)
        channel = self.address_map.channel_of(address)
        controller = self.controllers[channel]
        occupied = (
            controller.buffers.occupancy(core.core_id, RequestKind.WRITE)
            + self._in_transit[core.core_id][channel][RequestKind.WRITE]
            + self._awaiting_writes[channel][core.core_id]
        )
        return occupied >= controller.buffers.write_capacity

    def _acceptance_due(self) -> bool:
        """True when some NACKed interface-queue head would be accepted.

        Version-gated per channel: acceptance is a pure function of the
        channel's buffer occupancy, which moves only on reserve/release
        (stepped-cycle events that bump ``buffers.version``), so a
        channel whose version is unchanged since its last all-rejected
        probe is skipped without touching its queues — and channels
        with no occupied queue cost nothing at all.
        """
        versions = self._probe_versions
        controllers = self.controllers
        queues = self._awaiting_mc
        for channel, threads in enumerate(self._awaiting_by_channel):
            if not threads:
                continue
            buffers = controllers[channel].buffers
            version = buffers.version
            if version == versions[channel]:
                continue
            channel_queues = queues[channel]
            can_accept = buffers.can_accept
            for thread_id in threads:  # det: allow(pure any-probe, order-free)
                if can_accept(thread_id, channel_queues[thread_id][0].kind):
                    return True
            versions[channel] = version
        return False

    def _event_target(self, limit: int) -> int:
        """Earliest cycle in ``[now, limit]`` that must be stepped."""
        now = self.now
        self.engine_event_target_calls += 1
        target = limit
        if self.telemetry is not None:
            # Sampling deadlines are events: never skip across one, so
            # the boundary cycle is stepped and sampled at its top.
            deadline = self.telemetry.next_sample
            if deadline <= now:
                return now
            if deadline < target:
                target = deadline
        if self._to_controller:
            head = self._to_controller[0][0]
            if head <= now:
                return now
            if head < target:
                target = head
        if self._to_cores:
            head = self._to_cores[0][0]
            if head <= now:
                return now
            if head < target:
                target = head
        # A NACKed interface-queue head that would now be accepted must
        # enter via a real step; heads that stay rejected are pure
        # counter traffic, replicated in bulk by _skip_span.
        if self._acceptance_due():
            return now
        for controller in self.controllers:
            wake = controller.next_event_time(now)
            if wake is not None:
                if wake <= now:
                    return now
                if wake < target:
                    target = wake
        wake_cache = self._core_wake
        for i, core in enumerate(self.cores):
            if core.has_blocked_writeback() and not self._writeback_blocked(core):
                wake_cache[i] = None
                return now
            wake = wake_cache[i]
            if wake is None or wake <= now:
                wake = core.wake_time(now)
                wake = self._NO_EVENT if wake is None else wake
                wake_cache[i] = wake
            if wake <= now:
                wake_cache[i] = None
                return now
            if wake < target:
                target = wake
        return target

    def _skip_span(self, target: int) -> None:
        """Bulk-account the no-op cycles ``[self.now, target)``."""
        now = self.now
        for core in self.cores:
            core.skip(now, target)
        for controller in self.controllers:
            controller.skip_cycles(now, target)
        span = target - now
        for channel, thread_id in self._awaiting_nonempty:  # det: allow(commutative counter adds, order-free)
            # One rejected head-of-queue retry per cycle per queue.
            self.controllers[channel].skip_interface_nacks(thread_id, span)
        self.engine_cycles_skipped += span
        self.now = target

    def _run_event(self, limit: int) -> None:
        activity = self._core_activity
        seen = self._activity_seen
        wake_cache = self._core_wake
        phases = self._obs_phases
        while self.now < limit:
            if phases is not None:
                phases.begin("targeting")
            target = self._event_target(limit)
            if target > self.now:
                self._skip_span(target)
                if self.now >= limit:
                    break
            self.engine_steps += 1
            self.step()
            # Invalidate wake caches of cores whose externally-visible
            # state changed this cycle (accepted submits, delivered
            # fills); everything else keeps its cached wake time.
            for i in range(len(seen)):
                if activity[i] != seen[i]:
                    seen[i] = activity[i]
                    wake_cache[i] = None

    # -- wake-index engine ---------------------------------------------------
    #
    # The indexed engine (PR 8) replaces both O(n) loops the scan
    # engine kept: event targeting reads a sharded lazy min-heap of
    # published wakes instead of scanning every component, and stepped
    # cycles tick only the components that are actually due (heap pop)
    # or receive a delivery, instead of broadcasting to all of them.
    # Un-due components are not even charged their skip accounting per
    # cycle — each keeps a ``_synced`` watermark and is caught up
    # lazily, in one bulk ``skip``/``skip_cycles`` call, when it next
    # matters.  Safety rests on the WAKE400 contracts: a published wake
    # is a conservative bound that cannot move earlier while the
    # component is untouched, so every cycle skipped or deferred is
    # provably a no-op for that component.

    def _catch_up_controller(self, channel: int, now: int) -> None:
        """Apply a deferred controller's skipped span up to ``now``."""
        synced = self._synced
        if synced[channel] < now:
            self.controllers[channel].skip_cycles(synced[channel], now)
            synced[channel] = now

    def _mark_dirty(self, slot: int) -> None:
        """Queue ``slot`` for a wake republish at the next targeting call."""
        if not self._dirty_flag[slot]:
            self._dirty_flag[slot] = True
            self._dirty_slots.append(slot)

    def _sync_all(self, now: int) -> None:
        """Catch every deferred component up to ``now``.

        The barrier before anything that reads whole-system state:
        telemetry sample boundaries, snapshots, manual ``step()``, and
        the end of an indexed run.
        """
        synced = self._synced
        controllers = self.controllers
        for channel in range(self._core_slot0):
            if synced[channel] < now:
                controllers[channel].skip_cycles(synced[channel], now)
                synced[channel] = now
        base = self._core_slot0
        for i, core in enumerate(self.cores):
            slot = base + i
            if synced[slot] < now:
                core.skip(synced[slot], now)
                synced[slot] = now

    def _after_full_step(self) -> None:
        """Reconcile index state after a broadcast ``step()``.

        Everything just ticked: advance all watermarks, clear consumed
        due flags, mark every wake stale, and refresh the writeback
        bookkeeping.
        """
        now = self.now
        synced = self._synced
        due = self._due_flag
        for slot in range(self._num_slots):
            synced[slot] = now
            due[slot] = False
            self._mark_dirty(slot)
        for i, core in enumerate(self.cores):
            self._note_core_wb(i, core)

    def _note_core_wb(self, core_id: int, core: OooCore) -> None:
        """Refresh ``core_id``'s entry in the blocked-writeback map.

        Called right after the core ticks: a surviving head writeback
        was NACKed by that tick's drain, so it is blocked at the
        channel's current buffer version and stays blocked until the
        version moves.
        """
        if core.has_blocked_writeback():
            line = core.hierarchy.pending_writebacks[0]
            address = core.hierarchy.line_address(line)
            channel = self.address_map.channel_of(address)
            self._wb_blocked[core_id] = (
                channel, self.controllers[channel].buffers.version
            )
        elif core_id in self._wb_blocked:
            del self._wb_blocked[core_id]

    def _wb_unblock_due(self) -> bool:
        """True when some blocked head writeback would now be accepted.

        Only channels whose buffer version moved since the blocked
        verdict are re-probed; a still-blocked verdict refreshes the
        stamp so the next call is O(1) again.
        """
        wb = self._wb_blocked
        controllers = self.controllers
        cores = self.cores
        for core_id, (channel, version) in wb.items():
            current = controllers[channel].buffers.version
            if current == version:
                continue
            if self._writeback_blocked(cores[core_id]):
                wb[core_id] = (channel, current)
            else:
                return True
        return False

    def _event_target_indexed(self, limit: int) -> int:
        """Earliest cycle in ``[now, limit]`` that must be stepped.

        The indexed analogue of :meth:`_event_target`: the O(1) direct
        sources (sample deadline, interconnect heap heads) are checked
        inline, the version-gated probes cover acceptance and writeback
        unblocks, and everything else — every controller and core — is
        one sharded heap peek instead of a scan.
        """
        now = self.now
        self.engine_event_target_calls += 1
        windex = self._windex
        assert windex is not None
        dirty = self._dirty_slots
        if dirty:
            # Republish stale wakes (components touched since their
            # last publish) in one pass — before any early return, so a
            # component ticked last cycle is back in the heap by the
            # time pop_due decides who is due, even when this cycle is
            # stepped for an unrelated reason (delivery, acceptance).
            flags = self._dirty_flag
            base = self._core_slot0
            controllers = self.controllers
            cores = self.cores
            for slot in dirty:
                flags[slot] = False
                if slot < base:
                    windex.publish(slot, controllers[slot].next_event_time(now))
                else:
                    windex.publish(slot, cores[slot - base].wake_time(now))
            del dirty[:]
        target = limit
        if self.telemetry is not None:
            deadline = self.telemetry.next_sample
            if deadline <= now:
                return now
            if deadline < target:
                target = deadline
        if self._to_controller:
            head = self._to_controller[0][0]
            if head <= now:
                return now
            if head < target:
                target = head
        if self._to_cores:
            head = self._to_cores[0][0]
            if head <= now:
                return now
            if head < target:
                target = head
        if self._acceptance_due():
            return now
        wake = windex.min_wake()
        if wake <= now:
            return now
        if wake < target:
            target = wake
        if self._wb_blocked and self._wb_unblock_due():
            return now
        return target

    def _skip_span_indexed(self, target: int) -> None:
        """Jump over the no-op cycles ``[self.now, target)``.

        Unlike :meth:`_skip_span`, no component is touched: their
        accounting is applied lazily by the catch-up hooks, so a skip
        costs O(occupied interface queues) — usually zero — regardless
        of core count.
        """
        now = self.now
        span = target - now
        for channel, thread_id in self._awaiting_nonempty:  # det: allow(commutative counter adds, order-free)
            # One rejected head-of-queue retry per cycle per queue.
            self.controllers[channel].skip_interface_nacks(thread_id, span)
        self.engine_cycles_skipped += span
        self.now = target

    def _sparse_step(self) -> None:
        """Step one cycle, ticking only due components.

        Mirrors :meth:`step`'s ordering exactly — sample, delivery,
        controllers (index order), fill drain, cores (index order) —
        but consults the due flags (heap pops, delivery acceptances,
        fill arrivals, writeback unblocks) instead of broadcasting.
        Deferred components are caught up on demand before any real
        work touches them.
        """
        now = self.now
        windex = self._windex
        assert windex is not None
        telemetry = self.telemetry
        if telemetry is not None:
            if telemetry.next_sample <= now:
                # Samplers read whole-system state at the top of the
                # boundary cycle: catch every deferred component up
                # first so they observe exactly what the oracle's
                # broadcast engine would have produced.
                self._sync_all(now)
            telemetry.maybe_sample(now)
        phases = self._obs_phases
        due = self._due_flag
        windex.pop_due(now, due)
        if phases is not None:
            phases.begin("delivery")
        self._deliver_to_controller(now)
        if phases is not None:
            phases.begin("scheduling")
        controllers = self.controllers
        synced = self._synced
        base = self._core_slot0
        back_latency = self.config.back_latency
        offset_bits = self.address_map.offset_bits
        ticks = 0
        for channel in range(base):
            if not due[channel]:
                continue
            due[channel] = False
            controller = controllers[channel]
            if synced[channel] < now:
                controller.skip_cycles(synced[channel], now)
            for request in controller.tick(now):
                line = request.address >> offset_bits
                self._fill_seq += 1
                heapq.heappush(
                    self._to_cores,
                    (now + back_latency, self._fill_seq,
                     request.thread_id, line),
                )
            synced[channel] = now + 1
            self._mark_dirty(channel)
            ticks += 1
        wb = self._wb_blocked
        if wb:
            # Completions above may have released write entries; a core
            # whose head writeback just unblocked must tick this cycle
            # to drain it, exactly when the broadcast engine would.
            for core_id, (channel, version) in wb.items():
                current = controllers[channel].buffers.version
                if current == version:
                    continue
                if self._writeback_blocked(self.cores[core_id]):
                    wb[core_id] = (channel, current)
                else:
                    due[base + core_id] = True
        if phases is not None:
            phases.begin("dispatch")
        to_cores = self._to_cores
        cores = self.cores
        activity = self._core_activity
        while to_cores and to_cores[0][0] <= now:
            _, _, thread_id, line = heapq.heappop(to_cores)
            activity[thread_id] += 1
            slot = base + thread_id
            if synced[slot] < now:
                cores[thread_id].skip(synced[slot], now)
                synced[slot] = now
            cores[thread_id].on_fill(line, now)
            due[slot] = True
        for i, core in enumerate(cores):
            slot = base + i
            if not due[slot]:
                continue
            due[slot] = False
            if synced[slot] < now:
                core.skip(synced[slot], now)
            core.tick(now)
            synced[slot] = now + 1
            self._mark_dirty(slot)
            self._note_core_wb(i, core)
            ticks += 1
        self.engine_component_ticks += ticks
        self.now = now + 1

    def _run_event_indexed(self, limit: int) -> None:
        phases = self._obs_phases
        while self.now < limit:
            if phases is not None:
                phases.begin("targeting")
            target = self._event_target_indexed(limit)
            if target > self.now:
                self._skip_span_indexed(target)
                if self.now >= limit:
                    break
            self.engine_steps += 1
            self._sparse_step()
        # Leave no deferred accounting behind: measurement snapshots
        # and checker/telemetry finalization read whole-system state.
        self._sync_all(self.now)

    def run_cycles(self, cycles: int, fast_forward: bool = True) -> None:
        """Run until ``self.now`` reaches its current value plus ``cycles``.

        ``config.engine`` selects the loop: "event" jumps between
        component wake times (through the sharded wake index, or the
        linear-scan oracle under ``REPRO_WAKE_INDEX=0``), "cycle" steps
        every cycle (the differential oracle).  ``fast_forward=False``
        forces the per-cycle loop regardless of the configured engine.
        """
        limit = self.now + cycles
        if not fast_forward or self.config.engine != "event":
            while self.now < limit:
                self.step()
            return
        if self._windex is not None:
            self._run_event_indexed(limit)
            return
        self._run_event(limit)

    # -- measurement ----------------------------------------------------------------

    def _snapshot(self) -> Dict[str, float]:
        snap: Dict[str, float] = {
            "cycle": self.now,
            "data_busy": sum(
                dram.channel.data_busy_cycles for dram in self.drams
            ),
            "bank_busy": sum(
                bank.busy_cycles_at(self.now)
                for dram in self.drams
                for _, bank in dram.iter_banks()
            ),
            "refreshes": sum(dram.refresh_count for dram in self.drams),
        }
        for t in range(self.config.num_cores):
            core = self.cores[t]
            snap[f"inst_{t}"] = core.stats.instructions
            snap[f"core_cycles_{t}"] = core.stats.cycles
            snap[f"lat_sum_{t}"] = sum(
                c.stats.read_latency_sum[t] for c in self.controllers
            )
            snap[f"reads_{t}"] = sum(c.stats.read_count[t] for c in self.controllers)
            snap[f"writes_{t}"] = sum(c.stats.write_count[t] for c in self.controllers)
            snap[f"cas_cycles_{t}"] = sum(
                c.stats.cas_cycles[t] for c in self.controllers
            )
            snap[f"nacks_{t}"] = (
                sum(c.stats.requests_nacked[t] for c in self.controllers)
                + core.stats.nacks
            )
        return snap

    def run(self, cycles: int, warmup: int = 0) -> SimResult:
        """Run ``warmup`` then ``cycles`` cycles; report the measured window."""
        if warmup > 0:
            self.run_cycles(warmup)
        before = self._snapshot()
        self.run_cycles(cycles)
        after = self._snapshot()
        for checker in self.checkers:
            checker.finalize(self.now)
        if self.telemetry is not None:
            self.telemetry.finalize(self.now)
        if self.obs is not None:
            self.obs.finalize(self)
        return self._result(before, after)

    def check_summary(self) -> Dict[str, int]:
        """Aggregate checker counters across channels (empty when off)."""
        totals: Dict[str, int] = {}
        for checker in self.checkers:
            for key, value in checker.summary().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _result(self, before: Dict[str, float], after: Dict[str, float]) -> SimResult:
        window = int(after["cycle"] - before["cycle"])
        threads: List[ThreadResult] = []
        for t in range(self.config.num_cores):
            reads = int(after[f"reads_{t}"] - before[f"reads_{t}"])
            lat_sum = after[f"lat_sum_{t}"] - before[f"lat_sum_{t}"]
            mean_lat = (lat_sum / reads) if reads else 0.0
            # Latency is measured controller-arrival to data-return; add
            # the on-chip round trip so it is core-observed, as in Fig 1.
            if reads:
                mean_lat += self.config.front_latency + self.config.back_latency
            cas = after[f"cas_cycles_{t}"] - before[f"cas_cycles_{t}"]
            # Utilizations are relative to total peak bandwidth across
            # all channels.
            bus_window = window * self.config.num_channels
            threads.append(
                ThreadResult(
                    name=self.profiles[t].name,
                    instructions=after[f"inst_{t}"] - before[f"inst_{t}"],
                    cycles=int(after[f"core_cycles_{t}"] - before[f"core_cycles_{t}"]),
                    mean_read_latency=mean_lat,
                    bus_utilization=(cas / bus_window) if window else 0.0,
                    reads=reads,
                    writes=int(after[f"writes_{t}"] - before[f"writes_{t}"]),
                    nacks=int(after[f"nacks_{t}"] - before[f"nacks_{t}"]),
                )
            )
        data_busy = after["data_busy"] - before["data_busy"]
        bank_busy = after["bank_busy"] - before["bank_busy"]
        bus_window = window * self.config.num_channels
        denom = (
            window
            * self.dram.num_banks
            * self.dram.num_ranks
            * self.config.num_channels
        )
        # Execution-facts block (engine_* keys), shared with the obs
        # registry's canonical names and identical whether obs is
        # attached or not — see repro.obs.engine.
        extras = engine_extras(self)
        return SimResult(
            policy=self.controller.policy.name,
            cycles=window,
            threads=threads,
            data_bus_utilization=(data_busy / bus_window) if window else 0.0,
            bank_utilization=(bank_busy / denom) if denom else 0.0,
            refreshes=int(after["refreshes"] - before["refreshes"]),
            extras=extras,
        )


def comparable_result(result: SimResult) -> SimResult:
    """Strip engine instrumentation so results compare across engines.

    The ``engine_*`` extras describe how the run was executed (steps vs
    skipped cycles), not what it computed; differential checks between
    the event and cycle engines must ignore them.  The prefix is owned
    by :mod:`repro.obs.engine`, next to the code that emits the keys.
    """
    extras = {
        key: value
        for key, value in result.extras.items()
        if not key.startswith(ENGINE_EXTRA_PREFIX)
    }
    return replace(result, extras=extras)
