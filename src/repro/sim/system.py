"""The CMP system: cores + interconnect latencies + controller + DRAM.

Builds the full simulated machine from a :class:`SystemConfig` and a
list of benchmark profiles (one per core), runs it for a bounded number
of cycles with an optional warmup, and reports windowed statistics.

The only shared resource is the SDRAM memory system, matching the
paper's methodology: each core has private caches and a private slice
of the physical address space (threads still contend for the same
banks, rows, and buses through the shared address map).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..check import RunChecker, checks_enabled
from ..controller.address_map import AddressMap
from ..controller.controller import MemoryController
from ..controller.request import MemoryRequest, RequestKind
from ..core.policies import Policy, fq_vftf_with_bound, get_policy
from ..cpu.core_model import OooCore
from ..cpu.hierarchy import CacheHierarchy
from ..dram.dram_system import DramSystem
from .config import SystemConfig


@dataclass
class ThreadResult:
    """Windowed per-thread measurements."""

    name: str
    instructions: float
    cycles: int
    mean_read_latency: float
    bus_utilization: float
    reads: int
    writes: int
    nacks: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measured window."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class SimResult:
    """Windowed whole-system measurements for one run."""

    policy: str
    cycles: int
    threads: List[ThreadResult]
    data_bus_utilization: float
    bank_utilization: float
    refreshes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def thread(self, name: str) -> ThreadResult:
        """Look up a thread result by benchmark name."""
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(f"no thread named {name!r}")


class CmpSystem:
    """A runnable CMP + memory-system instance."""

    def __init__(
        self,
        config: SystemConfig,
        profiles: Sequence,
        check: Optional[bool] = None,
    ):
        """Build a system running one workload per core.

        ``profiles`` entries may be synthetic
        :class:`~repro.workloads.synthetic.BenchmarkProfile` objects or
        recorded :class:`~repro.workloads.trace_workload.TraceWorkload`
        streams — anything exposing ``name``, ``make_trace`` and
        ``prewarm_stream``.

        ``check`` attaches the :mod:`repro.check` runtime validators
        (protocol sanitizer + scheduler invariant checker) to every
        controller; ``None`` defers to the ``REPRO_CHECK`` environment
        variable so checked runs survive the parallel engine's process
        pool.  Checking never changes results — only whether violations
        raise.
        """
        if len(profiles) != config.num_cores:
            raise ValueError(
                f"{len(profiles)} profiles for {config.num_cores} cores"
            )
        self.config = config
        self.profiles = list(profiles)
        self.address_map = AddressMap(
            line_bytes=config.l2.line_bytes,
            num_ranks=config.num_ranks,
            num_banks=config.num_banks,
            columns_per_row=config.columns_per_row,
            num_channels=config.num_channels,
            xor_bank=config.xor_bank,
        )
        policy = self._resolve_policy(config)
        # One independent DRAM device + controller per channel (the
        # paper evaluates a single channel; multi-channel is its stated
        # future work).  Each thread holds its share φ of *every*
        # channel, so per-channel VTMS state is the natural extension.
        self.drams: List[DramSystem] = []
        self.controllers: List[MemoryController] = []
        for _ in range(config.num_channels):
            dram = DramSystem(
                config.timing,
                num_ranks=config.num_ranks,
                num_banks=config.num_banks,
                enable_refresh=config.enable_refresh,
            )
            self.drams.append(dram)
            self.controllers.append(
                MemoryController(
                    dram=dram,
                    address_map=self.address_map,
                    num_threads=config.num_cores,
                    policy=policy,
                    shares=config.shares,
                    read_entries_per_thread=config.read_entries_per_thread,
                    write_entries_per_thread=config.write_entries_per_thread,
                    row_policy=config.row_policy,
                    write_drain=config.write_drain,
                )
            )
        #: Single-channel aliases (the common case and the public API).
        self.dram = self.drams[0]
        self.controller = self.controllers[0]
        if check is None:
            check = checks_enabled()
        self.check = check
        self.checkers: List[RunChecker] = []
        if check:
            for controller in self.controllers:
                checker = RunChecker(controller)
                controller.checker = checker
                self.checkers.append(checker)
        #: Requests in flight toward the controllers: (arrival, seq, request).
        self._to_controller: List[Tuple[int, int, MemoryRequest]] = []
        #: Fills in flight toward cores: (deliver, seq, thread, line).
        self._to_cores: List[Tuple[int, int, int, int]] = []
        self._in_transit: List[List[Dict[RequestKind, int]]] = [
            [
                {RequestKind.READ: 0, RequestKind.WRITE: 0}
                for _ in range(config.num_channels)
            ]
            for _ in range(config.num_cores)
        ]
        #: Interface queues: requests that arrived at their channel's
        #: controller but were NACKed (buffer partition full), indexed
        #: [channel][thread].
        self._awaiting_mc: List[List[Deque[MemoryRequest]]] = [
            [deque() for _ in range(config.num_cores)]
            for _ in range(config.num_channels)
        ]
        #: Dirty set of non-empty interface queues, so the per-cycle
        #: retry scan touches only (channel, thread) pairs with queued
        #: requests instead of all channels × all threads.
        self._awaiting_nonempty: Set[Tuple[int, int]] = set()
        #: Writes sitting in each interface queue, indexed
        #: [channel][thread] — consulted on every writeback submit for
        #: credit flow control, so counted incrementally.
        self._awaiting_writes: List[List[int]] = [
            [0] * config.num_cores for _ in range(config.num_channels)
        ]
        self._fill_seq = 0
        self.now = 0
        self.cores: List[OooCore] = []
        for core_id, workload in enumerate(self.profiles):
            base_address = core_id * config.thread_address_stride
            generator = workload.make_trace(config.seed, base_address)
            hierarchy = CacheHierarchy(config.l1i, config.l1d, config.l2)
            self._prewarm(hierarchy, workload, config.seed, base_address)
            core = OooCore(
                core_id=core_id,
                config=config.core,
                trace=generator,
                hierarchy=hierarchy,
                submit=self._make_submit(core_id),
            )
            self.cores.append(core)

    @staticmethod
    def _resolve_policy(config: SystemConfig) -> Policy:
        policy = get_policy(config.policy)
        if config.inversion_bound is not None and policy.fq_bank_rule:
            policy = fq_vftf_with_bound(config.inversion_bound)
        return policy

    def _prewarm(
        self,
        hierarchy: CacheHierarchy,
        workload,
        seed: int,
        base_address: int,
    ) -> None:
        """Warm the L2 with the workload's prewarm stream.

        The stream comes from a twin of the live trace, so measurement
        starts in cache steady state without perturbing the replay.
        """
        for record in workload.prewarm_stream(seed, base_address):
            hierarchy.l2.fill(hierarchy.line_of(record.address), dirty=record.is_write)
        hierarchy.l2.hits = 0
        hierarchy.l2.misses = 0
        hierarchy.l2.writebacks = 0
        hierarchy.pending_writebacks.clear()

    # -- flow control ------------------------------------------------------

    def _make_submit(self, core_id: int):
        def submit(request: MemoryRequest) -> bool:
            request.channel = self.address_map.channel_of(request.address)
            if request.kind is RequestKind.WRITE:
                # Writebacks are credit-controlled end to end: the core's
                # writeback queue absorbs NACK back-pressure, exactly the
                # paper's per-thread write-buffer partitioning.
                controller = self.controllers[request.channel]
                in_transit = self._in_transit[core_id][request.channel][
                    RequestKind.WRITE
                ]
                waiting_writes = self._awaiting_writes[request.channel][core_id]
                occupied = (
                    controller.buffers.occupancy(core_id, RequestKind.WRITE)
                    + in_transit
                    + waiting_writes
                )
                if occupied >= controller.buffers.write_capacity:
                    return False
                self._in_transit[core_id][request.channel][RequestKind.WRITE] += 1
            # Reads are bounded by the core's MSHR file; requests that
            # find the transaction-buffer partition full on arrival wait
            # at the controller interface and retry each cycle.
            arrival = self.now + self.config.front_latency
            heapq.heappush(self._to_controller, (arrival, request.seq, request))
            return True

        return submit

    def _deliver_to_controller(self, now: int) -> None:
        """Move arrived requests into their controllers, oldest first.

        A request whose buffer partition is full waits in its thread's
        interface queue (the paper's NACK back-pressure); it retries
        every cycle and enters in arrival order.
        """
        while self._to_controller and self._to_controller[0][0] <= now:
            _, _, request = heapq.heappop(self._to_controller)
            if request.kind is RequestKind.WRITE:
                self._in_transit[request.thread_id][request.channel][
                    request.kind
                ] -= 1
                self._awaiting_writes[request.channel][request.thread_id] += 1
            self._awaiting_mc[request.channel][request.thread_id].append(request)
            self._awaiting_nonempty.add((request.channel, request.thread_id))
        if not self._awaiting_nonempty:
            return
        drained = []
        for channel, thread_id in sorted(self._awaiting_nonempty):
            controller = self.controllers[channel]
            thread_queue = self._awaiting_mc[channel][thread_id]
            while thread_queue:
                if not controller.try_enqueue(thread_queue[0]):
                    break
                request = thread_queue.popleft()
                if request.kind is RequestKind.WRITE:
                    self._awaiting_writes[channel][thread_id] -= 1
            if not thread_queue:
                drained.append((channel, thread_id))
        self._awaiting_nonempty.difference_update(drained)

    # -- main loop --------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        now = self.now
        self._deliver_to_controller(now)
        for controller in self.controllers:
            for request in controller.tick(now):
                line = request.address >> self.address_map.offset_bits
                self._fill_seq += 1
                heapq.heappush(
                    self._to_cores,
                    (
                        now + self.config.back_latency,
                        self._fill_seq,
                        request.thread_id,
                        line,
                    ),
                )

        while self._to_cores and self._to_cores[0][0] <= now:
            _, _, thread_id, line = heapq.heappop(self._to_cores)
            self.cores[thread_id].on_fill(line, now)

        for core in self.cores:
            core.tick(now)

        self.now = now + 1

    def _try_fast_forward(self, limit: int) -> bool:
        """Skip stretches where every component is waiting; True if skipped.

        Three component states are skippable: a *quiescent* core (no
        memory activity at all — bulk-retires to its next fetch point),
        an *asleep* core (fully stalled until a fill arrives), and a
        sleeping controller (no command can become ready before its
        published wake time).  In-flight messages bound the skip via
        their delivery times.
        """
        events: List[int] = []
        for core in self.cores:
            if core.asleep:
                continue
            if not core.quiescent():
                return False
            core_event = core.next_event_time(self.now)
            if core_event is not None:
                events.append(core_event)
        for controller in self.controllers:
            ctrl_event = controller.next_event_time(self.now)
            if ctrl_event is not None:
                events.append(ctrl_event)
        if self._to_controller:
            events.append(self._to_controller[0][0])
        if self._to_cores:
            events.append(self._to_cores[0][0])
        target = min(min(events), limit) if events else limit
        if target <= self.now + 1:
            return False
        for core in self.cores:
            if core.asleep:
                core.sleep_skip(target - self.now)
            else:
                core.skip_to(self.now, target)
        for controller in self.controllers:
            controller.skip_cycles(self.now, target)
        self.now = target
        return True

    def run_cycles(self, cycles: int, fast_forward: bool = True) -> None:
        """Run until ``self.now`` reaches its current value plus ``cycles``."""
        limit = self.now + cycles
        while self.now < limit:
            if fast_forward and self._try_fast_forward(limit):
                continue
            self.step()

    # -- measurement ----------------------------------------------------------------

    def _snapshot(self) -> Dict[str, float]:
        snap: Dict[str, float] = {
            "cycle": self.now,
            "data_busy": sum(
                dram.channel.data_busy_cycles for dram in self.drams
            ),
            "bank_busy": sum(
                bank.busy_cycles_at(self.now)
                for dram in self.drams
                for _, bank in dram.iter_banks()
            ),
            "refreshes": sum(dram.refresh_count for dram in self.drams),
        }
        for t in range(self.config.num_cores):
            core = self.cores[t]
            snap[f"inst_{t}"] = core.stats.instructions
            snap[f"core_cycles_{t}"] = core.stats.cycles
            snap[f"lat_sum_{t}"] = sum(
                c.stats.read_latency_sum[t] for c in self.controllers
            )
            snap[f"reads_{t}"] = sum(c.stats.read_count[t] for c in self.controllers)
            snap[f"writes_{t}"] = sum(c.stats.write_count[t] for c in self.controllers)
            snap[f"cas_cycles_{t}"] = sum(
                c.stats.cas_cycles[t] for c in self.controllers
            )
            snap[f"nacks_{t}"] = (
                sum(c.stats.requests_nacked[t] for c in self.controllers)
                + core.stats.nacks
            )
        return snap

    def run(self, cycles: int, warmup: int = 0) -> SimResult:
        """Run ``warmup`` then ``cycles`` cycles; report the measured window."""
        if warmup > 0:
            self.run_cycles(warmup)
        before = self._snapshot()
        self.run_cycles(cycles)
        after = self._snapshot()
        for checker in self.checkers:
            checker.finalize(self.now)
        return self._result(before, after)

    def check_summary(self) -> Dict[str, int]:
        """Aggregate checker counters across channels (empty when off)."""
        totals: Dict[str, int] = {}
        for checker in self.checkers:
            for key, value in checker.summary().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _result(self, before: Dict[str, float], after: Dict[str, float]) -> SimResult:
        window = int(after["cycle"] - before["cycle"])
        threads: List[ThreadResult] = []
        for t in range(self.config.num_cores):
            reads = int(after[f"reads_{t}"] - before[f"reads_{t}"])
            lat_sum = after[f"lat_sum_{t}"] - before[f"lat_sum_{t}"]
            mean_lat = (lat_sum / reads) if reads else 0.0
            # Latency is measured controller-arrival to data-return; add
            # the on-chip round trip so it is core-observed, as in Fig 1.
            if reads:
                mean_lat += self.config.front_latency + self.config.back_latency
            cas = after[f"cas_cycles_{t}"] - before[f"cas_cycles_{t}"]
            # Utilizations are relative to total peak bandwidth across
            # all channels.
            bus_window = window * self.config.num_channels
            threads.append(
                ThreadResult(
                    name=self.profiles[t].name,
                    instructions=after[f"inst_{t}"] - before[f"inst_{t}"],
                    cycles=int(after[f"core_cycles_{t}"] - before[f"core_cycles_{t}"]),
                    mean_read_latency=mean_lat,
                    bus_utilization=(cas / bus_window) if window else 0.0,
                    reads=reads,
                    writes=int(after[f"writes_{t}"] - before[f"writes_{t}"]),
                    nacks=int(after[f"nacks_{t}"] - before[f"nacks_{t}"]),
                )
            )
        data_busy = after["data_busy"] - before["data_busy"]
        bank_busy = after["bank_busy"] - before["bank_busy"]
        bus_window = window * self.config.num_channels
        denom = (
            window
            * self.dram.num_banks
            * self.dram.num_ranks
            * self.config.num_channels
        )
        return SimResult(
            policy=self.controller.policy.name,
            cycles=window,
            threads=threads,
            data_bus_utilization=(data_busy / bus_window) if window else 0.0,
            bank_utilization=(bank_busy / denom) if denom else 0.0,
            refreshes=int(after["refreshes"] - before["refreshes"]),
        )
