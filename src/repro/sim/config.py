"""System configuration (paper Tables 5 and 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .. import env

from ..cpu.cache import CacheConfig, L1D_CONFIG, L1I_CONFIG, L2_CONFIG
from ..cpu.core_model import CoreConfig
from ..dram.timing import DDR2Timing

#: Environment variable selecting the simulation engine ("event" or
#: "cycle").  Read at config construction time so the parallel engine's
#: worker processes inherit the choice, exactly like ``REPRO_CHECK``.
ENGINE_ENV_VAR = "REPRO_ENGINE"

ENGINES = ("cycle", "event")


def default_engine() -> str:
    """Engine selected by ``REPRO_ENGINE`` (default: ``event``)."""
    value = env.text(ENGINE_ENV_VAR).strip().lower()
    return value if value else "event"


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a CMP system around one memory channel.

    Attributes:
        num_cores: Hardware threads sharing the memory system.
        policy: Scheduling policy name ("FR-FCFS", "FR-VFTF", "FQ-VFTF").
        shares: Per-thread service shares φᵢ; equal shares when None.
        timing: DDR2 timing constraints (Table 6 defaults).
        num_ranks / num_banks: SDRAM topology (1 rank × 8 banks).
        columns_per_row: Cache lines per SDRAM row.
        xor_bank: XOR bank-index permutation (Lin et al.).
        core / l1i / l1d / l2: Per-core microarchitecture (Table 5).
        read_entries_per_thread: Transaction-buffer partition size.
        write_entries_per_thread: Write-buffer partition size.
        front_latency: Cycles from L2 miss to controller arrival.
        back_latency: Cycles from last data beat to core fill.  With the
            Table 6 DRAM access (t_rcd + t_cl + burst = 140 processor
            cycles) the defaults reproduce the paper's 180-cycle
            unloaded read latency.
        enable_refresh: Model periodic all-bank refresh.
        seed: Workload RNG seed.
        thread_address_stride: Base-address spacing between threads'
            private footprints (they still contend for the same banks
            and rows via the address map, as in the paper).
        inversion_bound: Override the FQ bank rule's bound x (default
            t_ras, the paper's choice).
        bliss_threshold: BLISS — consecutive served requests before a
            thread is blacklisted.
        bliss_interval: BLISS — cycles between blacklist clears.
        slowdown_interval: MISE — cycles between slowdown-estimate
            refreshes.
        row_policy: "closed" (paper's choice — precharge a row once its
            pending accesses drain) or "open" (leave rows open until a
            conflict or refresh forces them shut).
        write_drain: "fcfs" (paper's behaviour — writes scheduled like
            reads) or "watermark" (hold writebacks, drain in bursts).
        engine: Simulation engine — "event" (skip-to-next-event, the
            default) or "cycle" (step every cycle; the differential
            oracle).  Both produce bit-identical results; defaults from
            ``REPRO_ENGINE`` so process-pool workers inherit it.
    """

    num_cores: int = 2
    policy: str = "FR-FCFS"
    shares: Optional[List[float]] = None
    timing: DDR2Timing = field(default_factory=DDR2Timing)
    num_ranks: int = 1
    num_banks: int = 8
    columns_per_row: int = 32
    num_channels: int = 1
    xor_bank: bool = True
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = L1I_CONFIG
    l1d: CacheConfig = L1D_CONFIG
    l2: CacheConfig = L2_CONFIG
    read_entries_per_thread: int = 16
    write_entries_per_thread: int = 8
    front_latency: int = 20
    back_latency: int = 20
    enable_refresh: bool = True
    seed: int = 0
    thread_address_stride: int = 1 << 34
    inversion_bound: Optional[int] = None
    bliss_threshold: int = 4
    bliss_interval: int = 10_000
    slowdown_interval: int = 5_000
    row_policy: str = "closed"
    write_drain: str = "fcfs"
    engine: str = field(default_factory=default_engine)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.write_drain not in ("fcfs", "watermark"):
            raise ValueError(
                f"write_drain must be 'fcfs' or 'watermark', got {self.write_drain!r}"
            )
        if self.row_policy not in ("closed", "open"):
            raise ValueError(
                f"row_policy must be 'closed' or 'open', got {self.row_policy!r}"
            )
        if self.num_cores <= 0:
            raise ValueError(f"need at least one core, got {self.num_cores}")
        if self.front_latency < 0 or self.back_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.shares is not None and len(self.shares) != self.num_cores:
            raise ValueError(
                f"{len(self.shares)} shares for {self.num_cores} cores"
            )
        if self.bliss_threshold < 1:
            raise ValueError(
                f"bliss_threshold must be >= 1, got {self.bliss_threshold}"
            )
        if self.bliss_interval < 1:
            raise ValueError(
                f"bliss_interval must be >= 1, got {self.bliss_interval}"
            )
        if self.slowdown_interval < 1:
            raise ValueError(
                f"slowdown_interval must be >= 1, got {self.slowdown_interval}"
            )

    def unloaded_read_latency(self) -> int:
        """Idle-system read latency: front + closed-bank DRAM access + back."""
        t = self.timing
        return self.front_latency + t.t_rcd + t.t_cl + t.burst + self.back_latency

    def scaled_baseline(self, factor: float) -> "SystemConfig":
        """Single-core private memory system time-scaled by ``factor``.

        The paper's QoS baseline: a thread allocated share φ should run
        no slower than alone on a system ``scaled(1/φ)``.  Only the
        memory-system timing scales; the core and caches are unchanged.
        """
        return SystemConfig(
            num_cores=1,
            policy="FR-FCFS",
            shares=None,
            timing=self.timing.scaled(factor),
            num_ranks=self.num_ranks,
            num_banks=self.num_banks,
            columns_per_row=self.columns_per_row,
            num_channels=self.num_channels,
            xor_bank=self.xor_bank,
            core=self.core,
            l1i=self.l1i,
            l1d=self.l1d,
            l2=self.l2,
            read_entries_per_thread=self.read_entries_per_thread,
            write_entries_per_thread=self.write_entries_per_thread,
            front_latency=self.front_latency,
            back_latency=self.back_latency,
            enable_refresh=self.enable_refresh,
            seed=self.seed,
            thread_address_stride=self.thread_address_stride,
            inversion_bound=self.inversion_bound,
            bliss_threshold=self.bliss_threshold,
            bliss_interval=self.bliss_interval,
            slowdown_interval=self.slowdown_interval,
            row_policy=self.row_policy,
            write_drain=self.write_drain,
            engine=self.engine,
        )
