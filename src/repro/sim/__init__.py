"""Simulation harness: configuration, the CMP system, and run helpers."""

from .config import SystemConfig
from .runner import (
    DEFAULT_CYCLES,
    clear_solo_cache,
    coscheduled_pair,
    default_warmup,
    run_solo,
    run_workload,
)
from .system import CmpSystem, SimResult, ThreadResult

__all__ = [
    "CmpSystem",
    "DEFAULT_CYCLES",
    "SimResult",
    "SystemConfig",
    "ThreadResult",
    "clear_solo_cache",
    "coscheduled_pair",
    "default_warmup",
    "run_solo",
    "run_workload",
]
