"""Simulation harness: configuration, the CMP system, and run helpers.

Performance layers live alongside the system model: ``repro.sim.cache``
(persistent content-addressed result store) and ``repro.sim.parallel``
(multi-process fan-out of independent runs).
"""

from .cache import ResultCache, configure_cache
from .config import SystemConfig
from .parallel import RunSpec, run_many
from .runner import (
    DEFAULT_CYCLES,
    clear_solo_cache,
    coscheduled_pair,
    default_warmup,
    run_group,
    run_solo,
    run_workload,
)
from .system import CmpSystem, SimResult, ThreadResult

__all__ = [
    "CmpSystem",
    "DEFAULT_CYCLES",
    "ResultCache",
    "RunSpec",
    "SimResult",
    "SystemConfig",
    "ThreadResult",
    "clear_solo_cache",
    "configure_cache",
    "coscheduled_pair",
    "default_warmup",
    "run_group",
    "run_many",
    "run_solo",
    "run_workload",
]
