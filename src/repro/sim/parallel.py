"""Parallel fan-out of independent simulation runs.

The evaluation sweeps are embarrassingly parallel: every (workload,
policy, window, seed) run is independent and deterministic, so the
only engineering is deduplicating identical run specs, skipping the
ones a cache already holds, and farming the misses out across cores.

:class:`RunSpec` is the declarative unit of work — it names *what* to
run (solo baseline or co-scheduled group) without holding any live
simulator state, so it is hashable (dedup), picklable (process pools)
and fingerprintable (the disk cache).  :func:`run_many` executes a
batch of specs with a ``ProcessPoolExecutor`` and feeds every result
back into both cache layers, so subsequent :func:`~repro.sim.runner.
run_solo` / :func:`~repro.sim.runner.run_group` calls are pure memo
hits.

Determinism: workload RNGs are seeded from (name, seed, base address)
only, so a child process simulates the exact same machine as the
parent would; ``run_many(jobs=4)`` returns bit-identical results to
``jobs=1``.  With ``jobs=1`` (the default) no pool is created and
everything runs in-process.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import env
from ..obs import fleet, manifest_dir
from ..policy import BASELINE_POLICY, canonical
from ..workloads.spec2000 import profile as lookup_profile
from ..workloads.synthetic import BenchmarkProfile
from . import cache as result_cache
from .config import SystemConfig
from .system import CmpSystem, SimResult


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, by value.

    ``kind`` is ``"solo"`` (one benchmark on a private, possibly
    time-scaled memory system under FR-FCFS — the paper's baseline) or
    ``"group"`` (the named benchmarks co-scheduled under ``policy``).
    Profiles are referenced by registered name so specs stay tiny and
    picklable; content enters through the fingerprint.
    """

    kind: str
    names: Tuple[str, ...]
    policy: str
    scale: float
    cycles: int
    warmup: int
    seed: int

    def __post_init__(self) -> None:
        if self.kind not in ("solo", "group"):
            raise ValueError(f"kind must be 'solo' or 'group', got {self.kind!r}")
        if self.kind == "solo" and len(self.names) != 1:
            raise ValueError("solo specs take exactly one benchmark name")
        # Canonicalize through the registry: a typo fails here with the
        # full list of registered names (not deep inside a worker), and
        # spelling variants ("fq_vftf" vs "FQ-VFTF") dedup to one run.
        object.__setattr__(self, "policy", canonical(self.policy))

    def build(self) -> Tuple[SystemConfig, List[BenchmarkProfile]]:
        """Materialize the (config, profiles) pair this spec describes."""
        profiles = [lookup_profile(name) for name in self.names]
        if self.kind == "solo":
            config = SystemConfig(
                num_cores=1, policy=BASELINE_POLICY, seed=self.seed
            )
            if self.scale != 1.0:
                config = config.scaled_baseline(self.scale)
        else:
            config = SystemConfig(
                num_cores=len(profiles), policy=self.policy, seed=self.seed
            )
        return config, profiles

    def fingerprint(self) -> str:
        """Disk-cache key (config + profile content + window + seed + salt)."""
        config, profiles = self.build()
        return result_cache.fingerprint(
            config, profiles, self.cycles, self.warmup, self.seed
        )


def solo_spec(
    name: str, scale: float, cycles: int, warmup: int, seed: int
) -> RunSpec:
    return RunSpec("solo", (name,), BASELINE_POLICY, scale, cycles, warmup, seed)


def group_spec(
    names: Sequence[str], policy: str, cycles: int, warmup: int, seed: int
) -> RunSpec:
    return RunSpec("group", tuple(names), policy, 1.0, cycles, warmup, seed)


def run_label(spec: RunSpec) -> str:
    """Human-readable fleet-dashboard id for ``spec``."""
    return f"{'+'.join(spec.names)}:{spec.policy}@s{spec.seed}"


def execute_spec(spec: RunSpec) -> SimResult:
    """Simulate ``spec`` from scratch (no cache layers consulted)."""
    config, profiles = spec.build()
    # Tracing is forced off for batch/cached runs: telemetry never
    # changes results (so cached results stay valid either way), but
    # its buffers are per-run artifacts that the result cache cannot
    # round-trip — traced runs go through the dedicated driver.
    system = CmpSystem(config, profiles, trace=False)
    # Progress heartbeats ride a side thread sampling ``system.now``;
    # the simulation itself is untouched (chunking the run to emit
    # between chunks would change the engine_* extras and fork cached
    # results — see repro.obs.fleet).
    queue = fleet.worker_queue()
    heartbeat = None
    if queue is not None:
        heartbeat = fleet.WorkerHeartbeat(
            queue, run_label(spec), spec.warmup + spec.cycles
        )
        heartbeat.start(system)
    try:
        result = system.run(spec.cycles, warmup=spec.warmup)
    except BaseException:
        if heartbeat is not None:
            heartbeat.finish("error")
        raise
    if heartbeat is not None:
        heartbeat.finish("done")
    out_dir = manifest_dir()
    if out_dir:
        _write_run_manifest(out_dir, spec, system, result)
    return result


def _write_run_manifest(out_dir: str, spec: RunSpec, system, result) -> None:
    """Best-effort per-run manifest (REPRO_OBS_MANIFEST): never fatal."""
    from ..obs.manifest import emit_run_manifest

    try:
        emit_run_manifest(
            out_dir,
            fingerprint=spec.fingerprint(),
            policy=spec.policy,
            workload=spec.names,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            result=result,
            source="fresh",
            obs=system.obs,
        )
    except OSError:
        pass


def default_jobs() -> int:
    """Worker count when ``jobs`` is unspecified (``REPRO_JOBS``, else 1)."""
    try:
        jobs = int(env.text("REPRO_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return default_jobs()
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def run_many(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    monitor: Optional["fleet.FleetMonitor"] = None,
) -> Dict[RunSpec, SimResult]:
    """Execute ``specs`` (deduplicated), returning spec → result.

    Cache discipline: the in-process memo is consulted first, then the
    disk cache; only genuine misses are simulated — in this process
    when ``jobs`` resolves to 1, otherwise fanned out across a process
    pool.  Every result (loaded or fresh) is written back to the memo,
    and fresh results to the disk cache, by the parent process.

    ``monitor`` (a :class:`repro.obs.fleet.FleetMonitor`) streams live
    progress: cache-served specs report ``cached`` immediately, and
    simulated specs heartbeat from their workers through the monitor's
    queue.  Purely observational — results are identical with or
    without it.
    """
    from . import runner  # runner imports this module; bind lazily

    jobs = resolve_jobs(jobs)
    ordered = list(dict.fromkeys(specs))
    disk = result_cache.active_cache()
    results: Dict[RunSpec, SimResult] = {}
    misses: List[RunSpec] = []
    for spec in ordered:
        hit = runner.memo_get(spec)
        if hit is None and disk is not None:
            hit = disk.get(spec.fingerprint())
            if hit is not None:
                runner.memo_put(spec, hit)
        if hit is not None:
            results[spec] = hit
            if monitor is not None:
                # Through the queue (not the state directly) so the
                # monitor's update callback fires on the next pump.
                total = spec.warmup + spec.cycles
                fleet.post(
                    monitor.queue,
                    fleet.heartbeat_event(run_label(spec), "cached", total, total),
                )
        else:
            misses.append(spec)
    if monitor is not None:
        monitor.pump()

    if not misses:
        return results

    if jobs == 1 or len(misses) == 1:
        fresh = _inline_execute(misses, monitor)
    else:
        fresh = _pool_execute(misses, jobs, monitor)

    for spec, result in fresh:
        runner.memo_put(spec, result)
        if disk is not None:
            disk.put(spec.fingerprint(), result)
        results[spec] = result
    return results


def _inline_execute(
    specs: Sequence[RunSpec], monitor: Optional["fleet.FleetMonitor"]
) -> List[Tuple[RunSpec, SimResult]]:
    """Execute ``specs`` in this process, heartbeating when monitored."""
    if monitor is None:
        return [(spec, execute_spec(spec)) for spec in specs]
    fleet.init_worker(monitor.queue)
    try:
        done = []
        for spec in specs:
            done.append((spec, execute_spec(spec)))
            monitor.pump()
        return done
    finally:
        fleet.init_worker(None)


def _pool_execute(
    specs: Sequence[RunSpec],
    jobs: int,
    monitor: Optional["fleet.FleetMonitor"] = None,
) -> List[Tuple[RunSpec, SimResult]]:
    """Fan ``specs`` out over a process pool; fall back in-process on failure.

    The fallback keeps restricted environments (no ``fork``, no
    semaphores — some CI sandboxes) working at ``jobs=1`` speed rather
    than crashing the sweep.  With a monitor, workers are initialized
    with its heartbeat queue and the scheduling loop wakes on a short
    timeout to pump events between completions.
    """
    initializer = fleet.init_worker if monitor is not None else None
    initargs = (monitor.queue,) if monitor is not None else ()
    timeout = fleet.HEARTBEAT_INTERVAL_S if monitor is not None else None
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = {pool.submit(execute_spec, spec): spec for spec in specs}
            done: List[Tuple[RunSpec, SimResult]] = []
            pending = set(futures)
            while pending:
                finished, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if monitor is not None:
                    monitor.pump()
                for future in finished:
                    done.append((futures[future], future.result()))
            # Report in submission order so downstream writes are
            # deterministic regardless of completion order.
            order = {spec: i for i, spec in enumerate(specs)}
            done.sort(key=lambda pair: order[pair[0]])
            return done
    except (OSError, PermissionError, NotImplementedError):
        return _inline_execute(specs, monitor)
