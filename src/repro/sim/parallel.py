"""Parallel fan-out of independent simulation runs.

The evaluation sweeps are embarrassingly parallel: every (workload,
policy, window, seed) run is independent and deterministic, so the
only engineering is deduplicating identical run specs, skipping the
ones a cache already holds, and farming the misses out across cores.

:class:`RunSpec` is the declarative unit of work — it names *what* to
run (solo baseline or co-scheduled group) without holding any live
simulator state, so it is hashable (dedup), picklable (process pools)
and fingerprintable (the disk cache).  :func:`run_many` executes a
batch of specs with a ``ProcessPoolExecutor`` and feeds every result
back into both cache layers, so subsequent :func:`~repro.sim.runner.
run_solo` / :func:`~repro.sim.runner.run_group` calls are pure memo
hits.

Determinism: workload RNGs are seeded from (name, seed, base address)
only, so a child process simulates the exact same machine as the
parent would; ``run_many(jobs=4)`` returns bit-identical results to
``jobs=1``.  With ``jobs=1`` (the default) no pool is created and
everything runs in-process.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import env
from ..obs import fleet, manifest_dir
from ..policy import BASELINE_POLICY, canonical
from ..workloads.spec2000 import profile as lookup_profile
from ..workloads.synthetic import BenchmarkProfile
from . import cache as result_cache
from .config import SystemConfig
from .retry import RetryPolicy, is_worker_crash
from .system import CmpSystem, SimResult


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, by value.

    ``kind`` is ``"solo"`` (one benchmark on a private, possibly
    time-scaled memory system under FR-FCFS — the paper's baseline) or
    ``"group"`` (the named benchmarks co-scheduled under ``policy``).
    Profiles are referenced by registered name so specs stay tiny and
    picklable; content enters through the fingerprint.
    """

    kind: str
    names: Tuple[str, ...]
    policy: str
    scale: float
    cycles: int
    warmup: int
    seed: int
    #: Per-thread service shares φᵢ for group runs (None = equal
    #: shares, the historical behaviour — and the historical
    #: fingerprint, since shares enter it through ``SystemConfig``).
    shares: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("solo", "group"):
            raise ValueError(f"kind must be 'solo' or 'group', got {self.kind!r}")
        if self.kind == "solo" and len(self.names) != 1:
            raise ValueError("solo specs take exactly one benchmark name")
        if self.shares is not None:
            if self.kind != "group":
                raise ValueError("shares only apply to group specs")
            if len(self.shares) != len(self.names):
                raise ValueError(
                    f"{len(self.shares)} shares for {len(self.names)} benchmarks"
                )
            for share in self.shares:
                if share <= 0:
                    raise ValueError(f"shares must be positive, got {share}")
            # Normalize arbitrary positive weights into φ fractions
            # summing to 1 (the controller's register convention), so
            # (4, 1) and (0.8, 0.2) describe — and fingerprint as —
            # the same run.
            total = float(sum(float(s) for s in self.shares))
            object.__setattr__(
                self, "shares", tuple(float(s) / total for s in self.shares)
            )
        # Canonicalize through the registry: a typo fails here with the
        # full list of registered names (not deep inside a worker), and
        # spelling variants ("fq_vftf" vs "FQ-VFTF") dedup to one run.
        object.__setattr__(self, "policy", canonical(self.policy))

    def build(self) -> Tuple[SystemConfig, List[BenchmarkProfile]]:
        """Materialize the (config, profiles) pair this spec describes."""
        profiles = [lookup_profile(name) for name in self.names]
        if self.kind == "solo":
            config = SystemConfig(
                num_cores=1, policy=BASELINE_POLICY, seed=self.seed
            )
            if self.scale != 1.0:
                config = config.scaled_baseline(self.scale)
        else:
            config = SystemConfig(
                num_cores=len(profiles),
                policy=self.policy,
                shares=list(self.shares) if self.shares is not None else None,
                seed=self.seed,
            )
        return config, profiles

    def fingerprint(self) -> str:
        """Disk-cache key (config + profile content + window + seed + salt)."""
        config, profiles = self.build()
        return result_cache.fingerprint(
            config, profiles, self.cycles, self.warmup, self.seed
        )


def solo_spec(
    name: str, scale: float, cycles: int, warmup: int, seed: int
) -> RunSpec:
    return RunSpec("solo", (name,), BASELINE_POLICY, scale, cycles, warmup, seed)


def group_spec(
    names: Sequence[str],
    policy: str,
    cycles: int,
    warmup: int,
    seed: int,
    shares: Optional[Sequence[float]] = None,
) -> RunSpec:
    return RunSpec(
        "group",
        tuple(names),
        policy,
        1.0,
        cycles,
        warmup,
        seed,
        shares=tuple(shares) if shares is not None else None,
    )


def run_label(spec: RunSpec) -> str:
    """Human-readable fleet-dashboard id for ``spec``."""
    label = f"{'+'.join(spec.names)}:{spec.policy}@s{spec.seed}"
    if spec.shares is not None:
        label += "/phi" + ",".join(f"{s:g}" for s in spec.shares)
    return label


def execute_spec(spec: RunSpec) -> SimResult:
    """Simulate ``spec`` from scratch (no cache layers consulted)."""
    config, profiles = spec.build()
    # Tracing is forced off for batch/cached runs: telemetry never
    # changes results (so cached results stay valid either way), but
    # its buffers are per-run artifacts that the result cache cannot
    # round-trip — traced runs go through the dedicated driver.
    system = CmpSystem(config, profiles, trace=False)
    # Progress heartbeats ride a side thread sampling ``system.now``;
    # the simulation itself is untouched (chunking the run to emit
    # between chunks would change the engine_* extras and fork cached
    # results — see repro.obs.fleet).
    queue = fleet.worker_queue()
    heartbeat = None
    if queue is not None:
        heartbeat = fleet.WorkerHeartbeat(
            queue, run_label(spec), spec.warmup + spec.cycles
        )
        heartbeat.start(system)
    try:
        result = system.run(spec.cycles, warmup=spec.warmup)
    except BaseException:
        if heartbeat is not None:
            heartbeat.finish("error")
        raise
    if heartbeat is not None:
        heartbeat.finish("done")
    out_dir = manifest_dir()
    if out_dir:
        _write_run_manifest(out_dir, spec, system, result)
    return result


def _write_run_manifest(out_dir: str, spec: RunSpec, system, result) -> None:
    """Best-effort per-run manifest (REPRO_OBS_MANIFEST): never fatal."""
    from ..obs.manifest import emit_run_manifest

    try:
        emit_run_manifest(
            out_dir,
            fingerprint=spec.fingerprint(),
            policy=spec.policy,
            workload=spec.names,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            result=result,
            source="fresh",
            obs=system.obs,
        )
    except OSError:
        pass


def default_jobs() -> int:
    """Worker count when ``jobs`` is unspecified (``REPRO_JOBS``, else 1)."""
    try:
        jobs = int(env.text("REPRO_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return default_jobs()
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def run_many(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    monitor: Optional["fleet.FleetMonitor"] = None,
    store: Optional[Any] = None,
) -> Dict[RunSpec, SimResult]:
    """Execute ``specs`` (deduplicated), returning spec → result.

    Cache discipline: the in-process memo is consulted first, then the
    disk cache, then ``store`` (a :class:`repro.serve.store.ResultStore`
    or anything with its ``get_result``/``record`` surface); only
    genuine misses are simulated — in this process when ``jobs``
    resolves to 1, otherwise fanned out across a process pool.  Every
    result (loaded or fresh) is written back to the memo, fresh results
    to the disk cache, and — when a store is given — every spec's
    result is recorded into the store, by the parent process.

    ``monitor`` (a :class:`repro.obs.fleet.FleetMonitor`) streams live
    progress: cache-served specs report ``cached`` immediately, and
    simulated specs heartbeat from their workers through the monitor's
    queue.  Purely observational — results are identical with or
    without it.

    Robustness: a worker process that dies mid-run (the stdlib pool
    signals ``BrokenProcessPool``) does not lose its specs — the
    unfinished remainder is resubmitted to a fresh pool with backoff,
    up to :class:`~repro.sim.retry.RetryPolicy`'s budget
    (``REPRO_SERVE_RETRIES``), and runs inline as a last resort so a
    batch always completes with every result present.
    """
    from . import runner  # runner imports this module; bind lazily

    jobs = resolve_jobs(jobs)
    ordered = list(dict.fromkeys(specs))
    disk = result_cache.active_cache()
    results: Dict[RunSpec, SimResult] = {}
    misses: List[RunSpec] = []
    for spec in ordered:
        source = "memo"
        hit = runner.memo_get(spec)
        if hit is None and disk is not None:
            hit = disk.get(spec.fingerprint())
            source = "disk"
        if hit is None and store is not None:
            hit = store.get_result(spec)
            source = "store"
        if hit is not None:
            runner.memo_put(spec, hit)
            if source == "store" and disk is not None:
                disk.put(spec.fingerprint(), hit)
            results[spec] = hit
            if monitor is not None:
                # Through the queue (not the state directly) so the
                # monitor's update callback fires on the next pump.
                total = spec.warmup + spec.cycles
                fleet.post(
                    monitor.queue,
                    fleet.heartbeat_event(run_label(spec), "cached", total, total),
                )
        else:
            misses.append(spec)
    if monitor is not None:
        monitor.pump()

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = _inline_execute(misses, monitor)
        else:
            fresh = _pool_execute(misses, jobs, monitor)

        for spec, result in fresh:
            runner.memo_put(spec, result)
            if disk is not None:
                disk.put(spec.fingerprint(), result)
            results[spec] = result

    if store is not None:
        fresh_specs = set(misses)
        for spec in ordered:
            store.record(
                spec,
                results[spec],
                source="fresh" if spec in fresh_specs else "cache",
            )
    return results


def _inline_execute(
    specs: Sequence[RunSpec], monitor: Optional["fleet.FleetMonitor"]
) -> List[Tuple[RunSpec, SimResult]]:
    """Execute ``specs`` in this process, heartbeating when monitored."""
    if monitor is None:
        return [(spec, execute_spec(spec)) for spec in specs]
    fleet.init_worker(monitor.queue)
    try:
        done = []
        for spec in specs:
            done.append((spec, execute_spec(spec)))
            monitor.pump()
        return done
    finally:
        fleet.init_worker(None)


def _pool_execute(
    specs: Sequence[RunSpec],
    jobs: int,
    monitor: Optional["fleet.FleetMonitor"] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> List[Tuple[RunSpec, SimResult]]:
    """Fan ``specs`` out over a process pool; survive crashed workers.

    A worker killed mid-run breaks the whole stdlib pool: its own spec
    and every still-pending spec surface as ``BrokenProcessPool``.  The
    completed results of the round are kept, the unfinished remainder
    is resubmitted to a *fresh* pool after a deterministic backoff
    (``retried`` heartbeats let dashboards show the resubmission), and
    once the :class:`~repro.sim.retry.RetryPolicy` budget is exhausted
    the stragglers run inline — so a deterministic crasher fails in the
    parent with the real error instead of looping, and a transient
    kill can never lose a run.

    Pool *construction* failures (no ``fork``, no semaphores — some CI
    sandboxes) fall back in-process at ``jobs=1`` speed, as before.
    """
    if retry_policy is None:
        retry_policy = RetryPolicy.from_env()
    done: List[Tuple[RunSpec, SimResult]] = []
    remaining: List[RunSpec] = list(specs)
    attempts = 0
    while remaining:
        try:
            finished, crashed = _pool_round(remaining, jobs, monitor)
        except (OSError, PermissionError, NotImplementedError):
            done.extend(_inline_execute(remaining, monitor))
            break
        done.extend(finished)
        if not crashed:
            break
        attempts += 1
        if not retry_policy.should_retry(attempts):
            # Budget exhausted: last resort is the parent's own process,
            # where a genuine per-spec fault raises the real exception.
            done.extend(_inline_execute(crashed, monitor))
            break
        if monitor is not None:
            for spec in crashed:
                total = spec.warmup + spec.cycles
                fleet.post(
                    monitor.queue,
                    fleet.heartbeat_event(run_label(spec), "retried", 0, total),
                )
            monitor.pump()
        time.sleep(retry_policy.delay_s(attempts))
        remaining = crashed
    # Report in submission order so downstream writes are deterministic
    # regardless of completion (and retry) order.
    order = {spec: i for i, spec in enumerate(specs)}
    done.sort(key=lambda pair: order[pair[0]])
    return done


def _pool_round(
    specs: Sequence[RunSpec],
    jobs: int,
    monitor: Optional["fleet.FleetMonitor"],
) -> Tuple[List[Tuple[RunSpec, SimResult]], List[RunSpec]]:
    """One pool generation: (completed results, crash-orphaned specs).

    Raises pool-construction errors (handled by the caller's inline
    fallback) and any genuine exception a simulation itself raised.
    """
    initializer = fleet.init_worker if monitor is not None else None
    initargs = (monitor.queue,) if monitor is not None else ()
    timeout = fleet.HEARTBEAT_INTERVAL_S if monitor is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(specs)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        futures = {pool.submit(execute_spec, spec): spec for spec in specs}
        finished: List[Tuple[RunSpec, SimResult]] = []
        crashed: List[RunSpec] = []
        pending = set(futures)
        broken = False
        while pending and not broken:
            ready, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if monitor is not None:
                monitor.pump()
            for future in ready:
                exc = future.exception()
                if exc is None:
                    finished.append((futures[future], future.result()))
                elif is_worker_crash(exc):
                    crashed.append(futures[future])
                    broken = True
                else:
                    raise exc
        if broken:
            # The pool is dead: every still-pending future is doomed to
            # the same BrokenProcessPool; reclaim the specs directly
            # (walking the insertion-ordered dict keeps resubmission
            # order deterministic).
            crashed.extend(
                spec for future, spec in futures.items() if future in pending
            )
        return finished, crashed
