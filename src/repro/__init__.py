"""Fair Queuing Memory Systems — a reproduction of Nesbit et al., MICRO 2006.

A cycle-level CMP memory-system simulator with three multi-thread
memory schedulers:

* **FR-FCFS** — the single-thread-optimized baseline (Rixner et al.),
* **FR-VFTF** — virtual-finish-time priority without the FQ bank rule,
* **FQ-VFTF** — the paper's fair queuing memory scheduler: each thread
  is accounted against a private virtual-time memory system (VTMS) and
  requests are serviced earliest-virtual-finish-time first, with
  bounded priority-inversion bank scheduling.

Quickstart::

    from repro import run_workload, profile

    result = run_workload([profile("vpr"), profile("art")], policy="FQ-VFTF")
    for thread in result.threads:
        print(thread.name, thread.ipc, thread.mean_read_latency)
"""

from .controller import AddressMap, MemoryController, MemoryRequest, RequestKind
from .core import (
    FQ_VFTF,
    FR_FCFS,
    FR_VFTF,
    Policy,
    VtmsState,
    equal_shares,
    get_policy,
    weighted_shares,
)
from .cpu import CacheHierarchy, CoreConfig, OooCore, TraceRecord
from .dram import DDR2Timing, DramSystem
from .sim import (
    CmpSystem,
    SimResult,
    SystemConfig,
    ThreadResult,
    coscheduled_pair,
    run_solo,
    run_workload,
)
from .stats import fair_share_targets, harmonic_mean, variance
from .workloads import (
    BENCHMARKS,
    BenchmarkProfile,
    SyntheticTraceGenerator,
    TraceWorkload,
    four_proc_workloads,
    profile,
    two_proc_pairs,
)

__version__ = "1.0.0"

__all__ = [
    "AddressMap",
    "BENCHMARKS",
    "BenchmarkProfile",
    "CacheHierarchy",
    "CmpSystem",
    "CoreConfig",
    "DDR2Timing",
    "DramSystem",
    "FQ_VFTF",
    "FR_FCFS",
    "FR_VFTF",
    "MemoryController",
    "MemoryRequest",
    "OooCore",
    "Policy",
    "RequestKind",
    "SimResult",
    "SyntheticTraceGenerator",
    "SystemConfig",
    "TraceWorkload",
    "ThreadResult",
    "TraceRecord",
    "VtmsState",
    "coscheduled_pair",
    "equal_shares",
    "fair_share_targets",
    "four_proc_workloads",
    "get_policy",
    "harmonic_mean",
    "profile",
    "run_solo",
    "run_workload",
    "two_proc_pairs",
    "variance",
    "weighted_shares",
    "__version__",
]
