"""The single registry of ``REPRO_*`` environment knobs.

Every environment variable the simulator reads is declared here, with
an explicit classification:

* ``fingerprint_relevant=True`` — the knob changes simulation *inputs*
  (and therefore results).  Each one must reach the result-cache
  fingerprint some way: ``REPRO_ENGINE`` rides in ``SystemConfig.engine``
  (fingerprinted via ``asdict``), ``REPRO_SIM_CYCLES`` sets the default
  ``cycles`` argument (a fingerprint payload key), ``REPRO_CACHE_SALT``
  *is* the fingerprint's salt.
* ``fingerprint_relevant=False`` — the knob is semantics-free: it may
  change speed, logging, checking, or cache placement, but a run's
  results are bit-identical across every setting (the differential
  harnesses in ``tests/`` enforce this for the engine-adjacent ones).

The ENV200 lint pass enforces the discipline mechanically: any literal
``os.environ`` read of a ``REPRO_*`` name outside this module is a
finding, as is a declared knob missing from the README's env-var table.
New knobs are added by declaring an :class:`EnvVar` here, reading it
through the accessors below, and documenting it — the lint fails until
all three are done.

Reads are intentionally *not* cached here: several call sites resolve
at import time, others per call, and the pre-registry behaviour of each
site is preserved exactly by keeping the accessors stateless.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EnvVar:
    """One declared environment knob."""

    name: str
    fingerprint_relevant: bool
    description: str


ENV_VARS = (
    EnvVar(
        "REPRO_ENGINE",
        fingerprint_relevant=True,
        description="Simulation engine ('event' or 'cycle'); becomes "
        "SystemConfig.engine, which the cache fingerprint covers.",
    ),
    EnvVar(
        "REPRO_CACHE_SALT",
        fingerprint_relevant=True,
        description="Overrides the source-derived code salt baked into "
        "every result-cache fingerprint.",
    ),
    EnvVar(
        "REPRO_SIM_CYCLES",
        fingerprint_relevant=True,
        description="Default measurement window in cycles; the run "
        "window is a fingerprint payload key.",
    ),
    EnvVar(
        "REPRO_CHECK",
        fingerprint_relevant=False,
        description="Enables the runtime protocol/invariant checkers "
        "(pure observers; results are unchanged).",
    ),
    EnvVar(
        "REPRO_TRACE",
        fingerprint_relevant=False,
        description="Enables run telemetry/tracing (pure observer).",
    ),
    EnvVar(
        "REPRO_TRACE_PERIOD",
        fingerprint_relevant=False,
        description="Telemetry sampling period in cycles.",
    ),
    EnvVar(
        "REPRO_TRACE_RING",
        fingerprint_relevant=False,
        description="Telemetry per-thread lifecycle ring capacity.",
    ),
    EnvVar(
        "REPRO_JOBS",
        fingerprint_relevant=False,
        description="Default worker count for parallel sweeps; results "
        "are bit-identical at any job count.",
    ),
    EnvVar(
        "REPRO_CACHE_DIR",
        fingerprint_relevant=False,
        description="Result-cache root directory.",
    ),
    EnvVar(
        "REPRO_NO_CACHE",
        fingerprint_relevant=False,
        description="Disables the on-disk result cache entirely.",
    ),
    EnvVar(
        "REPRO_MEMO_CAP",
        fingerprint_relevant=False,
        description="Upper bound on in-process memoized results (LRU).",
    ),
    EnvVar(
        "REPRO_PACKED_KEYS",
        fingerprint_relevant=False,
        description="'0' forces the tuple-key oracle over packed-int "
        "keys; both paths are bit-identical by contract.",
    ),
    EnvVar(
        "REPRO_WAKE_INDEX",
        fingerprint_relevant=False,
        description="'0' forces the linear wake-scan oracle over the "
        "sharded wake-index event engine; both paths are bit-identical "
        "by contract.",
    ),
    EnvVar(
        "REPRO_LEGALITY_BACKEND",
        fingerprint_relevant=False,
        description="Batched legality kernel backend: auto, numpy, or "
        "python; all backends are bit-identical by contract.",
    ),
    EnvVar(
        "REPRO_BENCH_STRICT",
        fingerprint_relevant=False,
        description="Makes the benchmark harnesses enforce absolute "
        "baselines instead of reporting only.",
    ),
    EnvVar(
        "REPRO_UPDATE_GOLDEN",
        fingerprint_relevant=False,
        description="Test-suite only: rewrite golden report files "
        "instead of asserting against them.",
    ),
    EnvVar(
        "REPRO_OBS",
        fingerprint_relevant=False,
        description="Attaches the engine-internals metrics registry "
        "(repro.obs) to every freshly simulated run (pure observer; "
        "results are bit-identical either way).",
    ),
    EnvVar(
        "REPRO_OBS_PHASES",
        fingerprint_relevant=False,
        description="With REPRO_OBS: also time the event-loop phases "
        "(wall clock, write-only; never a simulation input).",
    ),
    EnvVar(
        "REPRO_OBS_MANIFEST",
        fingerprint_relevant=False,
        description="Directory for per-run schema-validated manifests "
        "written by the runner and sweep workers.",
    ),
    EnvVar(
        "REPRO_SERVE",
        fingerprint_relevant=False,
        description="Root directory of the repro.serve experiment "
        "service (socket address file, result store, manifests); "
        "placement only, never a simulation input.",
    ),
    EnvVar(
        "REPRO_SERVE_WORKERS",
        fingerprint_relevant=False,
        description="Concurrent worker processes of the experiment "
        "service job pool; results are bit-identical at any count.",
    ),
    EnvVar(
        "REPRO_SERVE_RETRIES",
        fingerprint_relevant=False,
        description="Resubmission budget for jobs whose worker crashed "
        "or timed out (run_many and the serve scheduler share it); a "
        "retried run recomputes the identical result.",
    ),
    EnvVar(
        "REPRO_SERVE_TIMEOUT",
        fingerprint_relevant=False,
        description="Per-job wall-clock timeout in seconds for the "
        "experiment service's workers; a timed-out job is retried, "
        "never partially recorded.",
    ),
)

_DECLARED = {var.name: var for var in ENV_VARS}


def declared(name: str) -> EnvVar:
    """The declaration for ``name``; KeyError if undeclared.

    Accessors funnel through this so an undeclared read fails loudly at
    the first call rather than silently adding an unaudited knob.
    """
    return _DECLARED[name]


def raw(name: str, default: Optional[str] = None) -> Optional[str]:
    """The raw value (or ``default``), exactly as ``os.environ.get``."""
    declared(name)
    return os.environ.get(name, default)


def text(name: str, default: str = "") -> str:
    """The value as a string, ``default`` when unset."""
    declared(name)
    return os.environ.get(name, default)


def flag(name: str) -> bool:
    """Tri-state off convention: unset, ``"0"``, and ``"false"`` (any
    case, surrounding whitespace ignored) are off; anything else is on.

    The convention shared by ``REPRO_CHECK`` and ``REPRO_TRACE``.
    """
    declared(name)
    value = os.environ.get(name, "")
    return value.strip().lower() not in ("", "0", "false")


def truthy(name: str) -> bool:
    """Python truthiness of the raw value (empty string is off)."""
    declared(name)
    return bool(os.environ.get(name))


def snapshot() -> dict:
    """Every declared knob currently set, as ``{name: raw value}``.

    The env stamp run manifests carry: a reader can tell which knobs
    shaped (or, for the semantics-free ones, merely accompanied) a
    recorded run without trusting the producing shell's history.
    """
    return {
        var.name: os.environ[var.name]
        for var in ENV_VARS
        if var.name in os.environ
    }


def positive_int(name: str, default: int) -> int:
    """A positive-integer knob: unset/empty means ``default``.

    Raises ``ValueError`` for a non-integer or non-positive setting —
    a silently clamped knob would hide the typo that disabled it.
    """
    declared(name)
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    parsed = int(value)
    if parsed <= 0:
        raise ValueError(f"{name} must be positive, got {parsed}")
    return parsed


def positive_float(name: str, default: float) -> float:
    """A positive-float knob (timeouts): unset/empty means ``default``."""
    declared(name)
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    parsed = float(value)
    if parsed <= 0:
        raise ValueError(f"{name} must be positive, got {parsed}")
    return parsed
