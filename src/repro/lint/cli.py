"""``repro-fqms lint`` — the static-analysis command line.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse), 3 runtime
tripwire exceeded (``--max-seconds``; CI pins the full-tree run under
ten seconds so the lint step can never become the slow part of the
pipeline).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import registered_rules, rule_titles, run_lint
from .emitters import render_json, render_sarif, render_text

#: Default lint scope: the package sources and the maintenance scripts.
DEFAULT_PATHS = ("src", "tools")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_TRIPWIRE = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fqms lint",
        description="Contract-aware static analysis (determinism, "
        "fingerprint completeness, env audit, policy conformance, "
        "wake contract, hot-path purity).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="project root for documentation lookups (default: .)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="fail with exit 3 if the run takes longer than S seconds",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        titles = rule_titles()
        for rule in registered_rules():
            print(f"{rule}  {titles[rule]}")
        return EXIT_CLEAN

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        try:
            for rule in rules:
                from .registry import resolve

                resolve(rule)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    paths = args.paths or [Path(p) for p in DEFAULT_PATHS]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    # Wall-clock timing of the *tool itself* — never simulation state.
    started = time.perf_counter()  # lint: allow(DET002, lint runtime tripwire)
    report = run_lint(paths, rules=rules, root=args.root)
    elapsed = time.perf_counter() - started  # lint: allow(DET002, lint runtime tripwire)

    if args.format == "text":
        rendered = render_text(report)
    elif args.format == "json":
        rendered = render_json(report)
    else:
        rendered = render_sarif(report, rule_titles())

    if args.out is not None:
        args.out.write_text(rendered + "\n")
        summary = (
            f"{len(report.findings)} finding(s)"
            if report.findings
            else "clean"
        )
        print(
            f"lint: {summary}; {report.files_checked} files, "
            f"{elapsed:.2f}s -> {args.out}"
        )
    else:
        print(rendered)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"error: lint took {elapsed:.2f}s, over the "
            f"--max-seconds {args.max_seconds:.2f}s tripwire",
            file=sys.stderr,
        )
        return EXIT_TRIPWIRE
    return EXIT_FINDINGS if report.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
