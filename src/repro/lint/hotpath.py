"""HOT500: hot-path purity for the scheduler's inner loops.

The bank scheduler's candidate selection and the DRAM legality kernels
run millions of times per simulated second; PR 6's packed-key and
batched-legality work exists because these loops dominate the profile.
This pass guards the regressions that erode that work one innocuous
line at a time:

* string formatting (f-strings, ``%``) and ``print``/``logging`` calls
  allocate per invocation — exempt inside ``raise``/``assert``, where
  the cost is paid only on the failure path;
* ``sorted()`` / ``.sort()`` allocate a list per call where the loops
  use single-pass min-tracking;
* reads of module-level *mutable* containers smuggle shared state into
  functions the parallel engine forks into worker processes — the
  classic "works until REPRO_JOBS>1" trap.

Roots are the scheduler's candidate-selection entry points, every
function in the legality module, the wake index (PR 8 — every event
iteration goes through it), and the indexed engine's sparse dispatch
in ``sim/system.py``; the pass closes over same-class ``self.*()`` and
same-module calls, so a helper extracted from a hot loop stays covered
without touching this file.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Finding, LintPass, SourceFile
from .registry import register

#: Candidate-selection entry points in the bank scheduler.
SCHEDULER_FILE = "bank_scheduler.py"
SCHEDULER_CLASS = "BankScheduler"
SCHEDULER_ROOTS = (
    "candidate",
    "poll_bound",
    "cacheable_wake",
    "earliest_possible_issue",
    "kind_mask",
    "wake_mask",
)

#: Every function in this module is a hot kernel (construction aside).
KERNEL_FILE = "legality.py"
KERNEL_SKIP = ("__init__", "__repr__", "resolve_backend")

#: The wake index: every method runs once per event-engine iteration.
WAKEINDEX_FILE = "wakeindex.py"
WAKEINDEX_SKIP = ("__init__",)

#: The indexed engine's targeting and sparse-dispatch loops.
SYSTEM_FILE = "system.py"
SYSTEM_CLASS = "CmpSystem"
SPARSE_ROOTS = (
    "_run_event_indexed",
    "_event_target_indexed",
    "_sparse_step",
    "_skip_span_indexed",
    "_acceptance_due",
    "_wb_unblock_due",
)

MUTABLE_CALLS = {
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter",
}


def _module_mutables(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable container literals/constructors."""
    names: Set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in MUTABLE_CALLS
        )
        if mutable:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _index_file(
    tree: ast.Module,
) -> Tuple[Dict[str, ast.FunctionDef], Dict[str, Dict[str, ast.FunctionDef]]]:
    """(module-level functions, class → method table) for one module."""
    functions: Dict[str, ast.FunctionDef] = {}
    classes: Dict[str, Dict[str, ast.FunctionDef]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = {
                sub.name: sub
                for sub in stmt.body
                if isinstance(sub, ast.FunctionDef)
            }
    return functions, classes


def _reachable(
    roots: List[Tuple[Optional[str], str]],
    functions: Dict[str, ast.FunctionDef],
    classes: Dict[str, Dict[str, ast.FunctionDef]],
) -> List[Tuple[str, ast.FunctionDef]]:
    """Close root (class, func) pairs over self.*() and same-module calls."""
    seen: Set[Tuple[Optional[str], str]] = set()
    ordered: List[Tuple[str, ast.FunctionDef]] = []
    work = list(roots)
    while work:
        cls, name = work.pop()
        if (cls, name) in seen:
            continue
        seen.add((cls, name))
        table = classes.get(cls, {}) if cls else functions
        fn = table.get(name) or functions.get(name)
        if fn is None:
            continue
        label = f"{cls}.{name}" if cls and name in classes.get(cls, {}) else name
        ordered.append((label, fn))
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and cls is not None
            ):
                work.append((cls, func.attr))
            elif isinstance(func, ast.Name) and func.id in functions:
                work.append((None, func.id))
    return ordered


def _whole_module_roots(
    file: SourceFile, skip: Tuple[str, ...]
) -> List[Tuple[Optional[str], str]]:
    """Every function and method in ``file`` except the ``skip`` names."""
    functions, classes = _index_file(file.tree)
    return [
        (None, fn) for fn in functions if fn not in skip
    ] + [
        (cls, m)
        for cls, methods in classes.items()
        for m in methods
        if m not in skip
    ]


class _PurityVisitor(ast.NodeVisitor):
    """Hot-path hazards inside one function body."""

    def __init__(self, label: str, mutables: Set[str]):
        self.label = label
        self.mutables = mutables
        self.hits: List[Tuple[int, str]] = []
        self._failure_depth = 0  # inside raise/assert: formatting is fine

    def _visit_failure(self, node: ast.stmt) -> None:
        self._failure_depth += 1
        self.generic_visit(node)
        self._failure_depth -= 1

    def visit_Raise(self, node: ast.Raise) -> None:
        self._visit_failure(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._visit_failure(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if not self._failure_depth:
            self.hits.append(
                (node.lineno, "f-string allocates per call in a hot loop")
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            not self._failure_depth
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            self.hits.append(
                (node.lineno, "%-formatting allocates per call in a hot loop")
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                self.hits.append((node.lineno, "print() call"))
            elif func.id == "sorted":
                self.hits.append(
                    (node.lineno,
                     "sorted() builds a list per call; track the min in one pass")
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "sort":
                self.hits.append(
                    (node.lineno,
                     ".sort() builds order per call; track the min in one pass")
                )
            base = func.value
            if isinstance(base, ast.Name) and base.id in (
                "logging", "log", "logger"
            ):
                self.hits.append((node.lineno, f"{base.id}.{func.attr}() call"))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.mutables:
            self.hits.append(
                (node.lineno,
                 f"reads module-level mutable '{node.id}'; worker processes "
                 "fork stale copies of module state")
            )
        self.generic_visit(node)


@register
class HotPathPurityPass(LintPass):
    rule = "HOT500"
    title = "no formatting/sorting/module-state in scheduler hot paths"

    def check_file(self, file: SourceFile, project) -> Iterable[Finding]:
        name = file.parts[-1]
        if name == SCHEDULER_FILE:
            roots = [(SCHEDULER_CLASS, m) for m in SCHEDULER_ROOTS]
        elif name == SYSTEM_FILE:
            roots = [(SYSTEM_CLASS, m) for m in SPARSE_ROOTS]
        elif name == KERNEL_FILE:
            roots = _whole_module_roots(file, KERNEL_SKIP)
        elif name == WAKEINDEX_FILE:
            roots = _whole_module_roots(file, WAKEINDEX_SKIP)
        else:
            return []
        return self._check(file, roots)

    def _check(self, file: SourceFile, roots) -> List[Finding]:
        functions, classes = _index_file(file.tree)
        mutables = _module_mutables(file.tree)
        findings: List[Finding] = []
        for label, fn in _reachable(list(roots), functions, classes):
            visitor = _PurityVisitor(label, mutables)
            for stmt in fn.body:
                visitor.visit(stmt)
            for line, what in visitor.hits:
                findings.append(
                    Finding(
                        file.path,
                        line,
                        self.rule,
                        f"hot path {label}(): {what}",
                    )
                )
        return findings
