"""POL300 / WAKE400: scheduling-policy protocol conformance.

POL300 checks the :class:`~repro.policy.base.SchedulingPolicy` protocol
statically, across every subclass in the tree:

* ``key_field_specs()`` without ``key_field_names()`` (a packed layout
  with inherited, likely wrong, labels);
* where both are statically determinable, the KeyField labels must
  match the declared names, return-branch for return-branch;
* lifecycle hooks (``on_arrival``/``on_issue``/``on_complete``) defined
  without arming ``has_hooks = True`` — the controller never dispatches
  unarmed hooks, so the policy silently runs stateless;
* ``has_hooks = True`` with no hooks defined (dead dispatch cost);
* overriding the derived ``fq_family`` property instead of setting
  ``fq_bank_rule`` (the :mod:`repro.check` inversion invariant keys off
  the flag);
* the class must be reachable from the policy registry bootstrap, or
  no config can ever select it.

WAKE400 checks the event-engine wake contract: every
``next_event_time``/``wake_time`` body must return explicitly on every
path (an implicit ``None`` fall-through reads as "never wake me" and
silently breaks bit-identity with the per-cycle oracle), must not
derive times from the wall clock or randomness, and an ``on_cycle``
override requires ``has_hooks = True`` — the epoch hook only runs when
dispatched.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Finding, LintPass, SourceFile, always_exits, const_str
from .determinism import GLOBAL_RANDOM_FUNCS, WALL_CLOCK_CALLS
from .project import Project
from .registry import register

#: Root of the policy protocol; subclasses are discovered transitively.
PROTOCOL_BASE = "SchedulingPolicy"
#: Names of the registry bootstrap's module (located via this function).
REGISTRY_LOCATOR_FUNC = "make_policy"
BOOTSTRAP_FUNC = "_ensure_registered"

LIFECYCLE_HOOKS = ("on_arrival", "on_issue", "on_complete")
WAKE_FUNCS = ("next_event_time", "wake_time")


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def policy_classes(
    project: Project,
) -> List[Tuple[SourceFile, ast.ClassDef]]:
    """Transitive subclasses of the protocol base, excluding the base."""
    classes: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
    for file in project.parsed():
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                classes.setdefault(node.name, (file, node))
    members = {PROTOCOL_BASE}
    changed = True
    while changed:
        changed = False
        for name, (_, node) in classes.items():
            if name not in members and _base_names(node) & members:
                members.add(name)
                changed = True
    return [
        classes[name]
        for name in sorted(members - {PROTOCOL_BASE})
        if name in classes
    ]


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _arms_has_hooks(node: ast.ClassDef) -> bool:
    """Does the class body set ``has_hooks = True``?"""
    for stmt in node.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "has_hooks"
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


def _static_name_returns(fn: ast.FunctionDef) -> Optional[Set[Tuple[str, ...]]]:
    """Name sequences returned by ``key_field_names``, or None if dynamic."""
    sequences: Set[Tuple[str, ...]] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if not isinstance(node.value, ast.Tuple):
            return None
        names = []
        for elt in node.value.elts:
            name = const_str(elt)
            if name is None:
                return None
            names.append(name)
        sequences.add(tuple(names))
    return sequences


def _static_spec_returns(fn: ast.FunctionDef) -> Optional[Set[Tuple[str, ...]]]:
    """Label sequences of ``key_field_specs`` KeyField tuples, or None."""
    sequences: Set[Tuple[str, ...]] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if isinstance(node.value, ast.Constant) and node.value.value is None:
            continue  # "no layout" opts out of packing, nothing to match
        if not isinstance(node.value, ast.Tuple):
            return None
        labels = []
        for elt in node.value.elts:
            if not (
                isinstance(elt, ast.Call)
                and isinstance(elt.func, ast.Name)
                and elt.func.id == "KeyField"
                and elt.args
            ):
                return None
            label = const_str(elt.args[0])
            if label is None:
                return None
            labels.append(label)
        sequences.add(tuple(labels))
    return sequences


def _bootstrap_coverage(project: Project) -> Optional[Set[str]]:
    """Class names reachable from the policy-registry bootstrap.

    Starts from every identifier the bootstrap function mentions, then
    chases module-level assignments across the tree (``POLICIES = {...
    for p in (FR_FCFS, ...)}`` pulls in the instance names, which pull
    in the class name), to a fixed point.
    """
    locator = project.find_function(REGISTRY_LOCATOR_FUNC)
    if locator is None:
        return None
    registry_file = locator[0]
    bootstrap = None
    for stmt in registry_file.tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == BOOTSTRAP_FUNC:
            bootstrap = stmt
    if bootstrap is None:
        return None

    referenced: Set[str] = set()
    for node in ast.walk(bootstrap):
        if isinstance(node, ast.Name):
            referenced.add(node.id)
        elif isinstance(node, ast.Attribute):
            referenced.add(node.attr)

    assignments: List[Tuple[str, ast.AST]] = []
    for file in project.parsed():
        for stmt in file.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assignments.append((target.id, stmt.value))
    changed = True
    while changed:
        changed = False
        for name, value in assignments:
            if name not in referenced:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Name) and node.id not in referenced:
                    referenced.add(node.id)
                    changed = True
    return referenced


@register
class PolicyConformancePass(LintPass):
    rule = "POL300"
    title = "SchedulingPolicy subclasses: keys, hooks, flags, registry"

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        classes = policy_classes(project)
        if not classes:
            return []
        coverage = _bootstrap_coverage(project)

        for file, node in classes:
            methods = _methods(node)
            armed = _arms_has_hooks(node)

            names_fn = methods.get("key_field_names")
            specs_fn = methods.get("key_field_specs")
            if specs_fn is not None and names_fn is None:
                findings.append(
                    Finding(
                        file.path,
                        specs_fn.lineno,
                        self.rule,
                        f"{node.name} declares key_field_specs() but "
                        "inherits key_field_names(); the packed layout's "
                        "labels would not describe this policy's key",
                    )
                )
            if names_fn is not None and specs_fn is not None:
                names = _static_name_returns(names_fn)
                specs = _static_spec_returns(specs_fn)
                if names is not None and specs is not None and specs:
                    if names != specs:
                        findings.append(
                            Finding(
                                file.path,
                                specs_fn.lineno,
                                self.rule,
                                f"{node.name}: key_field_specs() labels "
                                f"{sorted(specs)} do not match "
                                f"key_field_names() {sorted(names)}",
                            )
                        )

            hooks = [h for h in LIFECYCLE_HOOKS if h in methods]
            if hooks and not armed:
                findings.append(
                    Finding(
                        file.path,
                        methods[hooks[0]].lineno,
                        self.rule,
                        f"{node.name} defines {', '.join(hooks)} but does "
                        "not set has_hooks = True; the controller never "
                        "dispatches unarmed hooks",
                    )
                )
            if armed and not hooks and "on_cycle" not in methods:
                findings.append(
                    Finding(
                        file.path,
                        node.lineno,
                        self.rule,
                        f"{node.name} arms has_hooks = True but defines no "
                        "lifecycle or epoch hooks (dead dispatch cost)",
                    )
                )

            if "fq_family" in methods:
                findings.append(
                    Finding(
                        file.path,
                        methods["fq_family"].lineno,
                        self.rule,
                        f"{node.name} overrides fq_family; set fq_bank_rule "
                        "instead — the inversion invariant keys off the flag",
                    )
                )

            if coverage is not None and node.name not in coverage:
                findings.append(
                    Finding(
                        file.path,
                        node.lineno,
                        self.rule,
                        f"{node.name} is not reachable from the policy "
                        "registry bootstrap; no SystemConfig can select it",
                    )
                )
        return findings


class _WakePurityVisitor(ast.NodeVisitor):
    """Wall-clock / RNG calls inside a wake function body."""

    def __init__(self) -> None:
        self.hits: List[Tuple[int, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name is not None and (base_name, func.attr) in WALL_CLOCK_CALLS:
                self.hits.append((node.lineno, f"{base_name}.{func.attr}()"))
            if base_name == "random" and func.attr in GLOBAL_RANDOM_FUNCS:
                self.hits.append((node.lineno, f"random.{func.attr}()"))
        self.generic_visit(node)


@register
class WakeContractPass(LintPass):
    rule = "WAKE400"
    title = "wake functions return on every path, from simulated time only"

    def check_file(self, file: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.FunctionDef) and node.name in WAKE_FUNCS
            ):
                continue
            if not always_exits(node.body):
                findings.append(
                    Finding(
                        file.path,
                        node.lineno,
                        self.rule,
                        f"{node.name}() can fall off the end; an implicit "
                        "None reads as 'never wake me' and the event engine "
                        "would skip this component's boundary — return "
                        "explicitly on every path",
                    )
                )
            purity = _WakePurityVisitor()
            for stmt in node.body:
                purity.visit(stmt)
            for line, call in purity.hits:
                findings.append(
                    Finding(
                        file.path,
                        line,
                        self.rule,
                        f"{node.name}() derives a wake time via {call}; "
                        "wake times must come from simulated cycles only",
                    )
                )
        return findings

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for file, node in policy_classes(project):
            methods = _methods(node)
            if "on_cycle" in methods and not _arms_has_hooks(node):
                findings.append(
                    Finding(
                        file.path,
                        methods["on_cycle"].lineno,
                        self.rule,
                        f"{node.name} overrides on_cycle without "
                        "has_hooks = True; the epoch hook is never "
                        "dispatched, so published wake times do nothing",
                    )
                )
        return findings
