"""Project model: the file set a lint run analyzes, plus lookups.

A :class:`Project` expands the paths given on the command line into a
sorted list of ``*.py`` :class:`~repro.lint.core.SourceFile` objects and
offers the cross-file lookups the contract passes need — find a class
or function by name anywhere in the tree, enumerate dataclass fields,
and read the project documentation (for the env-var table audit).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .core import SourceFile, decorator_names

#: Documentation files scanned by passes that audit prose (ENV200).
DOC_FILES = ("README.md", "docs/INTERNALS.md")


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen[str(candidate)] = candidate
        elif path.suffix == ".py":
            seen[str(path)] = path
    return [seen[key] for key in sorted(seen)]


class Project:
    """The parsed file set for one lint run."""

    def __init__(self, files: Iterable[SourceFile], root: Optional[Path] = None):
        self.files: List[SourceFile] = list(files)
        self.root = Path(root) if root is not None else Path(".")
        self._docs_text: Optional[str] = None

    @classmethod
    def load(cls, paths: Iterable[Path], root: Optional[Path] = None) -> "Project":
        return cls(
            (SourceFile(path) for path in iter_python_files(paths)), root=root
        )

    def parsed(self) -> List[SourceFile]:
        return [file for file in self.files if file.tree is not None]

    # -- documentation -----------------------------------------------------

    @property
    def docs_text(self) -> str:
        """Concatenated text of the project docs (empty if none exist)."""
        if self._docs_text is None:
            chunks = []
            for name in DOC_FILES:
                doc = self.root / name
                if doc.is_file():
                    chunks.append(doc.read_text())
            self._docs_text = "\n".join(chunks)
        return self._docs_text

    @property
    def has_docs(self) -> bool:
        return bool(self.docs_text.strip())

    # -- cross-file AST lookups --------------------------------------------

    def find_class(self, name: str) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
        for file in self.parsed():
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return file, node
        return None

    def find_function(
        self, name: str
    ) -> Optional[Tuple[SourceFile, ast.FunctionDef]]:
        """First module-level function with this name anywhere in the tree."""
        for file in self.parsed():
            for node in file.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return file, node
        return None

    def file_named(self, *suffix: str) -> Optional[SourceFile]:
        """The parsed file whose path ends with the given parts."""
        for file in self.parsed():
            if file.parts[-len(suffix):] == suffix:
                return file
        return None


def dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Field names of a dataclass body, in declaration order.

    Only annotated assignments count (matching ``dataclasses.fields``);
    ``ClassVar`` annotations and dunder assignments are skipped.
    """
    names: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
        if "ClassVar" in annotation:
            continue
        names.append(stmt.target.id)
    return names


def is_dataclass(node: ast.ClassDef) -> bool:
    return "dataclass" in decorator_names(node)


def module_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    table: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                table[target.id] = stmt.value.value
    return table
