"""Finding emitters: text, JSON, and SARIF 2.1.0.

SARIF is the interchange format CI understands (GitHub code scanning,
IDE plugins).  The repo takes no dependency on a schema library, so
:func:`validate_sarif` hand-checks the structural subset this module
emits — enough to catch a malformed document before CI uploads it, and
pinned by the lint test suite so the emitted shape cannot drift.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import Finding, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/fair-queuing-memory-systems"


def render_text(report: LintReport) -> str:
    """Human-readable findings, one per line, plus a summary."""
    lines = [str(finding) for finding in report.findings]
    if report.findings:
        lines.append(f"{len(report.findings)} lint finding(s)")
    else:
        lines.append(
            f"lint: clean ({report.files_checked} files, "
            f"{len(report.rules)} rules, "
            f"{len(report.suppressed)} suppressed)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "rules": report.rules,
        "files_checked": report.files_checked,
        "findings": [
            {
                "path": str(f.path),
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
            }
            for f in report.findings
        ],
        "suppressed": len(report.suppressed),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def sarif_document(report: LintReport, rule_titles: Dict[str, str]) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run (as plain dicts)."""
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": rule_titles.get(rule, rule)},
        }
        for rule in report.rules
    ]
    results = [_sarif_result(finding) for finding in report.findings]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(finding.path).replace("\\", "/"),
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }


def render_sarif(report: LintReport, rule_titles: Dict[str, str]) -> str:
    return json.dumps(sarif_document(report, rule_titles), indent=2)


def validate_sarif(document: Any) -> List[str]:
    """Structural problems with a SARIF document ([] when valid).

    Checks the subset :func:`sarif_document` emits: version, runs,
    tool.driver with named rules, and results whose ruleIds resolve and
    whose locations carry a uri and a positive startLine.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}.tool.driver.name missing")
            continue
        rules = driver.get("rules", [])
        rule_ids = set()
        if not isinstance(rules, list):
            problems.append(f"{where}.tool.driver.rules must be an array")
            rules = []
        for rule in rules:
            rule_id = rule.get("id") if isinstance(rule, dict) else None
            if not isinstance(rule_id, str):
                problems.append(f"{where}: rule without a string id")
            elif rule_id in rule_ids:
                problems.append(f"{where}: duplicate rule id {rule_id!r}")
            else:
                rule_ids.add(rule_id)
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for rindex, result in enumerate(results):
            rwhere = f"{where}.results[{rindex}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str):
                problems.append(f"{rwhere}.ruleId missing")
            elif rule_ids and rule_id not in rule_ids:
                problems.append(
                    f"{rwhere}.ruleId {rule_id!r} not declared in driver.rules"
                )
            message = result.get("message")
            if not (
                isinstance(message, dict)
                and isinstance(message.get("text"), str)
            ):
                problems.append(f"{rwhere}.message.text missing")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                problems.append(f"{rwhere}.locations must be non-empty")
                continue
            for location in locations:
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    problems.append(f"{rwhere}: location without physicalLocation")
                    continue
                artifact = physical.get("artifactLocation")
                if not (
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str)
                ):
                    problems.append(f"{rwhere}: artifactLocation.uri missing")
                region = physical.get("region")
                start = region.get("startLine") if isinstance(region, dict) else None
                if not (isinstance(start, int) and start >= 1):
                    problems.append(f"{rwhere}: region.startLine must be >= 1")
    return problems
