"""Core types of the static-analysis framework: findings, sources, passes.

The framework is deliberately tiny: a :class:`SourceFile` wraps one
parsed module, a :class:`LintPass` contributes findings for a rule, and
:func:`repro.lint.run_lint` drives every registered pass over a
:class:`~repro.lint.project.Project` (the parsed file set plus a light
module graph).  Everything is stdlib ``ast`` — no third-party parser,
no imports of the code under analysis, so linting a broken tree can
never execute it.

Suppressions are line-scoped comments, shared by every pass:

* ``# lint: allow(RULE, reason)`` — suppress ``RULE`` on this line.
* ``# det: allow(reason)`` — the legacy determinism-lint spelling;
  suppresses any ``DET###`` rule on the line (kept so the pre-framework
  ``tools/lint_determinism.py`` call sites and comments keep working).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

#: Pseudo-rule for files that do not parse; every pass depends on a
#: tree, so a syntax error is reported once under this id (the name is
#: inherited from the determinism lint for shim compatibility).
PARSE_ERROR_RULE = "DET000"

_LINT_ALLOW = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Z]{2,8}\d{3})\s*(?:,\s*(?P<reason>[^)]*))?\)"
)
_DET_ALLOW = re.compile(r"#\s*det:\s*allow\(")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: Path
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A line-scoped allow comment."""

    line: int
    rule: Optional[str]  #: None = legacy ``det: allow`` (any DET rule)
    reason: str

    def covers(self, rule: str) -> bool:
        if self.rule is None:
            return rule.startswith("DET")
        return self.rule == rule


def parse_suppressions(source: str) -> Dict[int, List[Suppression]]:
    """Line → suppressions carried by that line (both spellings)."""
    table: Dict[int, List[Suppression]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        if "allow(" not in text:
            continue
        entries = table.setdefault(number, [])
        for match in _LINT_ALLOW.finditer(text):
            reason = (match.group("reason") or "").strip()
            entries.append(Suppression(number, match.group(1), reason))
        if _DET_ALLOW.search(text):
            entries.append(Suppression(number, None, "legacy det: allow"))
        if not entries:
            del table[number]
    return table


class SourceFile:
    """One parsed module: path, source text, AST, and suppressions.

    ``tree`` is ``None`` when the file does not parse; ``parse_error``
    then carries the ready-made :data:`PARSE_ERROR_RULE` finding.
    Passes should simply skip files whose ``tree`` is ``None`` — the
    driver reports the parse error exactly once.
    """

    def __init__(self, path: Path, source: Optional[str] = None):
        self.path = Path(path)
        self.source = self.path.read_text() if source is None else source
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(self.source, filename=str(self.path))
        except SyntaxError as error:
            self.parse_error = Finding(
                self.path,
                error.lineno or 0,
                PARSE_ERROR_RULE,
                f"syntax error: {error.msg}",
            )
        self.suppressions = parse_suppressions(self.source)
        #: Per-file scratch space for passes that share one expensive
        #: traversal across several rule ids (the determinism family).
        self.cache: Dict[str, object] = {}

    @property
    def parts(self) -> tuple:
        return self.path.parts

    def suppressed(self, finding: Finding) -> bool:
        for suppression in self.suppressions.get(finding.line, ()):
            if suppression.covers(finding.rule):
                return True
        return False


class LintPass:
    """Base class for one rule's analysis.

    Subclasses set :attr:`rule` / :attr:`title` and override
    :meth:`check_file` (called once per parsed file) and/or
    :meth:`check_project` (called once per run, for cross-file
    contracts).  Findings are returned, never printed; the driver
    applies suppressions and hands surviving findings to an emitter.
    """

    #: Rule identifier, e.g. ``"FPR100"``; unique across the registry.
    rule: str = "LNT000"
    #: One-line summary shown in ``--list-rules`` and SARIF metadata.
    title: str = ""

    def check_file(self, file: SourceFile, project) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        return ()


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    rules: List[str]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (str(f.path), f.line, f.rule, f.message))


# -- shared AST helpers (used by several passes) ---------------------------


def decorator_names(node: ast.ClassDef) -> Set[str]:
    """Bare names of a class's decorators (``dataclass(frozen=True)`` → ``dataclass``)."""
    names: Set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def const_str(node: ast.AST) -> Optional[str]:
    """The string value of a constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def always_exits(body: List[ast.stmt]) -> bool:
    """Conservatively: does every path through ``body`` return or raise?

    Loops are treated as skippable (a ``for``/``while`` may run zero
    iterations), so only explicit terminal statements count.  Used by
    the wake-contract pass to prove a function cannot fall off the end
    and return an implicit ``None``.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return True
        if isinstance(stmt, ast.If):
            if stmt.orelse and always_exits(stmt.body) and always_exits(stmt.orelse):
                return True
        elif isinstance(stmt, ast.With):
            if always_exits(stmt.body):
                return True
        elif isinstance(stmt, ast.Try):
            handlers_exit = all(always_exits(h.body) for h in stmt.handlers)
            body_exits = always_exits(stmt.body) and (
                not stmt.orelse or always_exits(stmt.orelse)
            )
            if (stmt.finalbody and always_exits(stmt.finalbody)) or (
                body_exits and handlers_exit
            ):
                return True
        elif isinstance(stmt, ast.Match):
            cases = stmt.cases
            exhaustive = any(
                isinstance(c.pattern, ast.MatchAs) and c.pattern.pattern is None
                for c in cases
            )
            if exhaustive and all(always_exits(c.body) for c in cases):
                return True
    return False
