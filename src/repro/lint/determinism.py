"""DET001–DET007: the determinism rules, ported from tools/lint_determinism.py.

The simulator's contract is bit-identical results from identical inputs
(the result cache, the differential checker, and every golden test
depend on it).  These rules flag constructs that historically break
that contract.  Semantics are identical to the pre-framework
standalone tool — ``tools/lint_determinism.py`` is now a thin shim over
this module, and the golden-corpus test pins the equivalence.

All seven rules share a single AST traversal per file (cached on
``SourceFile.cache``); each pass simply filters the shared finding list
by its rule id, so running one rule or all seven costs one walk.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Set

from .core import Finding, LintPass, SourceFile
from .registry import register

#: Functions in the ``random`` module that draw from the global
#: (unseeded) generator.  ``random.Random`` is the sanctioned API.
GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits",
}

#: Wall-clock reads: (module-ish prefix, attribute).
WALL_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "today"), ("datetime", "utcnow"),
    ("date", "today"),
}

#: Reducers whose result does not depend on iteration order.
ORDER_INSENSITIVE = {
    "min", "max", "sum", "any", "all", "len", "sorted", "set",
    "frozenset",
}

#: VTMS virtual-time fields: float-valued priority-key components.
FLOAT_PRIORITY_ATTRS = {
    "virtual_finish_time", "virtual_start_time", "virtual_arrival",
    "oldest_arrival", "channel_finish", "bank_finish", "clock", "share",
}

MUTABLE_DEFAULT_CALLS = {"list", "dict", "set", "deque", "defaultdict"}

#: Modules the telemetry package may not import at all (DET006): every
#: telemetry timestamp must come from simulated cycles, and telemetry
#: must never perturb (or appear to perturb) a traced run.
TELEMETRY_BANNED_MODULES = {"time", "datetime", "random"}

#: Path component marking a file as part of the telemetry package.
TELEMETRY_PACKAGE = "telemetry"

#: Modules the policy package may not import at all (DET007): priority
#: keys and lifecycle hooks must be pure functions of simulated state,
#: or cached results and the event engine's skip proof are invalid.
POLICY_BANNED_MODULES = {"time", "datetime", "random"}

#: Path component marking a file as part of the policy package.
POLICY_PACKAGE = "policy"

#: Modules the obs package may not import at all (DET008): the
#: observability layer is a pure observer whose outputs ride result
#: manifests — randomness is banned outright, and the wall clock is
#: confined to the single registered harness module
#: (``repro/obs/phases.py``), which carries the one reasoned
#: suppression.
OBS_BANNED_MODULES = {"time", "datetime", "random"}

#: Path component marking a file as part of the obs package.
OBS_PACKAGE = "obs"

#: Modules the serve package may not import at all (DET009): the
#: experiment service schedules and times out *jobs*, never
#: simulations — wall-clock access is confined to the single
#: registered clock module (``repro/serve/clock.py``, which carries
#: the one reasoned suppression), and randomness is banned outright
#: (retry backoff is deliberately jitter-free, and the fair scheduler
#: must dispatch deterministically given submission order).
SERVE_BANNED_MODULES = {"time", "datetime", "random"}

#: Path component marking a file as part of the serve package.
SERVE_PACKAGE = "serve"

_CACHE_KEY = "determinism.findings"


class _SetNameCollector(ast.NodeVisitor):
    """First pass: names/attributes that statically hold sets."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _is_set_annotation(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript):
            return self._is_set_annotation(node.value)
        if isinstance(node, ast.Name):
            return node.id in ("Set", "set", "FrozenSet", "frozenset")
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.strip()
            return text.startswith(("Set[", "set[", "FrozenSet[", "frozenset["))
        return False

    @staticmethod
    def _target_name(target: ast.AST) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return ""

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                name = self._target_name(target)
                if name:
                    self.set_names.add(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._target_name(node.target)
        if name and self._is_set_annotation(node.annotation):
            self.set_names.add(name)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and self._is_set_annotation(
            node.annotation
        ):
            self.set_names.add(node.arg)
        self.generic_visit(node)


class _HazardVisitor(ast.NodeVisitor):
    """Second pass: emit findings for all seven rules in one walk."""

    def __init__(self, path: Path, set_names: Set[str]):
        self.path = path
        self.set_names = set_names
        self.in_telemetry = TELEMETRY_PACKAGE in path.parts
        self.in_policy = POLICY_PACKAGE in path.parts
        self.in_obs = OBS_PACKAGE in path.parts
        self.in_serve = SERVE_PACKAGE in path.parts
        self.findings: List[Finding] = []
        #: Comprehension generators consumed by an order-insensitive
        #: reducer (``min(x for x in s)`` and ``min({...})`` shapes).
        self._blessed: Set[int] = set()

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), rule, message)
        )

    def _is_set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_names
        return False

    # -- DET001 / DET002: calls --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name == "random" and func.attr in GLOBAL_RANDOM_FUNCS:
                self._emit(
                    node,
                    "DET001",
                    f"random.{func.attr}() uses the global unseeded RNG; "
                    "use a seeded random.Random(seed) instance",
                )
            if base_name is not None and (base_name, func.attr) in WALL_CLOCK_CALLS:
                self._emit(
                    node,
                    "DET002",
                    f"{base_name}.{func.attr}() reads the wall clock; "
                    "simulation state must not depend on host time",
                )
        elif isinstance(func, ast.Name) and func.id in ORDER_INSENSITIVE:
            # Bless generator/set arguments of order-insensitive
            # reducers so DET003 skips them.
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    self._blessed.add(id(arg))
                elif self._is_set_valued(arg):
                    self._blessed.add(id(arg))
        self.generic_visit(node)

    # -- DET006/DET007: banned imports in the telemetry/policy packages -----

    def _check_telemetry_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".", 1)[0]
        if root in TELEMETRY_BANNED_MODULES:
            self._emit(
                node,
                "DET006",
                f"import of '{module}' inside the telemetry package; "
                "telemetry timestamps must derive only from simulated "
                "cycles, never host time or randomness",
            )

    def _check_policy_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".", 1)[0]
        if root in POLICY_BANNED_MODULES:
            self._emit(
                node,
                "DET007",
                f"import of '{module}' inside the policy package; "
                "scheduling decisions must be pure functions of "
                "simulated state, never host time or randomness",
            )

    def _check_obs_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".", 1)[0]
        if root in OBS_BANNED_MODULES:
            self._emit(
                node,
                "DET008",
                f"import of '{module}' inside the obs package; the "
                "observability layer must stay a pure observer — wall-"
                "clock access is confined to repro/obs/phases.py (the "
                "registered harness module), randomness is banned "
                "outright",
            )

    def _check_serve_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".", 1)[0]
        if root in SERVE_BANNED_MODULES:
            self._emit(
                node,
                "DET009",
                f"import of '{module}' inside the serve package; the "
                "experiment service must schedule deterministically — "
                "wall-clock access is confined to repro/serve/clock.py "
                "(the registered clock module), randomness is banned "
                "outright",
            )

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_telemetry:
            for alias in node.names:
                self._check_telemetry_import(node, alias.name)
        if self.in_policy:
            for alias in node.names:
                self._check_policy_import(node, alias.name)
        if self.in_obs:
            for alias in node.names:
                self._check_obs_import(node, alias.name)
        if self.in_serve:
            for alias in node.names:
                self._check_serve_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_telemetry and node.module is not None and node.level == 0:
            self._check_telemetry_import(node, node.module)
        if self.in_policy and node.module is not None and node.level == 0:
            self._check_policy_import(node, node.module)
        if self.in_obs and node.module is not None and node.level == 0:
            self._check_obs_import(node, node.module)
        if self.in_serve and node.module is not None and node.level == 0:
            self._check_serve_import(node, node.module)
        if node.module == "random":
            imported = {alias.name for alias in node.names}
            bad = sorted(imported & GLOBAL_RANDOM_FUNCS)
            if bad:
                self._emit(
                    node,
                    "DET001",
                    f"from random import {', '.join(bad)} binds the global "
                    "unseeded RNG; use random.Random(seed)",
                )
        self.generic_visit(node)

    # -- DET003: set iteration ---------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_valued(node.iter):
            self._emit(
                node,
                "DET003",
                "for-loop over a set: iteration order is not deterministic "
                "across runs; iterate a list or sorted(...) instead",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST, comprehensions) -> None:
        if id(node) in self._blessed:
            return
        for comp in comprehensions:
            if self._is_set_valued(comp.iter):
                self._emit(
                    node,
                    "DET003",
                    "comprehension over a set feeds an order-sensitive "
                    "consumer; wrap the set in sorted(...) or reduce with "
                    "min/max/sum/any/all",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    # -- DET004: float equality on priority keys ---------------------------

    @staticmethod
    def _priority_attr(node: ast.AST) -> str:
        if isinstance(node, ast.Attribute) and node.attr in FLOAT_PRIORITY_ATTRS:
            return node.attr
        if isinstance(node, ast.Name) and node.id in FLOAT_PRIORITY_ATTRS:
            return node.id
        return ""

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            name = self._priority_attr(left) or self._priority_attr(right)
            if name:
                self._emit(
                    node,
                    "DET004",
                    f"float equality on virtual-time field '{name}'; "
                    "compare full ordering keys (with integer tie-breakers) "
                    "instead of raw float equality",
                )
        self.generic_visit(node)

    # -- DET005: mutable default arguments ----------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_DEFAULT_CALLS
            )
            if mutable:
                self._emit(
                    default,
                    "DET005",
                    f"mutable default argument in {node.name}(); "
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def hazard_findings(file: SourceFile) -> List[Finding]:
    """All DET findings for one file; one shared walk, cached on the file."""
    cached = file.cache.get(_CACHE_KEY)
    if cached is None:
        collector = _SetNameCollector()
        collector.visit(file.tree)
        visitor = _HazardVisitor(file.path, collector.set_names)
        visitor.visit(file.tree)
        cached = visitor.findings
        file.cache[_CACHE_KEY] = cached
    return cached


class _DeterminismPass(LintPass):
    """Shared shape: filter the cached per-file findings by rule id."""

    def check_file(self, file: SourceFile, project) -> Iterable[Finding]:
        return [f for f in hazard_findings(file) if f.rule == self.rule]


@register
class GlobalRandomPass(_DeterminismPass):
    rule = "DET001"
    title = "unseeded randomness: global random.* calls or from-imports"


@register
class WallClockPass(_DeterminismPass):
    rule = "DET002"
    title = "wall-clock reads in simulation logic"


@register
class SetIterationPass(_DeterminismPass):
    rule = "DET003"
    title = "order-sensitive iteration over a set"


@register
class FloatEqualityPass(_DeterminismPass):
    rule = "DET004"
    title = "float equality on virtual-time priority fields"


@register
class MutableDefaultPass(_DeterminismPass):
    rule = "DET005"
    title = "mutable default argument"


@register
class TelemetryImportPass(_DeterminismPass):
    rule = "DET006"
    title = "time/RNG imports inside the telemetry package"


@register
class PolicyImportPass(_DeterminismPass):
    rule = "DET007"
    title = "time/RNG imports inside the policy package"


@register
class ObsImportPass(_DeterminismPass):
    rule = "DET008"
    title = "time/RNG imports inside the obs package"


@register
class ServeImportPass(_DeterminismPass):
    rule = "DET009"
    title = "time/RNG imports inside the serve package"


#: Rule ids this module provides, in catalog order (used by the shim).
#: DET008/DET009 are deliberately absent: the shim's golden corpus
#: predates the obs and serve packages, and the standalone tool keeps
#: its pinned DET001–DET007 surface; the framework registry carries
#: DET008 and DET009.
DET_RULES = (
    "DET001", "DET002", "DET003", "DET004", "DET005", "DET006", "DET007",
)
