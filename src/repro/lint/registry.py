"""Pass registry: rule id → :class:`~repro.lint.core.LintPass`.

Mirrors the idiom of :mod:`repro.policy.registry`: a module-level table,
an explicit :func:`register` hook for out-of-tree passes, and a lazy
bootstrap that imports the built-in pass modules on first lookup so
``import repro.lint`` stays cheap.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .core import LintPass

_REGISTRY: Dict[str, Type[LintPass]] = {}
_BOOTSTRAPPED = False


def register(pass_cls: Type[LintPass]) -> Type[LintPass]:
    """Register a pass class under its rule id (usable as a decorator)."""
    rule = pass_cls.rule
    existing = _REGISTRY.get(rule)
    if existing is not None and existing is not pass_cls:
        raise ValueError(f"duplicate lint rule {rule!r}: {existing} vs {pass_cls}")
    _REGISTRY[rule] = pass_cls
    return pass_cls


def _ensure_registered() -> None:
    """Import built-in pass modules exactly once (registration side effect)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from . import conformance, determinism, envaudit, fingerprint, hotpath  # noqa: F401


def registered_rules() -> List[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def resolve(rule: str) -> Type[LintPass]:
    _ensure_registered()
    try:
        return _REGISTRY[rule]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown lint rule {rule!r}; registered: {known}") from None


def make_passes(rules=None) -> List[LintPass]:
    """Instantiate the selected passes (all registered rules by default)."""
    _ensure_registered()
    selected = registered_rules() if rules is None else list(rules)
    return [resolve(rule)() for rule in selected]
