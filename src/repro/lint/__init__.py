"""Contract-aware static analysis for the simulator.

``repro.lint`` is a small plugin framework (stdlib ``ast`` only) whose
passes encode the *repository's own contracts* — the invariants generic
linters cannot know:

* DET001–DET008 — the determinism rules (randomness, wall clocks, set
  iteration, float key equality, mutable defaults, banned imports in
  the policy and obs packages), DET001–DET007 migrated from the
  standalone ``tools/lint_determinism.py`` (now a shim over this
  package); DET008 keeps :mod:`repro.obs` a pure observer whose only
  wall-clock access is the registered ``repro/obs/phases.py`` module.
* FPR100 — every ``SystemConfig`` field must reach the result-cache
  fingerprint, or sweeps silently read stale cached results.
* ENV200 — every ``REPRO_*`` environment read must go through the
  declared registry module (:mod:`repro.env`) and be documented and
  classified fingerprint-relevant or semantics-free.
* POL300 — ``SchedulingPolicy`` subclasses: packed-key labels match
  declared names, hooks are armed, the registry can reach the class.
* WAKE400 — event-engine wake functions return on every path and
  derive times from simulated cycles only.
* HOT500 — the scheduler/legality hot paths stay free of per-call
  formatting, sorting temporaries, and module-level mutable state.

Run ``repro-fqms lint`` (or ``python -m repro.lint``) for the CLI;
see ``docs/INTERNALS.md`` ("Static analysis") for the rule catalog and
how to write a pass.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .core import (
    Finding,
    LintPass,
    LintReport,
    SourceFile,
    sort_findings,
)
from .project import Project
from .registry import make_passes, register, registered_rules

__all__ = [
    "Finding",
    "LintPass",
    "LintReport",
    "Project",
    "SourceFile",
    "make_passes",
    "register",
    "registered_rules",
    "rule_titles",
    "run_lint",
]


def rule_titles() -> Dict[str, str]:
    """Rule id → one-line description, for emitters and ``--list-rules``."""
    return {p.rule: p.title for p in make_passes()}


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Run the selected passes (default: all) over ``paths``.

    Suppressions (``# lint: allow(RULE, reason)`` and the legacy
    ``# det: allow(reason)``) are applied here, after every pass has
    reported; suppressed findings are retained on the report for
    accounting but carry no exit-code weight.
    """
    project = Project.load(paths, root=root)
    passes = make_passes(rules)
    by_path = {str(file.path): file for file in project.files}

    raw: List[Finding] = []
    for file in project.files:
        if file.parse_error is not None:
            raw.append(file.parse_error)
    for lint_pass in passes:
        for file in project.parsed():
            raw.extend(lint_pass.check_file(file, project))
        raw.extend(lint_pass.check_project(project))

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        file = by_path.get(str(finding.path))
        if file is not None and file.suppressed(finding):
            suppressed.append(finding)
        else:
            findings.append(finding)

    return LintReport(
        findings=sort_findings(findings),
        suppressed=sort_findings(suppressed),
        rules=[p.rule for p in passes],
        files_checked=len(project.files),
    )
