"""ENV200: REPRO_* environment-variable audit.

Environment knobs are the simulator's sharpest bit-identity hazard:
a ``REPRO_*`` read buried in a module either changes results (then it
MUST be folded into the cache fingerprint) or it doesn't (then it must
be provably semantics-free).  Scattered ``os.environ.get`` calls make
that classification unreviewable, so the contract is:

* exactly one *registry module* declares every knob in a module-level
  ``ENV_VARS`` tuple of ``EnvVar(name, fingerprint_relevant=...)``
  entries (:mod:`repro.env` in the real tree);
* every other module routes reads through that registry's accessors —
  a literal ``os.environ``/``os.getenv`` read of a ``REPRO_*`` name
  anywhere else is a finding;
* every declared knob carries a literal ``fingerprint_relevant`` flag
  and appears in the project documentation's env-var table.

Writes (``os.environ["REPRO_X"] = ...``) are exempt: the CLI
legitimately exports knobs to worker processes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Finding, LintPass, SourceFile, const_str
from .project import Project, module_constants
from .registry import register

ENV_PREFIX = "REPRO_"
REGISTRY_TABLE = "ENV_VARS"
ENTRY_CLASS = "EnvVar"


def _env_read_name(node: ast.Call, constants: Dict[str, str]) -> Optional[str]:
    """The variable name read by an ``os.environ.get``/``os.getenv`` call."""
    func = node.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if func.attr == "get" and isinstance(base, ast.Attribute):
            #  os.environ.get(...)
            if base.attr != "environ":
                return None
        elif func.attr == "get" and isinstance(base, ast.Name):
            #  environ.get(...)  (from os import environ)
            if base.id != "environ":
                return None
        elif func.attr == "getenv":
            #  os.getenv(...)
            pass
        else:
            return None
    else:
        return None
    if not node.args:
        return None
    return _resolve_name(node.args[0], constants)


def _resolve_name(node: ast.AST, constants: Dict[str, str]) -> Optional[str]:
    value = const_str(node)
    if value is None and isinstance(node, ast.Name):
        value = constants.get(node.id)
    if value is not None and value.startswith(ENV_PREFIX):
        return value
    return None


class _EnvReadCollector(ast.NodeVisitor):
    """All ``REPRO_*`` environment reads in one module."""

    def __init__(self, constants: Dict[str, str]):
        self.constants = constants
        self.reads: List[Tuple[int, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        name = _env_read_name(node, self.constants)
        if name is not None:
            self.reads.append((node.lineno, name))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        #  os.environ["REPRO_X"] in Load context only; Store/Del are writes.
        if isinstance(node.ctx, ast.Load) and isinstance(
            node.value, ast.Attribute
        ) and node.value.attr == "environ":
            name = _resolve_name(node.slice, self.constants)
            if name is not None:
                self.reads.append((node.lineno, name))
        self.generic_visit(node)


def _registry_entries(
    file: SourceFile,
) -> Optional[List[Tuple[int, Optional[str], Optional[bool]]]]:
    """Parsed ``ENV_VARS`` entries: (line, name, fingerprint_relevant).

    Returns None when the module declares no ``ENV_VARS`` table; a
    non-literal name or flag surfaces as None inside the tuple.
    """
    for stmt in file.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == REGISTRY_TABLE):
            continue
        if not isinstance(stmt.value, (ast.Tuple, ast.List)):
            return []
        entries = []
        for elt in stmt.value.elts:
            if not (
                isinstance(elt, ast.Call)
                and isinstance(elt.func, ast.Name)
                and elt.func.id == ENTRY_CLASS
            ):
                continue
            name = const_str(elt.args[0]) if elt.args else None
            if name is None:
                for kw in elt.keywords:
                    if kw.arg == "name":
                        name = const_str(kw.value)
            relevant: Optional[bool] = None
            positionals = elt.args[1:]
            candidates = list(positionals[:1]) + [
                kw.value for kw in elt.keywords if kw.arg == "fingerprint_relevant"
            ]
            for cand in candidates:
                if isinstance(cand, ast.Constant) and isinstance(cand.value, bool):
                    relevant = cand.value
            entries.append((elt.lineno, name, relevant))
        return entries
    return None


@register
class EnvRegistryPass(LintPass):
    rule = "ENV200"
    title = "REPRO_* env reads must go through the declared registry module"

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        registries: List[Tuple[SourceFile, list]] = []
        reads: List[Tuple[SourceFile, int, str]] = []

        for file in project.parsed():
            entries = _registry_entries(file)
            if entries is not None:
                registries.append((file, entries))
            collector = _EnvReadCollector(module_constants(file.tree))
            collector.visit(file.tree)
            for line, name in collector.reads:
                reads.append((file, line, name))

        if not registries and not reads:
            return []

        for extra_file, entries in registries[1:]:
            line = entries[0][0] if entries else 1
            findings.append(
                Finding(
                    extra_file.path,
                    line,
                    self.rule,
                    f"second {REGISTRY_TABLE} registry module; all "
                    f"{ENV_PREFIX}* knobs must be declared in exactly one "
                    f"place ({registries[0][0].path} already is one)",
                )
            )

        declared: Dict[str, Optional[bool]] = {}
        registry_file: Optional[SourceFile] = None
        if registries:
            registry_file, entries = registries[0]
            for line, name, relevant in entries:
                if name is None:
                    findings.append(
                        Finding(
                            registry_file.path,
                            line,
                            self.rule,
                            f"{ENTRY_CLASS} entry has a non-literal name; "
                            "the audit needs string literals",
                        )
                    )
                    continue
                declared[name] = relevant
                if relevant is None:
                    findings.append(
                        Finding(
                            registry_file.path,
                            line,
                            self.rule,
                            f"{ENTRY_CLASS}({name!r}) lacks a literal "
                            "fingerprint_relevant=True/False classification",
                        )
                    )

        for file, line, name in reads:
            if registry_file is not None and file is registry_file:
                continue
            where = (
                f"declare it in {registry_file.path} and use its accessors"
                if registry_file is not None
                else f"create a registry module with an {REGISTRY_TABLE} table"
            )
            findings.append(
                Finding(
                    file.path,
                    line,
                    self.rule,
                    f"direct environment read of {name!r} outside the env "
                    f"registry module; {where}",
                )
            )
            if declared and name not in declared:
                findings.append(
                    Finding(
                        file.path,
                        line,
                        self.rule,
                        f"{name!r} is read but not declared in "
                        f"{REGISTRY_TABLE}; its fingerprint relevance is "
                        "unclassified",
                    )
                )

        if registry_file is not None and project.has_docs:
            docs = project.docs_text
            line_for: Dict[str, int] = {
                name: line for line, name, _ in registries[0][1] if name
            }
            for name in sorted(declared):
                if name not in docs:
                    findings.append(
                        Finding(
                            registry_file.path,
                            line_for.get(name, 1),
                            self.rule,
                            f"{name!r} is declared but undocumented; add it "
                            "to the README env-var table",
                        )
                    )
        return findings
