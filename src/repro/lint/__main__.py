"""``python -m repro.lint`` — same CLI as ``repro-fqms lint``."""

import sys

from .cli import main

sys.exit(main())
