"""FPR100: cache-fingerprint completeness.

The result cache's correctness rests on one invariant: every
:class:`~repro.sim.config.SystemConfig` field that can change a
simulation's outcome must flow into :func:`repro.sim.cache.fingerprint`.
A field added to the config but missed by the fingerprint silently
serves stale cached results for every sweep that varies it — the worst
failure mode this repository has, because nothing crashes.

This pass compares the dataclass's declared fields against what the
fingerprint function statically consumes:

* ``dataclasses.asdict(config)`` (the current implementation) consumes
  every field at once; fields later removed from the resulting dict via
  ``.pop("name")`` / ``del d["name"]`` are *un*-consumed.
* Explicit attribute reads (``config.num_banks``) consume one field
  each; this mode also reports reads of attributes that are not fields
  (a stale fingerprint entry after a rename).

Deliberately unfingerprinted fields must be listed in a module-level
``FINGERPRINT_EXEMPT`` set of string literals next to the fingerprint
function, each entry implicitly carrying the burden of proof that the
field cannot affect results.  The real tree ships with no exemptions:
every config field is semantically load-bearing.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .core import Finding, LintPass, const_str
from .project import Project, dataclass_fields, is_dataclass
from .registry import register

#: The config dataclass whose fields must be fingerprinted.
CONFIG_CLASS = "SystemConfig"
#: The module-level function that must consume them.
FINGERPRINT_FUNC = "fingerprint"
#: Module-level allowlist of deliberately unfingerprinted fields.
EXEMPT_NAME = "FINGERPRINT_EXEMPT"


def _exempt_fields(tree: ast.Module) -> Set[str]:
    """String entries of a module-level ``FINGERPRINT_EXEMPT`` collection."""
    exempt: Set[str] = set()
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == EXEMPT_NAME):
            continue
        value = stmt.value
        if isinstance(value, ast.Call):  # frozenset({...}) / set([...])
            value = value.args[0] if value.args else ast.Set(elts=[])
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            for elt in value.elts:
                name = const_str(elt)
                if name is not None:
                    exempt.add(name)
    return exempt


class _ConsumptionVisitor(ast.NodeVisitor):
    """What the fingerprint function consumes of its config parameter."""

    def __init__(self, config_param: str):
        self.config_param = config_param
        self.asdict_used = False
        self.attr_reads: Set[str] = set()
        #: Names bound to the asdict(config) result, for removal tracking.
        self.dict_names: Set[str] = set()
        self.removed: Set[str] = set()

    def _is_asdict_of_config(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "asdict" or not node.args:
            return False
        arg = node.args[0]
        return isinstance(arg, ast.Name) and arg.id == self.config_param

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_asdict_of_config(node):
            self.asdict_used = True
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.dict_names
            and node.args
        ):
            popped = const_str(node.args[0])
            if popped is not None:
                self.removed.add(popped)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_asdict_of_config(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.dict_names.add(target.id)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.dict_names
            ):
                removed = const_str(target.slice)
                if removed is not None:
                    self.removed.add(removed)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == self.config_param
            and isinstance(node.ctx, ast.Load)
        ):
            self.attr_reads.add(node.attr)
        self.generic_visit(node)


def _config_param(node: ast.FunctionDef) -> Optional[str]:
    """The fingerprint function's config parameter name."""
    params = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
    if "config" in params:
        return "config"
    return params[0] if params else None


@register
class FingerprintCompletenessPass(LintPass):
    rule = "FPR100"
    title = "every SystemConfig field must reach the cache fingerprint"

    def _locate(
        self, project: Project
    ) -> Optional[Tuple[List[str], "object", ast.FunctionDef]]:
        located = project.find_class(CONFIG_CLASS)
        if located is None:
            return None
        config_file, config_node = located
        if not is_dataclass(config_node):
            return None
        fn = project.find_function(FINGERPRINT_FUNC)
        if fn is None:
            return None
        fp_file, fp_node = fn
        return dataclass_fields(config_node), fp_file, fp_node

    def check_project(self, project: Project) -> Iterable[Finding]:
        located = self._locate(project)
        if located is None:
            return []
        fields, fp_file, fp_node = located
        param = _config_param(fp_node)
        if param is None:
            return [
                Finding(
                    fp_file.path,
                    fp_node.lineno,
                    self.rule,
                    f"{FINGERPRINT_FUNC}() takes no config parameter; "
                    f"cannot verify {CONFIG_CLASS} coverage",
                )
            ]
        visitor = _ConsumptionVisitor(param)
        visitor.visit(fp_node)

        exempt = _exempt_fields(fp_file.tree)
        findings: List[Finding] = []
        field_set = set(fields)

        for stale in sorted(exempt - field_set):
            findings.append(
                Finding(
                    fp_file.path,
                    fp_node.lineno,
                    self.rule,
                    f"{EXEMPT_NAME} names '{stale}', which is not a "
                    f"{CONFIG_CLASS} field (stale exemption)",
                )
            )

        if visitor.asdict_used:
            consumed = field_set - visitor.removed
        else:
            consumed = visitor.attr_reads & field_set
            for stale in sorted(visitor.attr_reads - field_set):
                findings.append(
                    Finding(
                        fp_file.path,
                        fp_node.lineno,
                        self.rule,
                        f"{FINGERPRINT_FUNC}() reads config.{stale}, which "
                        f"is not a {CONFIG_CLASS} field (stale fingerprint "
                        "entry?)",
                    )
                )

        for missing in (f for f in fields if f not in consumed | exempt):
            findings.append(
                Finding(
                    fp_file.path,
                    fp_node.lineno,
                    self.rule,
                    f"{CONFIG_CLASS} field '{missing}' never reaches "
                    f"{FINGERPRINT_FUNC}(); a sweep varying it would be "
                    "served stale cached results (add it to the payload "
                    f"or to {EXEMPT_NAME} with justification)",
                )
            )
        return findings
