"""Figure 6: the background thread's normalized IPC.

The FQ scheduler must give the background thread (art) its share too:
against subjects that demand more than half the memory system, art's
normalized IPC sits near one (bandwidth split evenly); against less
demanding subjects it rises as art receives the excess service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..stats.report import render_table
from ..workloads.spec2000 import BENCHMARKS
from .pairs import POLICIES, PairOutcome, run_pairs


@dataclass(frozen=True)
class Figure6Row:
    """Background-thread outcome against one subject."""
    subject: str
    policy: str
    background_norm_ipc: float
    background_bus_utilization: float


@dataclass(frozen=True)
class Figure6Result:
    """Background normalized IPC across all subjects."""
    rows: List[Figure6Row]
    policies: Sequence[str]

    def for_policy(self, policy: str) -> List[Figure6Row]:
        """Rows for one policy."""
        return [r for r in self.rows if r.policy == policy]

    def series(self, policy: str) -> List[float]:
        """Background norm IPC ordered by subject aggressiveness."""
        order = [b.name for b in BENCHMARKS if b.name != "art"]
        by_subject = {r.subject: r for r in self.for_policy(policy)}
        return [by_subject[name].background_norm_ipc for name in order]

    def render(self) -> str:
        """Paper-style table."""
        headers = ["subject"] + [f"{p} bg nIPC" for p in self.policies]
        by_subject = {}
        for row in self.rows:
            by_subject.setdefault(row.subject, {})[row.policy] = row
        table = [
            [subject] + [per[p].background_norm_ipc for p in self.policies]
            for subject, per in by_subject.items()
        ]
        return render_table(headers, table)


def run_figure6(
    cycles: Optional[int] = None,
    seed: int = 0,
    outcomes: Optional[List[PairOutcome]] = None,
) -> Figure6Result:
    """Regenerate Figure 6 from (possibly shared) pair runs."""
    if outcomes is None:
        from ..sim.runner import DEFAULT_CYCLES

        outcomes = run_pairs(cycles=cycles or DEFAULT_CYCLES, seed=seed)
    rows = [
        Figure6Row(
            subject=o.subject,
            policy=o.policy,
            background_norm_ipc=o.background_norm_ipc,
            background_bus_utilization=o.result.threads[1].bus_utilization,
        )
        for o in outcomes
    ]
    return Figure6Result(rows=rows, policies=POLICIES)
