"""Figure 8: per-thread QoS on the four-processor desktop workloads.

Under FR-FCFS the most aggressive thread of a workload captures the
memory system (highest normalized IPC) while the meekest threads fall
below the QoS line; under FQ-VFTF every thread's normalized IPC is at
or above one and the data-bus share is near-uniform.  The paper's
per-workload performance deltas are +41%, −2%, −2%, +14% (average
+14%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..policy import BASELINE_POLICY
from ..stats.metrics import improvement
from ..stats.report import render_kv, render_table
from .quads import QuadOutcome, run_quads


@dataclass(frozen=True)
class Figure8Thread:
    """One thread of one four-processor workload."""
    workload_index: int
    benchmark: str
    policy: str
    norm_ipc: float
    bus_utilization: float


@dataclass(frozen=True)
class Figure8Result:
    """Per-thread outcomes for the four workloads."""
    threads: List[Figure8Thread]
    workloads: Sequence[Tuple[str, ...]]
    policies: Sequence[str]

    def for_workload(self, index: int, policy: str) -> List[Figure8Thread]:
        """Threads of one workload under one policy."""
        return [
            t
            for t in self.threads
            if t.workload_index == index and t.policy == policy
        ]

    def min_norm_ipc(self, policy: str) -> float:
        """Worst thread's normalized IPC under a policy."""
        return min(t.norm_ipc for t in self.threads if t.policy == policy)

    def workload_improvement(
        self, index: int, against: str = BASELINE_POLICY
    ) -> Dict[str, float]:
        """Harmonic-mean performance delta per policy vs ``against``."""
        def hmean(policy: str) -> float:
            rows = self.for_workload(index, policy)
            return len(rows) / sum(1.0 / t.norm_ipc for t in rows)

        base = hmean(against)
        return {
            policy: improvement(hmean(policy), base)
            for policy in self.policies
            if policy != against
        }

    def mean_improvement(self, policy: str) -> float:
        """Mean per-workload performance delta vs FR-FCFS."""
        deltas = [
            self.workload_improvement(i)[policy] for i in range(len(self.workloads))
        ]
        return sum(deltas) / len(deltas)

    def render(self) -> str:
        """Paper-style table plus summary."""
        table = []
        for thread in self.threads:
            table.append(
                (
                    f"WL{thread.workload_index + 1}",
                    thread.benchmark,
                    thread.policy,
                    thread.norm_ipc,
                    thread.bus_utilization,
                )
            )
        pairs = []
        for i in range(len(self.workloads)):
            for policy, delta in self.workload_improvement(i).items():
                pairs.append((f"WL{i + 1} {policy} perf delta", f"{delta:+.1%}"))
        for policy in self.policies:
            if policy != BASELINE_POLICY:
                pairs.append(
                    (f"{policy} mean perf delta", f"{self.mean_improvement(policy):+.1%}")
                )
            pairs.append((f"{policy} min norm IPC", self.min_norm_ipc(policy)))
        return (
            render_table(
                ["workload", "benchmark", "policy", "norm IPC", "bus util"], table
            )
            + "\n\n"
            + render_kv("Figure 8 summary", pairs)
        )


def run_figure8(
    cycles: Optional[int] = None,
    seed: int = 0,
    outcomes: Optional[List[QuadOutcome]] = None,
) -> Figure8Result:
    """Regenerate Figure 8 from (possibly shared) quad runs."""
    if outcomes is None:
        from ..sim.runner import DEFAULT_CYCLES

        outcomes = run_quads(cycles=cycles or DEFAULT_CYCLES, seed=seed)
    threads: List[Figure8Thread] = []
    workloads: Dict[int, Tuple[str, ...]] = {}
    for outcome in outcomes:
        workloads[outcome.workload_index] = tuple(outcome.benchmarks)
        for name, norm, thread in zip(
            outcome.benchmarks, outcome.norm_ipcs, outcome.result.threads
        ):
            threads.append(
                Figure8Thread(
                    workload_index=outcome.workload_index,
                    benchmark=name,
                    policy=outcome.policy,
                    norm_ipc=norm,
                    bus_utilization=thread.bus_utilization,
                )
            )
    ordered = [workloads[i] for i in sorted(workloads)]
    policies = list(dict.fromkeys(o.policy for o in outcomes))
    return Figure8Result(threads=threads, workloads=ordered, policies=policies)
