"""Drivers that regenerate each figure of the paper's evaluation."""

from .figure1 import Figure1Result, run_figure1
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Result, run_figure6
from .figure7 import Figure7Result, run_figure7
from .figure8 import Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .fairness import (
    FairnessOutcome,
    fairness_payload,
    render_fairness,
    run_fairness,
)
from .pairs import POLICIES, PairOutcome, run_pairs
from .quads import QUAD_POLICIES, QuadOutcome, run_quads

__all__ = [
    "FairnessOutcome",
    "Figure1Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "POLICIES",
    "PairOutcome",
    "QUAD_POLICIES",
    "QuadOutcome",
    "fairness_payload",
    "render_fairness",
    "run_fairness",
    "run_figure1",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_pairs",
    "run_quads",
]
