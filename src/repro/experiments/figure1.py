"""Figure 1: destructive interference under FR-FCFS.

The paper's motivating experiment: benchmark *vpr* on a dual-processor
CMP, running alone, co-scheduled with *crafty* (another modest
benchmark — no observable change), and co-scheduled with *art* (the
most aggressive benchmark — memory latency explodes from ~150 to ~1070
cycles and vpr loses ~60% of its IPC).  The only shared resource is
the SDRAM memory system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from typing import Optional

from ..sim.parallel import group_spec, run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_group, run_solo
from ..stats.report import render_table
from ..workloads.spec2000 import profile


@dataclass(frozen=True)
class Figure1Row:
    """One configuration's IPC and read latency."""
    configuration: str
    ipc: float
    read_latency: float


@dataclass(frozen=True)
class Figure1Result:
    """The three Figure-1 configurations."""
    rows: List[Figure1Row]

    def row(self, configuration: str) -> Figure1Row:
        """Look up a configuration by label."""
        for r in self.rows:
            if r.configuration == configuration:
                return r
        raise KeyError(configuration)

    def render(self) -> str:
        """Paper-style table."""
        return render_table(
            ["configuration", "IPC", "mean read latency (cycles)"],
            [(r.configuration, r.ipc, r.read_latency) for r in self.rows],
        )


def run_figure1(
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> Figure1Result:
    """Regenerate Figure 1 (FR-FCFS scheduling throughout)."""
    vpr = profile("vpr")
    warmup = default_warmup(cycles)
    run_many(
        [solo_spec("vpr", 1.0, cycles, warmup, seed)]
        + [
            group_spec(("vpr", partner), "FR-FCFS", cycles, warmup, seed)
            for partner in ("crafty", "art")
        ],
        jobs=jobs,
        store=store,
    )
    rows: List[Figure1Row] = []

    solo = run_solo(vpr, cycles=cycles, seed=seed)
    rows.append(
        Figure1Row("vpr alone", solo.threads[0].ipc, solo.threads[0].mean_read_latency)
    )
    for partner in ("crafty", "art"):
        result = run_group([vpr, profile(partner)], "FR-FCFS", cycles=cycles, seed=seed)
        subject = result.threads[0]
        rows.append(
            Figure1Row(f"vpr + {partner}", subject.ipc, subject.mean_read_latency)
        )
    return Figure1Result(rows)
