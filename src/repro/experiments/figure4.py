"""Figure 4: solo data-bus utilization of all twenty benchmarks.

Each benchmark runs alone on a single-processor system with the
FR-FCFS scheduler; utilization is measured against peak data-bus
bandwidth.  The resulting ordering (most aggressive first) defines the
workload construction for every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from typing import Optional

from ..sim.parallel import run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_solo
from ..stats.report import render_table
from ..workloads.spec2000 import BENCHMARKS


@dataclass(frozen=True)
class Figure4Row:
    """One benchmark's solo-run measurements."""
    benchmark: str
    bus_utilization: float
    ipc: float
    read_latency: float


@dataclass(frozen=True)
class Figure4Result:
    """All twenty solo runs, in Figure-4 order."""
    rows: List[Figure4Row]

    def utilizations(self) -> Dict[str, float]:
        """Benchmark name → solo data-bus utilization."""
        return {r.benchmark: r.bus_utilization for r in self.rows}

    def render(self) -> str:
        """Paper-style table of the solo spectrum."""
        return render_table(
            ["benchmark", "data-bus utilization", "IPC", "read latency"],
            [
                (r.benchmark, r.bus_utilization, r.ipc, r.read_latency)
                for r in self.rows
            ],
        )


def run_figure4(
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> Figure4Result:
    """Regenerate Figure 4: solo runs of the twenty benchmarks."""
    warmup = default_warmup(cycles)
    run_many(
        [solo_spec(b.name, 1.0, cycles, warmup, seed) for b in BENCHMARKS],
        jobs=jobs,
        store=store,
    )
    rows: List[Figure4Row] = []
    for benchmark in BENCHMARKS:
        result = run_solo(benchmark, cycles=cycles, seed=seed)
        thread = result.threads[0]
        rows.append(
            Figure4Row(
                benchmark=benchmark.name,
                bus_utilization=result.data_bus_utilization,
                ipc=thread.ipc,
                read_latency=thread.mean_read_latency,
            )
        )
    return Figure4Result(rows)
