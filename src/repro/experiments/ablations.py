"""Ablations of the FQ memory scheduler's design choices.

Three studies the paper motivates but does not sweep:

* **Inversion bound** (§3.3): the bank scheduler's priority-inversion
  bound x trades QoS for data-bus utilization.  The paper fixes
  x = t_RAS as "a tight bound ... which offers better QoS, but may
  decrease data bus utilization"; the sweep makes the trade-off
  visible, with x → ∞ degenerating to FR-VFTF.
* **Service shares** (§3): the φ registers accept arbitrary fractions
  (assigned by an OS or VMM).  The sweep gives the subject thread
  φ ∈ {¼, ½, ¾} against the aggressive background and checks the
  subject's throughput tracks its share.
* **Buffer partitions** (§4.1): per-thread transaction-buffer sizing
  interacts with back-pressure; tiny partitions throttle the
  aggressive thread's lookahead, huge ones approach an unpartitioned
  buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..policy import BASELINE_POLICY, canonical
from ..sim.config import SystemConfig
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_solo
from ..sim.system import CmpSystem
from ..stats.report import render_table
from ..workloads.spec2000 import BACKGROUND, profile


@dataclass(frozen=True)
class InversionBoundRow:
    bound: Optional[int]  # None = no bound (pure FR-VFTF behaviour)
    subject_norm_ipc: float
    data_bus_utilization: float


def sweep_inversion_bound(
    subject_name: str = "vpr",
    bounds: Sequence[Optional[int]] = (0, 60, 180, 360, 720, None),
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[InversionBoundRow]:
    """QoS vs bus utilization as the inversion bound x varies."""
    subject = profile(subject_name)
    base = run_solo(subject, scale=2.0, cycles=cycles, seed=seed).threads[0].ipc
    rows: List[InversionBoundRow] = []
    for bound in bounds:
        policy = canonical("FQ-VFTF" if bound is not None else "FR-VFTF")
        config = SystemConfig(
            num_cores=2, policy=policy, seed=seed, inversion_bound=bound
        )
        system = CmpSystem(config, [subject, BACKGROUND])
        result = system.run(cycles, warmup=default_warmup(cycles))
        rows.append(
            InversionBoundRow(
                bound=bound,
                subject_norm_ipc=result.threads[0].ipc / base,
                data_bus_utilization=result.data_bus_utilization,
            )
        )
    return rows


@dataclass(frozen=True)
class ShareRow:
    subject_share: float
    subject_norm_ipc: float  # vs solo on a 1/φ time-scaled system
    subject_bus_utilization: float
    background_bus_utilization: float


def sweep_shares(
    subject_name: str = "equake",
    shares: Sequence[float] = (0.25, 0.5, 0.75),
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[ShareRow]:
    """QoS under asymmetric φ allocations (OS/VMM-style)."""
    subject = profile(subject_name)
    rows: List[ShareRow] = []
    for share in shares:
        base = run_solo(
            subject, scale=1.0 / share, cycles=cycles, seed=seed
        ).threads[0].ipc
        config = SystemConfig(
            num_cores=2,
            policy=canonical("FQ-VFTF"),
            shares=[share, 1.0 - share],
            seed=seed,
        )
        system = CmpSystem(config, [subject, BACKGROUND])
        result = system.run(cycles, warmup=default_warmup(cycles))
        rows.append(
            ShareRow(
                subject_share=share,
                subject_norm_ipc=result.threads[0].ipc / base,
                subject_bus_utilization=result.threads[0].bus_utilization,
                background_bus_utilization=result.threads[1].bus_utilization,
            )
        )
    return rows


@dataclass(frozen=True)
class BufferRow:
    read_entries: int
    write_entries: int
    subject_norm_ipc: float
    data_bus_utilization: float


def sweep_buffers(
    subject_name: str = "vpr",
    sizes: Sequence[int] = (4, 8, 16, 32),
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[BufferRow]:
    """Per-thread transaction-buffer partition sizing under FQ-VFTF."""
    subject = profile(subject_name)
    base = run_solo(subject, scale=2.0, cycles=cycles, seed=seed).threads[0].ipc
    rows: List[BufferRow] = []
    for size in sizes:
        config = SystemConfig(
            num_cores=2,
            policy=canonical("FQ-VFTF"),
            read_entries_per_thread=size,
            write_entries_per_thread=max(1, size // 2),
            seed=seed,
        )
        system = CmpSystem(config, [subject, BACKGROUND])
        result = system.run(cycles, warmup=default_warmup(cycles))
        rows.append(
            BufferRow(
                read_entries=size,
                write_entries=max(1, size // 2),
                subject_norm_ipc=result.threads[0].ipc / base,
                data_bus_utilization=result.data_bus_utilization,
            )
        )
    return rows


@dataclass(frozen=True)
class AccountingRow:
    policy: str
    hit_heavy_norm_ipc: float  # stream benchmark with many row hits
    random_norm_ipc: float     # irregular benchmark
    data_bus_utilization: float


def sweep_vft_accounting(
    hit_heavy_name: str = "swim",
    random_name: str = "ammp",
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[AccountingRow]:
    """Paper §3.2: deferred vs arrival-time finish-time computation.

    The deferred scheme (FQ-VFTF, the one the paper evaluates) charges
    each thread the bank service it actually consumes; the arrival
    scheme (FQ-VFTF-ARR) assumes an average service, which the paper
    predicts "is likely to penalize threads that have lower average
    bank service requirements, e.g., threads with a large number of
    open row buffer hits."
    """
    hit_heavy = profile(hit_heavy_name)
    random_thread = profile(random_name)
    base_hit = run_solo(hit_heavy, scale=2.0, cycles=cycles, seed=seed).threads[0].ipc
    base_rand = run_solo(
        random_thread, scale=2.0, cycles=cycles, seed=seed
    ).threads[0].ipc
    rows: List[AccountingRow] = []
    for policy in (canonical("FQ-VFTF"), canonical("FQ-VFTF-ARR")):
        config = SystemConfig(num_cores=2, policy=policy, seed=seed)
        system = CmpSystem(config, [hit_heavy, random_thread])
        result = system.run(cycles, warmup=default_warmup(cycles))
        rows.append(
            AccountingRow(
                policy=policy,
                hit_heavy_norm_ipc=result.threads[0].ipc / base_hit,
                random_norm_ipc=result.threads[1].ipc / base_rand,
                data_bus_utilization=result.data_bus_utilization,
            )
        )
    return rows


@dataclass(frozen=True)
class WriteDrainRow:
    write_drain: str
    policy: str
    mean_read_latency: float
    data_bus_utilization: float


def sweep_write_drain(
    workload_names: Sequence[str] = ("swim", "art"),
    policies: Sequence[str] = (BASELINE_POLICY, "FQ-VFTF"),
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[WriteDrainRow]:
    """FCFS writes (the paper's behaviour) vs watermark write draining.

    Draining writebacks in bursts avoids read/write bus turnarounds
    (t_WTR) and keeps reads off the critical path; the sweep measures
    its effect on read latency and bus utilization for a write-heavy
    pair under both the baseline and the FQ scheduler.
    """
    workload = [profile(name) for name in workload_names]
    rows: List[WriteDrainRow] = []
    for policy in policies:
        for drain in ("fcfs", "watermark"):
            config = SystemConfig(
                num_cores=len(workload),
                policy=policy,
                write_drain=drain,
                seed=seed,
            )
            system = CmpSystem(config, workload)
            result = system.run(cycles, warmup=default_warmup(cycles))
            reads = sum(t.reads for t in result.threads)
            lat = (
                sum(t.mean_read_latency * t.reads for t in result.threads) / reads
                if reads
                else 0.0
            )
            rows.append(
                WriteDrainRow(
                    write_drain=drain,
                    policy=policy,
                    mean_read_latency=lat,
                    data_bus_utilization=result.data_bus_utilization,
                )
            )
    return rows


def render_write_drain_sweep(rows: List[WriteDrainRow]) -> str:
    return render_table(
        ["policy", "write drain", "mean read latency", "bus util"],
        [
            (r.policy, r.write_drain, r.mean_read_latency,
             r.data_bus_utilization)
            for r in rows
        ],
    )


@dataclass(frozen=True)
class DisciplineRow:
    policy: str
    subject_norm_ipc: float
    subject_latency: float
    background_bus: float
    data_bus_utilization: float


def sweep_discipline(
    subject_name: str = "vpr",
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
) -> List[DisciplineRow]:
    """Paper §2.3: virtual finish-time vs virtual start-time priority.

    Both disciplines derive from the same VTMS accounting and differ
    only in the ordering tag; the paper's scheduler uses finish-times
    (EDF-equivalent).  Start-time ordering is VirtualClock-flavoured:
    slightly weaker deadlines but the same long-run shares.
    """
    subject = profile(subject_name)
    base = run_solo(subject, scale=2.0, cycles=cycles, seed=seed).threads[0].ipc
    rows: List[DisciplineRow] = []
    for policy in (canonical("FQ-VFTF"), canonical("FQ-VSTF")):
        config = SystemConfig(num_cores=2, policy=policy, seed=seed)
        system = CmpSystem(config, [subject, BACKGROUND])
        result = system.run(cycles, warmup=default_warmup(cycles))
        rows.append(
            DisciplineRow(
                policy=policy,
                subject_norm_ipc=result.threads[0].ipc / base,
                subject_latency=result.threads[0].mean_read_latency,
                background_bus=result.threads[1].bus_utilization,
                data_bus_utilization=result.data_bus_utilization,
            )
        )
    return rows


def render_discipline_sweep(rows: List[DisciplineRow]) -> str:
    return render_table(
        ["policy", "subject norm IPC", "subject latency", "background bus",
         "bus util"],
        [
            (r.policy, r.subject_norm_ipc, r.subject_latency,
             r.background_bus, r.data_bus_utilization)
            for r in rows
        ],
    )


def render_accounting_sweep(rows: List[AccountingRow]) -> str:
    return render_table(
        ["policy", "row-hit-heavy norm IPC", "irregular norm IPC", "bus util"],
        [
            (r.policy, r.hit_heavy_norm_ipc, r.random_norm_ipc,
             r.data_bus_utilization)
            for r in rows
        ],
    )


def render_inversion_sweep(rows: List[InversionBoundRow]) -> str:
    return render_table(
        ["inversion bound x", "subject norm IPC", "data-bus utilization"],
        [
            ("unbounded" if r.bound is None else r.bound,
             r.subject_norm_ipc, r.data_bus_utilization)
            for r in rows
        ],
    )


def render_share_sweep(rows: List[ShareRow]) -> str:
    return render_table(
        ["subject φ", "subject norm IPC", "subject bus", "background bus"],
        [
            (r.subject_share, r.subject_norm_ipc,
             r.subject_bus_utilization, r.background_bus_utilization)
            for r in rows
        ],
    )


def render_buffer_sweep(rows: List[BufferRow]) -> str:
    return render_table(
        ["read entries", "write entries", "subject norm IPC", "bus util"],
        [
            (r.read_entries, r.write_entries, r.subject_norm_ipc,
             r.data_bus_utilization)
            for r in rows
        ],
    )
