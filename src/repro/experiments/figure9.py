"""Figure 9: normalized latency vs normalized target bus utilization.

For every thread of the four-processor workloads, the paper plots its
read latency (normalized to its solo latency) against its data-bus
utilization normalized to its *target* utilization — the smaller of
its solo utilization and its fair share (¼ plus waterfilled excess,
§4.2).  With an ideal scheduler every point sits at normalized
utilization one.

Headline statistic: the variance of normalized utilization drops from
.2 under FR-FCFS to .0058 under FQ-VFTF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.parallel import run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_solo
from ..stats.metrics import fair_share_targets, variance
from ..stats.report import render_kv, render_table
from ..workloads.spec2000 import profile
from .quads import QuadOutcome, run_quads


@dataclass(frozen=True)
class Figure9Point:
    """One thread's (normalized latency, normalized utilization) point."""
    workload_index: int
    benchmark: str
    policy: str
    normalized_latency: float
    normalized_utilization: float


@dataclass(frozen=True)
class Figure9Result:
    """The Figure-9 scatter and its spread statistics."""
    points: List[Figure9Point]
    policies: Sequence[str]

    def for_policy(self, policy: str) -> List[Figure9Point]:
        """Points for one policy."""
        return [p for p in self.points if p.policy == policy]

    def utilization_variance(self, policy: str) -> float:
        """Variance of normalized target utilization (the headline)."""
        return variance([p.normalized_utilization for p in self.for_policy(policy)])

    def mean_normalized_utilization(self, policy: str) -> float:
        """Mean normalized target utilization."""
        pts = self.for_policy(policy)
        return sum(p.normalized_utilization for p in pts) / len(pts)

    def utilization_range(self, policy: str) -> tuple:
        """(min, max) of normalized target utilization."""
        values = [p.normalized_utilization for p in self.for_policy(policy)]
        return (min(values), max(values))

    def render(self) -> str:
        """Paper-style table plus summary."""
        table = [
            (
                f"WL{p.workload_index + 1}",
                p.benchmark,
                p.policy,
                p.normalized_utilization,
                p.normalized_latency,
            )
            for p in self.points
        ]
        pairs = []
        for policy in self.policies:
            lo, hi = self.utilization_range(policy)
            pairs.extend(
                [
                    (f"{policy} mean norm util", self.mean_normalized_utilization(policy)),
                    (f"{policy} norm util range", f"[{lo:.2f}, {hi:.2f}]"),
                    (f"{policy} norm util variance", self.utilization_variance(policy)),
                ]
            )
        return (
            render_table(
                ["workload", "benchmark", "policy", "norm util", "norm latency"],
                table,
            )
            + "\n\n"
            + render_kv("Figure 9 summary", pairs)
        )


def run_figure9(
    cycles: Optional[int] = None,
    seed: int = 0,
    outcomes: Optional[List[QuadOutcome]] = None,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> Figure9Result:
    """Regenerate Figure 9 from (possibly shared) quad runs."""
    if cycles is None:
        cycles = DEFAULT_CYCLES
    if outcomes is None:
        outcomes = run_quads(cycles=cycles, seed=seed, jobs=jobs, store=store)
    # Solo reference runs (unscaled, as for Figure 4) provide each
    # thread's solo latency and solo utilization.
    warmup = default_warmup(cycles)
    run_many(
        [
            solo_spec(name, 1.0, cycles, warmup, seed)
            for name in dict.fromkeys(
                n for o in outcomes for n in o.benchmarks
            )
        ],
        jobs=jobs,
        store=store,
    )
    solo_latency: Dict[str, float] = {}
    solo_util: Dict[str, float] = {}
    for outcome in outcomes:
        for name in outcome.benchmarks:
            if name not in solo_util:
                solo = run_solo(profile(name), cycles=cycles, seed=seed)
                solo_latency[name] = solo.threads[0].mean_read_latency
                solo_util[name] = solo.threads[0].bus_utilization

    points: List[Figure9Point] = []
    for outcome in outcomes:
        demands = [solo_util[name] for name in outcome.benchmarks]
        shares = [0.25] * len(outcome.benchmarks)
        targets = fair_share_targets(demands, shares)
        for name, target, thread in zip(
            outcome.benchmarks, targets, outcome.result.threads
        ):
            points.append(
                Figure9Point(
                    workload_index=outcome.workload_index,
                    benchmark=name,
                    policy=outcome.policy,
                    normalized_latency=thread.mean_read_latency / solo_latency[name],
                    normalized_utilization=thread.bus_utilization / target,
                )
            )
    policies = list(dict.fromkeys(o.policy for o in outcomes))
    return Figure9Result(points=points, policies=policies)
