"""Shared four-processor runs behind Figures 8 and 9.

The paper's desktop scenario: four heterogeneous benchmarks per
workload (every fourth benchmark of the first sixteen), each thread
statically allocated φ = ¼ of the memory system.  Normalized IPC is
measured against each benchmark alone on a private memory system
time-scaled by four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from typing import Optional

from ..sim.parallel import group_spec, run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_group, run_solo
from ..sim.system import SimResult
from ..policy import canonical
from ..workloads.spec2000 import four_proc_workloads

#: Figures 8/9 compare the baseline against the paper's headline
#: scheduler; registry-resolved so a rename fails loudly here.
QUAD_POLICIES: Sequence[str] = tuple(
    canonical(name) for name in ("FR-FCFS", "FQ-VFTF")
)


@dataclass(frozen=True)
class QuadOutcome:
    """One four-thread workload under one policy."""

    workload_index: int
    benchmarks: Sequence[str]
    policy: str
    result: SimResult
    norm_ipcs: Sequence[float]

    @property
    def harmonic_mean(self) -> float:
        return len(self.norm_ipcs) / sum(1.0 / n for n in self.norm_ipcs)


def run_quads(
    policies: Sequence[str] = QUAD_POLICIES,
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> List[QuadOutcome]:
    """The paper's four 4-thread workloads under each policy.

    ``jobs`` > 1 runs the independent simulations across processes
    first; results are identical for every ``jobs`` value.
    """
    warmup = default_warmup(cycles)
    specs = []
    for workload in four_proc_workloads():
        for benchmark in workload:
            specs.append(solo_spec(benchmark.name, 4.0, cycles, warmup, seed))
        for policy in policies:
            specs.append(
                group_spec(
                    tuple(b.name for b in workload), policy, cycles, warmup, seed
                )
            )
    run_many(specs, jobs=jobs, store=store)

    outcomes: List[QuadOutcome] = []
    for index, workload in enumerate(four_proc_workloads()):
        baselines = [
            run_solo(b, scale=4.0, cycles=cycles, seed=seed).threads[0].ipc
            for b in workload
        ]
        for policy in policies:
            result = run_group(workload, policy, cycles=cycles, seed=seed)
            norm = [
                thread.ipc / base
                for thread, base in zip(result.threads, baselines)
            ]
            outcomes.append(
                QuadOutcome(
                    workload_index=index,
                    benchmarks=tuple(b.name for b in workload),
                    policy=policy,
                    result=result,
                    norm_ipcs=tuple(norm),
                )
            )
    return outcomes
