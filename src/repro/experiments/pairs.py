"""Shared two-processor runs behind Figures 5, 6, and 7.

Every two-processor experiment co-schedules a *subject* benchmark with
the aggressive *background* thread (art) under each scheduling policy
and normalizes each thread's IPC to the same benchmark running alone
on the paper's baseline: a private memory system time-scaled by
1/φ = 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from typing import Optional

from ..sim.parallel import group_spec, run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_group, run_solo
from ..sim.system import SimResult
from ..policy import canonical
from ..workloads.spec2000 import BACKGROUND, two_proc_pairs

#: The paper's §5 evaluation set — resolved through the policy
#: registry so a rename there fails loudly here.
POLICIES: Sequence[str] = tuple(
    canonical(name) for name in ("FR-FCFS", "FR-VFTF", "FQ-VFTF")
)


@dataclass(frozen=True)
class PairOutcome:
    """One subject+background co-run under one policy."""

    subject: str
    background: str
    policy: str
    result: SimResult
    subject_norm_ipc: float
    background_norm_ipc: float

    @property
    def pair_harmonic_mean(self) -> float:
        """The paper's system-performance metric for this workload."""
        a, b = self.subject_norm_ipc, self.background_norm_ipc
        return 2.0 / (1.0 / a + 1.0 / b)


def run_pairs(
    policies: Sequence[str] = POLICIES,
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> List[PairOutcome]:
    """All 19 subject workloads under each policy (memoized underneath).

    ``jobs`` > 1 fans independent runs out across processes first (see
    :mod:`repro.sim.parallel`); the assembly loop below then reads pure
    memo hits.  Results are identical for every ``jobs`` value.
    """
    warmup = default_warmup(cycles)
    specs = [solo_spec(BACKGROUND.name, 2.0, cycles, warmup, seed)]
    for subject, background in two_proc_pairs():
        specs.append(solo_spec(subject.name, 2.0, cycles, warmup, seed))
        for policy in policies:
            specs.append(
                group_spec(
                    (subject.name, background.name), policy, cycles, warmup, seed
                )
            )
    run_many(specs, jobs=jobs, store=store)

    outcomes: List[PairOutcome] = []
    background_base = run_solo(BACKGROUND, scale=2.0, cycles=cycles, seed=seed)
    for subject, background in two_proc_pairs():
        subject_base = run_solo(subject, scale=2.0, cycles=cycles, seed=seed)
        for policy in policies:
            result = run_group([subject, background], policy, cycles=cycles, seed=seed)
            outcomes.append(
                PairOutcome(
                    subject=subject.name,
                    background=background.name,
                    policy=policy,
                    result=result,
                    subject_norm_ipc=result.threads[0].ipc
                    / subject_base.threads[0].ipc,
                    background_norm_ipc=result.threads[1].ipc
                    / background_base.threads[0].ipc,
                )
            )
    return outcomes
