"""Figure 7: aggregate performance and memory-system throughput.

Top: system performance (harmonic mean of the pair's normalized IPCs)
improvement of FR-VFTF and FQ-VFTF over the FR-FCFS baseline — the
paper reports FQ-VFTF averaging +31% (up to +76%).  Middle: aggregate
data-bus utilization — FR-FCFS optimizes it best; FR-VFTF and FQ-VFTF
stay close (94% / 92% on the paper's workloads).  Bottom: aggregate
bank utilization — higher under the QoS schedulers, the unavoidable
cost of preventing row-hit capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..policy import BASELINE_POLICY
from ..stats.metrics import improvement
from ..stats.report import render_kv, render_table
from .pairs import POLICIES, PairOutcome, run_pairs


@dataclass(frozen=True)
class Figure7Row:
    """One workload×policy aggregate outcome."""
    subject: str
    policy: str
    pair_harmonic_mean: float
    improvement_over_frfcfs: float
    data_bus_utilization: float
    bank_utilization: float


@dataclass(frozen=True)
class Figure7Result:
    """Aggregate performance and throughput rows."""
    rows: List[Figure7Row]
    policies: Sequence[str]

    def for_policy(self, policy: str) -> List[Figure7Row]:
        """Rows for one policy."""
        return [r for r in self.rows if r.policy == policy]

    def mean_improvement(self, policy: str) -> float:
        """Mean fractional improvement over FR-FCFS."""
        rows = self.for_policy(policy)
        return sum(r.improvement_over_frfcfs for r in rows) / len(rows)

    def max_improvement(self, policy: str) -> float:
        """Best-case improvement over FR-FCFS."""
        return max(r.improvement_over_frfcfs for r in self.for_policy(policy))

    def mean_bus_utilization(self, policy: str) -> float:
        """Mean aggregate data-bus utilization."""
        rows = self.for_policy(policy)
        return sum(r.data_bus_utilization for r in rows) / len(rows)

    def mean_bank_utilization(self, policy: str) -> float:
        """Mean aggregate bank utilization."""
        rows = self.for_policy(policy)
        return sum(r.bank_utilization for r in rows) / len(rows)

    def render(self) -> str:
        """Paper-style table plus summary."""
        headers = ["subject"]
        for policy in self.policies:
            if policy != BASELINE_POLICY:
                headers.append(f"{policy} perf Δ")
        for policy in self.policies:
            headers.append(f"{policy} bus")
        by_subject: Dict[str, Dict[str, Figure7Row]] = {}
        for row in self.rows:
            by_subject.setdefault(row.subject, {})[row.policy] = row
        table = []
        for subject, per in by_subject.items():
            cells: List[object] = [subject]
            for policy in self.policies:
                if policy != BASELINE_POLICY:
                    cells.append(f"{per[policy].improvement_over_frfcfs:+.1%}")
            for policy in self.policies:
                cells.append(per[policy].data_bus_utilization)
            table.append(cells)
        pairs = []
        for policy in self.policies:
            if policy != BASELINE_POLICY:
                pairs.append(
                    (f"{policy} mean improvement", self.mean_improvement(policy))
                )
                pairs.append(
                    (f"{policy} max improvement", self.max_improvement(policy))
                )
        for policy in self.policies:
            pairs.append((f"{policy} mean bus util", self.mean_bus_utilization(policy)))
            pairs.append(
                (f"{policy} mean bank util", self.mean_bank_utilization(policy))
            )
        return render_table(headers, table) + "\n\n" + render_kv(
            "Figure 7 summary", pairs
        )


def run_figure7(
    cycles: Optional[int] = None,
    seed: int = 0,
    outcomes: Optional[List[PairOutcome]] = None,
) -> Figure7Result:
    """Regenerate Figure 7 from (possibly shared) pair runs."""
    if outcomes is None:
        from ..sim.runner import DEFAULT_CYCLES

        outcomes = run_pairs(cycles=cycles or DEFAULT_CYCLES, seed=seed)
    baseline: Dict[str, float] = {
        o.subject: o.pair_harmonic_mean
        for o in outcomes
        if o.policy == BASELINE_POLICY
    }
    rows = [
        Figure7Row(
            subject=o.subject,
            policy=o.policy,
            pair_harmonic_mean=o.pair_harmonic_mean,
            improvement_over_frfcfs=improvement(
                o.pair_harmonic_mean, baseline[o.subject]
            ),
            data_bus_utilization=o.result.data_bus_utilization,
            bank_utilization=o.result.bank_utilization,
        )
        for o in outcomes
    ]
    return Figure7Result(rows=rows, policies=POLICIES)
