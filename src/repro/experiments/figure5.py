"""Figure 5: subject thread QoS against the aggressive background.

For each of 19 subject benchmarks co-scheduled with *art* on a
two-processor CMP, the paper reports the subject's normalized IPC
(top), average memory read latency (middle), and data-bus utilization
(bottom) under FR-FCFS, FR-VFTF, and FQ-VFTF.  An ideal QoS scheduler
keeps every subject's normalized IPC at or above one.

Headline numbers to compare against the paper: FR-FCFS harmonic-mean
normalized IPC ≈ .62, FR-VFTF ≈ .87, FQ-VFTF ≈ 1.10; FQ-VFTF meets the
QoS objective on 18 of 19 workloads (vpr, the lowest-MLP subject, is
the near miss at .94).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..stats.metrics import harmonic_mean
from ..stats.report import render_kv, render_table
from .pairs import POLICIES, PairOutcome, run_pairs


@dataclass(frozen=True)
class Figure5Row:
    """One subject×policy outcome."""
    subject: str
    policy: str
    norm_ipc: float
    read_latency: float
    bus_utilization: float


@dataclass(frozen=True)
class Figure5Result:
    """All subjects under all policies."""
    rows: List[Figure5Row]
    policies: Sequence[str]

    def for_policy(self, policy: str) -> List[Figure5Row]:
        """Rows for one policy, subject order preserved."""
        return [r for r in self.rows if r.policy == policy]

    def harmonic_mean_norm_ipc(self, policy: str) -> float:
        return harmonic_mean([r.norm_ipc for r in self.for_policy(policy)])

    def qos_met_count(self, policy: str, threshold: float = 1.0) -> int:
        """How many subjects meet the QoS objective (norm IPC >= 1)."""
        return sum(1 for r in self.for_policy(policy) if r.norm_ipc >= threshold)

    def mean_read_latency(self, policy: str) -> float:
        rows = self.for_policy(policy)
        return sum(r.read_latency for r in rows) / len(rows)

    def render(self) -> str:
        """Paper-style table plus the headline summary."""
        by_subject: Dict[str, Dict[str, Figure5Row]] = {}
        for row in self.rows:
            by_subject.setdefault(row.subject, {})[row.policy] = row
        table_rows = []
        for subject, per_policy in by_subject.items():
            cells: List[object] = [subject]
            for policy in self.policies:
                row = per_policy[policy]
                cells.extend([row.norm_ipc, row.read_latency])
            table_rows.append(cells)
        headers = ["subject"]
        for policy in self.policies:
            headers.extend([f"{policy} nIPC", f"{policy} lat"])
        summary = render_kv(
            "Figure 5 summary",
            [
                (f"{policy} hmean normalized IPC", self.harmonic_mean_norm_ipc(policy))
                for policy in self.policies
            ]
            + [
                (f"{policy} QoS met (of {len(self.for_policy(policy))})",
                 self.qos_met_count(policy))
                for policy in self.policies
            ],
        )
        return render_table(headers, table_rows) + "\n\n" + summary


def run_figure5(
    cycles: Optional[int] = None,
    seed: int = 0,
    outcomes: Optional[List[PairOutcome]] = None,
) -> Figure5Result:
    """Regenerate Figure 5 from (possibly shared) pair runs."""
    if outcomes is None:
        from ..sim.runner import DEFAULT_CYCLES

        outcomes = run_pairs(cycles=cycles or DEFAULT_CYCLES, seed=seed)
    rows = [
        Figure5Row(
            subject=o.subject,
            policy=o.policy,
            norm_ipc=o.subject_norm_ipc,
            read_latency=o.result.threads[0].mean_read_latency,
            bus_utilization=o.result.threads[0].bus_utilization,
        )
        for o in outcomes
    ]
    return Figure5Result(rows=rows, policies=POLICIES)
