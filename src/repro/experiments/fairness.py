"""Fairness evaluation harness: every registered policy, ranked.

Runs each scheduling policy in the registry over the canonical pair
and quad workload mixes, measures per-thread slowdown against
*unscaled* solo baselines (the MISE/BLISS methodology: how much slower
does a thread run sharing the memory system than owning it), and ranks
policies by the fairness headline — maximum slowdown — alongside the
throughput metrics, so a fairness/throughput trade-off reads off one
table.

All simulations flow through the parallel engine and the persistent
result cache (:func:`~repro.sim.parallel.run_many`), so a full
comparison after a code change costs one batch of misses and repeat
invocations are pure cache hits.

This is the engine behind ``repro-fqms compare``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..policy import registered_names
from ..sim.parallel import group_spec, run_many, solo_spec
from ..sim.runner import DEFAULT_CYCLES, default_warmup, run_group, run_solo
from ..sim.system import SimResult
from ..stats.fairness import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    unfairness,
    weighted_speedup,
)
from ..stats.report import render_table
from ..workloads.spec2000 import profile

#: The canonical evaluation mixes: the paper's latency-vs-stream pair
#: and the heterogeneous four-thread desktop mix.
PAIR_WORKLOAD: Tuple[str, ...] = ("vpr", "art")
QUAD_WORKLOAD: Tuple[str, ...] = ("art", "vpr", "parser", "crafty")
DEFAULT_WORKLOADS: Tuple[Tuple[str, ...], ...] = (PAIR_WORKLOAD, QUAD_WORKLOAD)


@dataclass(frozen=True)
class FairnessOutcome:
    """One (workload, policy) cell of the comparison matrix."""

    workload: Tuple[str, ...]
    policy: str
    result: SimResult
    #: Per-thread slowdown, aligned with ``workload``.
    slowdowns: Tuple[float, ...]

    @property
    def max_slowdown(self) -> float:
        return max_slowdown(self.slowdowns)

    @property
    def unfairness(self) -> float:
        return unfairness(self.slowdowns)

    @property
    def weighted_speedup(self) -> float:
        return sum(1.0 / s for s in self.slowdowns)

    @property
    def harmonic_speedup(self) -> float:
        return harmonic_speedup(self.slowdowns)

    @property
    def throughput_ipc(self) -> float:
        return sum(t.ipc for t in self.result.threads)


def run_fairness(
    policies: Optional[Sequence[str]] = None,
    workloads: Sequence[Sequence[str]] = DEFAULT_WORKLOADS,
    cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> List[FairnessOutcome]:
    """Measure every policy on every workload; return the full matrix.

    ``policies`` defaults to *all* registered policies.  Solo baselines
    run once per benchmark (unscaled — the slowdown denominator is the
    thread owning the memory system) and are shared across policies.
    The whole matrix is batched through :func:`run_many`, so
    ``jobs > 1`` parallelizes the misses and reruns are cache hits.

    ``store`` (a :class:`repro.serve.store.ResultStore`) makes the
    tournament read through — and record into — the queryable result
    store, so a comparison backed by a populated service root costs no
    simulation at all and leaves its own runs queryable afterwards.
    """
    if policies is None:
        policies = registered_names()
    workloads = [tuple(w) for w in workloads]
    warmup = default_warmup(cycles)

    specs = []
    solo_names = {name for workload in workloads for name in workload}
    for name in sorted(solo_names):
        specs.append(solo_spec(name, 1.0, cycles, warmup, seed))
    for workload in workloads:
        for policy in policies:
            specs.append(group_spec(workload, policy, cycles, warmup, seed))
    run_many(specs, jobs=jobs, store=store)

    alone_ipc: Dict[str, float] = {
        name: run_solo(profile(name), scale=1.0, cycles=cycles, seed=seed)
        .threads[0]
        .ipc
        for name in sorted(solo_names)
    }

    outcomes: List[FairnessOutcome] = []
    for workload in workloads:
        alone = [alone_ipc[name] for name in workload]
        for policy in policies:
            result = run_group(
                [profile(name) for name in workload],
                policy,
                cycles=cycles,
                seed=seed,
            )
            shared = [t.ipc for t in result.threads]
            outcomes.append(
                FairnessOutcome(
                    workload=workload,
                    policy=result.policy,
                    result=result,
                    slowdowns=tuple(slowdowns(alone, shared)),
                )
            )
    return outcomes


def fairness_payload(outcomes: Sequence[FairnessOutcome]) -> Dict:
    """JSON-ready form of the comparison matrix (CLI ``--json``)."""
    return {
        "outcomes": [
            {
                "workload": list(o.workload),
                "policy": o.policy,
                "slowdowns": list(o.slowdowns),
                "max_slowdown": o.max_slowdown,
                "unfairness": o.unfairness,
                "weighted_speedup": o.weighted_speedup,
                "harmonic_speedup": o.harmonic_speedup,
                "throughput_ipc": o.throughput_ipc,
            }
            for o in outcomes
        ]
    }


def render_fairness(outcomes: Sequence[FairnessOutcome]) -> str:
    """Ranked tables, one per workload (best max-slowdown first)."""
    blocks: List[str] = []
    seen: List[Tuple[str, ...]] = []
    for outcome in outcomes:
        if outcome.workload not in seen:
            seen.append(outcome.workload)
    for workload in seen:
        ranked = sorted(
            (o for o in outcomes if o.workload == workload),
            key=lambda o: (o.max_slowdown, -o.weighted_speedup, o.policy),
        )
        title = "+".join(workload)
        rows = [
            (
                f"{rank}.",
                o.policy,
                o.max_slowdown,
                o.unfairness,
                o.weighted_speedup,
                o.harmonic_speedup,
                " ".join(f"{s:.2f}" for s in o.slowdowns),
            )
            for rank, o in enumerate(ranked, start=1)
        ]
        blocks.append(
            f"workload {title} (ranked by max slowdown; lower is fairer)\n"
            + render_table(
                (
                    "rank",
                    "policy",
                    "max-slowdown",
                    "unfairness",
                    "weighted-speedup",
                    "harmonic-speedup",
                    "per-thread",
                ),
                rows,
            )
        )
    return "\n\n".join(blocks)
