"""Scheduling policies: identity, ordering keys, lookup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.request import MemoryRequest, RequestKind
from repro.core.policies import (
    FQ_VFTF,
    FR_FCFS,
    FR_VFTF,
    POLICIES,
    fq_vftf_with_bound,
    get_policy,
)


def make_request(arrival=0, vft=0.0, thread=0):
    request = MemoryRequest(
        thread_id=thread,
        kind=RequestKind.READ,
        address=0x1000,
        arrival_time=arrival,
    )
    request.virtual_finish_time = vft
    return request


class TestPolicyIdentity:
    def test_policies_registered(self):
        assert set(POLICIES) == {
            "FR-FCFS",
            "FR-VFTF",
            "FQ-VFTF",
            "FQ-VFTF-ARR",
            "FQ-VSTF",
        }

    def test_fq_vstf_flags(self):
        policy = POLICIES["FQ-VSTF"]
        assert policy.uses_vtms
        assert policy.start_time_priority
        assert not POLICIES["FQ-VFTF"].start_time_priority

    def test_vstf_orders_by_start_time(self):
        a = make_request(arrival=20, vft=500.0)
        b = make_request(arrival=10, vft=100.0)
        a.virtual_start_time = 10.0
        b.virtual_start_time = 90.0
        assert POLICIES["FQ-VSTF"].request_key(a) < POLICIES["FQ-VSTF"].request_key(b)

    def test_fq_vftf_arr_flags(self):
        policy = POLICIES["FQ-VFTF-ARR"]
        assert policy.uses_vtms
        assert policy.fq_bank_rule
        assert policy.arrival_accounting
        # The evaluated policies all defer finish-time computation.
        assert not POLICIES["FQ-VFTF"].arrival_accounting

    def test_fr_fcfs_flags(self):
        assert not FR_FCFS.uses_vtms
        assert not FR_FCFS.fq_bank_rule

    def test_fr_vftf_flags(self):
        assert FR_VFTF.uses_vtms
        assert not FR_VFTF.fq_bank_rule

    def test_fq_vftf_flags(self):
        assert FQ_VFTF.uses_vtms
        assert FQ_VFTF.fq_bank_rule
        assert FQ_VFTF.inversion_bound is None  # resolved to t_ras later


class TestLookup:
    @pytest.mark.parametrize("name", ["FR-FCFS", "fr-fcfs", "fr_fcfs", "FQ-VFTF"])
    def test_case_and_separator_insensitive(self, name):
        assert get_policy(name).name in POLICIES

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_policy("round-robin")


class TestOrderingKeys:
    def test_fcfs_orders_by_arrival(self):
        early, late = make_request(arrival=10), make_request(arrival=20)
        assert FR_FCFS.request_key(early) < FR_FCFS.request_key(late)

    def test_fcfs_ignores_finish_time(self):
        a = make_request(arrival=10, vft=1e9)
        b = make_request(arrival=20, vft=0.0)
        assert FR_FCFS.request_key(a) < FR_FCFS.request_key(b)

    def test_vftf_orders_by_finish_time(self):
        a = make_request(arrival=20, vft=100.0)
        b = make_request(arrival=10, vft=200.0)
        assert FR_VFTF.request_key(a) < FR_VFTF.request_key(b)

    def test_vftf_ties_break_by_arrival(self):
        a = make_request(arrival=10, vft=100.0)
        b = make_request(arrival=20, vft=100.0)
        assert FQ_VFTF.request_key(a) < FQ_VFTF.request_key(b)

    def test_keys_never_equal_for_distinct_requests(self):
        a = make_request(arrival=10, vft=100.0)
        b = make_request(arrival=10, vft=100.0)
        assert FQ_VFTF.request_key(a) != FQ_VFTF.request_key(b)

    @given(
        arrivals=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_fcfs_total_order_matches_sorted_arrivals(self, arrivals):
        requests = [make_request(arrival=a) for a in arrivals]
        ordered = sorted(requests, key=FR_FCFS.request_key)
        assert [r.arrival_time for r in ordered] == sorted(arrivals)

    @given(
        vfts=st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_vftf_total_order_matches_sorted_finish_times(self, vfts):
        requests = [make_request(vft=v) for v in vfts]
        ordered = sorted(requests, key=FQ_VFTF.request_key)
        assert [r.virtual_finish_time for r in ordered] == sorted(vfts)


class TestBoundOverride:
    def test_custom_bound(self):
        policy = fq_vftf_with_bound(360)
        assert policy.fq_bank_rule
        assert policy.inversion_bound == 360

    def test_zero_bound_allowed(self):
        assert fq_vftf_with_bound(0).inversion_bound == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            fq_vftf_with_bound(-1)
