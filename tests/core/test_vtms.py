"""VTMS register file: Equations 3–9 and Table 3/4 service times."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.commands import CommandType
from repro.dram.timing import DDR2Timing
from repro.core.vtms import ThreadVtms, VtmsState


@pytest.fixture
def timing():
    return DDR2Timing()


def make_thread(share=0.5, banks=8, timing=None):
    return ThreadVtms(0, share, banks, timing or DDR2Timing())


class TestConstruction:
    def test_registers_start_at_zero(self, timing):
        thread = make_thread(timing=timing)
        assert thread.bank_finish == [0.0] * 8
        assert thread.channel_finish == 0.0
        assert thread.oldest_arrival == 0.0

    @pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
    def test_rejects_bad_share(self, share, timing):
        with pytest.raises(ValueError):
            ThreadVtms(0, share, 8, timing)

    def test_full_share_allowed(self, timing):
        assert ThreadVtms(0, 1.0, 8, timing).share == 1.0


class TestEquation7FinishTimeEstimate:
    """C.F = max(max(Ra, B_j.R) + B.L/φ, C.R) + C.L/φ."""

    def test_idle_thread_from_arrival(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.oldest_arrival = 100.0
        service = timing.service_closed
        expected = 100.0 + service / 0.5 + timing.burst / 0.5
        assert thread.finish_time_estimate(0, service) == pytest.approx(expected)

    def test_bank_register_dominates_arrival(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.oldest_arrival = 100.0
        thread.bank_finish[3] = 500.0
        service = timing.service_row_hit
        expected = 500.0 + service / 0.5 + timing.burst / 0.5
        assert thread.finish_time_estimate(3, service) == pytest.approx(expected)

    def test_channel_register_dominates_bank_finish(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.oldest_arrival = 0.0
        thread.channel_finish = 10_000.0
        service = timing.service_row_hit
        expected = 10_000.0 + timing.burst / 0.5
        assert thread.finish_time_estimate(0, service) == pytest.approx(expected)

    def test_smaller_share_means_later_finish(self, timing):
        small = make_thread(share=0.25, timing=timing)
        large = make_thread(share=0.75, timing=timing)
        for t in (small, large):
            t.oldest_arrival = 50.0
        service = timing.service_closed
        assert small.finish_time_estimate(0, service) > large.finish_time_estimate(
            0, service
        )

    def test_bank_state_changes_estimate_per_table3(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        hit = thread.finish_time_estimate(0, timing.service_row_hit)
        closed = thread.finish_time_estimate(0, timing.service_closed)
        conflict = thread.finish_time_estimate(0, timing.service_conflict)
        assert hit < closed < conflict


class TestEquations8And9Updates:
    """Register updates as commands issue, with Table 4 service times."""

    def test_activate_updates_bank_only(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.ACTIVATE, 2, arrival=100.0)
        assert thread.bank_finish[2] == pytest.approx(100.0 + timing.t_rcd / 0.5)
        assert thread.channel_finish == 0.0

    def test_read_updates_bank_then_channel(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.READ, 2, arrival=100.0)
        bank_after = 100.0 + timing.t_cl / 0.5
        assert thread.bank_finish[2] == pytest.approx(bank_after)
        assert thread.channel_finish == pytest.approx(bank_after + timing.burst / 0.5)

    def test_write_uses_twl(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.WRITE, 0, arrival=0.0)
        assert thread.bank_finish[0] == pytest.approx(timing.t_wl / 0.5)

    def test_precharge_uses_table4_service(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.PRECHARGE, 5, arrival=0.0)
        assert thread.bank_finish[5] == pytest.approx(timing.update_precharge / 0.5)
        assert thread.channel_finish == 0.0

    def test_bank_register_max_of_arrival_and_previous(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.ACTIVATE, 0, arrival=0.0)
        first = thread.bank_finish[0]
        # Later arrival beyond the register restarts from the arrival.
        thread.on_command_issued(CommandType.ACTIVATE, 0, arrival=first + 1000)
        assert thread.bank_finish[0] == pytest.approx(
            first + 1000 + timing.t_rcd / 0.5
        )

    def test_full_read_transaction_accounts_bank_occupancy(self, timing):
        # ACT + RD + PRE together charge t_ras + t_rp of bank service
        # (Table 4's invariant), scaled by 1/φ.
        thread = make_thread(share=0.5, timing=timing)
        thread.on_command_issued(CommandType.ACTIVATE, 0, arrival=0.0)
        thread.on_command_issued(CommandType.READ, 0, arrival=0.0)
        thread.on_command_issued(CommandType.PRECHARGE, 0, arrival=0.0)
        assert thread.bank_finish[0] == pytest.approx(
            (timing.t_ras + timing.t_rp) / 0.5
        )


class TestStartTimeEstimate:
    """Equation 3: B.S = max(Ra, B_j.R) — the FQ-VSTF ordering basis."""

    def test_idle_thread_starts_at_arrival(self, timing):
        thread = make_thread(timing=timing)
        thread.oldest_arrival = 70.0
        assert thread.start_time_estimate(0) == 70.0

    def test_busy_bank_dominates(self, timing):
        thread = make_thread(timing=timing)
        thread.oldest_arrival = 70.0
        thread.bank_finish[3] = 500.0
        assert thread.start_time_estimate(3) == 500.0
        assert thread.start_time_estimate(0) == 70.0

    def test_start_precedes_finish(self, timing):
        thread = make_thread(timing=timing)
        thread.oldest_arrival = 70.0
        start = thread.start_time_estimate(0)
        finish = thread.finish_time_estimate(0, timing.service_row_hit)
        assert start < finish


class TestArrivalAccounting:
    """Paper §3.2 solution 1: finish-times fixed at arrival."""

    def test_arrival_updates_registers_immediately(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        finish = thread.on_request_arrival(2, arrival=100.0, assumed_service=100)
        expected_bank = 100.0 + 100 / 0.5
        assert thread.bank_finish[2] == pytest.approx(expected_bank)
        assert finish == pytest.approx(expected_bank + timing.burst / 0.5)
        assert thread.channel_finish == pytest.approx(finish)

    def test_back_to_back_arrivals_accumulate(self, timing):
        thread = make_thread(share=0.5, timing=timing)
        first = thread.on_request_arrival(0, 0.0, 100)
        second = thread.on_request_arrival(0, 0.0, 100)
        assert second > first

    def test_matches_deferred_when_service_equals_assumption(self, timing):
        # For a closed-bank access the deferred estimate and the
        # arrival-time computation agree.
        deferred = make_thread(share=0.5, timing=timing)
        deferred.oldest_arrival = 40.0
        estimate = deferred.finish_time_estimate(0, timing.service_closed)
        arrival = make_thread(share=0.5, timing=timing)
        fixed = arrival.on_request_arrival(0, 40.0, timing.service_closed)
        assert fixed == pytest.approx(estimate)


class TestVtmsState:
    def test_rejects_oversubscribed_shares(self, timing):
        with pytest.raises(ValueError):
            VtmsState([0.6, 0.6], 8, timing)

    def test_equal_shares_accepted(self, timing):
        state = VtmsState([0.25] * 4, 8, timing)
        assert len(state) == 4

    def test_clock_pauses_during_refresh(self, timing):
        state = VtmsState([0.5, 0.5], 8, timing)
        state.tick()
        state.tick(in_refresh=True)
        state.tick()
        assert state.clock == 2.0

    def test_oldest_arrival_parks_at_clock_when_idle(self, timing):
        state = VtmsState([1.0], 8, timing)
        for _ in range(100):
            state.tick()
        state.set_oldest_arrival(0, None)
        assert state[0].oldest_arrival == 100.0

    def test_oldest_arrival_tracks_pending(self, timing):
        state = VtmsState([1.0], 8, timing)
        state.set_oldest_arrival(0, 42.0)
        assert state[0].oldest_arrival == 42.0

    def test_epoch_bumps_on_update(self, timing):
        state = VtmsState([0.5, 0.5], 8, timing)
        before = state[0].epoch
        state[0].on_command_issued(CommandType.READ, 0, arrival=0.0)
        assert state[0].epoch > before

    def test_epoch_stable_when_arrival_unchanged(self, timing):
        state = VtmsState([1.0], 8, timing)
        state.set_oldest_arrival(0, 42.0)
        before = state[0].epoch
        state.set_oldest_arrival(0, 42.0)
        assert state[0].epoch == before


class TestVirtualTimeScalingProperties:
    @given(
        share=st.floats(min_value=0.05, max_value=1.0),
        service=st.integers(min_value=1, max_value=1000),
        arrival=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_finish_after_arrival(self, share, service, arrival):
        thread = make_thread(share=share)
        thread.oldest_arrival = arrival
        assert thread.finish_time_estimate(0, service) > arrival

    @given(
        share=st.floats(min_value=0.05, max_value=1.0),
        commands=st.lists(
            st.sampled_from(
                [CommandType.ACTIVATE, CommandType.READ,
                 CommandType.WRITE, CommandType.PRECHARGE]
            ),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_registers_monotonically_nondecreasing(self, share, commands):
        thread = make_thread(share=share)
        prev_bank, prev_channel = list(thread.bank_finish), thread.channel_finish
        for command in commands:
            thread.on_command_issued(command, 0, arrival=0.0)
            assert thread.bank_finish[0] >= prev_bank[0]
            assert thread.channel_finish >= prev_channel
            prev_bank, prev_channel = list(thread.bank_finish), thread.channel_finish

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_half_share_doubles_virtual_service(self, data):
        service = data.draw(st.integers(min_value=1, max_value=500))
        full = make_thread(share=1.0)
        half = make_thread(share=0.5)
        full_cost = full.finish_time_estimate(0, service)
        half_cost = half.finish_time_estimate(0, service)
        assert half_cost == pytest.approx(2 * full_cost)
