"""Service-share allocation helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shares import equal_shares, validate_shares, weighted_shares


class TestEqualShares:
    @pytest.mark.parametrize("n, expected", [(1, 1.0), (2, 0.5), (4, 0.25)])
    def test_values(self, n, expected):
        assert equal_shares(n) == [expected] * n

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            equal_shares(0)


class TestValidateShares:
    def test_accepts_exact_sum_of_one(self):
        assert validate_shares([0.5, 0.5]) == [0.5, 0.5]

    def test_accepts_undersubscription(self):
        assert validate_shares([0.25, 0.25]) == [0.25, 0.25]

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="over-subscribed"):
            validate_shares([0.75, 0.5])

    def test_rejects_zero_share(self):
        with pytest.raises(ValueError):
            validate_shares([0.0, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_shares([])


class TestWeightedShares:
    def test_three_to_one(self):
        assert weighted_shares([3, 1]) == [0.75, 0.25]

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            weighted_shares([1, 0])

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_normalizes_and_validates(self, weights):
        shares = weighted_shares(weights)
        assert sum(shares) == pytest.approx(1.0)
        validate_shares(shares)
        # Order preserved: bigger weight, bigger share.
        for (w1, s1), (w2, s2) in zip(
            zip(weights, shares), list(zip(weights, shares))[1:]
        ):
            if w1 < w2:
                assert s1 <= s2 + 1e-12
