"""Network fair queuing substrate: Equations 1–2, GPS bounds, fairness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.netfq import (
    Discipline,
    GpsServer,
    Packet,
    PacketFairQueue,
    flow_service,
)


def backlogged_packets(num_flows, per_flow, length=1.0):
    """All flows permanently backlogged from t=0."""
    packets = []
    for k in range(per_flow):
        for flow in range(num_flows):
            packets.append(Packet(flow=flow, length=length, arrival=0.0))
    return packets


class TestPacketValidation:
    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            Packet(0, 0.0, 0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Packet(0, 1.0, -1.0)


class TestQueueValidation:
    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            PacketFairQueue([0.7, 0.7])

    def test_rejects_unknown_flow(self):
        queue = PacketFairQueue([0.5, 0.5])
        with pytest.raises(ValueError):
            queue.schedule([Packet(5, 1.0, 0.0)])


class TestEqualShares:
    def test_backlogged_flows_alternate(self):
        queue = PacketFairQueue([0.5, 0.5])
        served = queue.schedule(backlogged_packets(2, 4))
        flows = [p.flow for p, _, _ in served]
        # Perfect interleaving under equal shares.
        for a, b in zip(flows, flows[1:]):
            assert a != b

    def test_service_split_evenly(self):
        queue = PacketFairQueue([0.5, 0.5])
        served = queue.schedule(backlogged_packets(2, 8))
        totals = flow_service(served, horizon=8.0)
        assert totals[0] == pytest.approx(totals[1], abs=1.0)


class TestWeightedShares:
    def test_service_proportional_to_shares(self):
        queue = PacketFairQueue([0.75, 0.25])
        served = queue.schedule(backlogged_packets(2, 16))
        totals = flow_service(served, horizon=16.0)
        assert totals[0] / totals[1] == pytest.approx(3.0, rel=0.25)

    def test_idle_share_reclaimed(self):
        # Flow 1 sends nothing: flow 0 gets the whole link.
        queue = PacketFairQueue([0.5, 0.5])
        packets = [Packet(0, 1.0, 0.0) for _ in range(4)]
        served = queue.schedule(packets)
        assert served[-1][2] == pytest.approx(4.0)


class TestDisciplines:
    def test_all_disciplines_work_conserving(self):
        for discipline in Discipline:
            queue = PacketFairQueue([0.5, 0.5], discipline=discipline)
            served = queue.schedule(backlogged_packets(2, 4))
            # Link never idles while work remains: end of service k is
            # start of service k+1.
            for (_, _, end), (_, start, _) in zip(served, served[1:]):
                assert start == pytest.approx(end)

    def test_wf2q_eligibility_bounds_lead(self):
        # Flow 0 floods with small packets whose finish tags all beat
        # flow 1's long packet, but WF²Q+ eligibility stops flow 0 from
        # running arbitrarily far ahead of its fluid share: flow 1's
        # packet is served before the flood completes.
        queue = PacketFairQueue([0.5, 0.5], discipline=Discipline.WF2Q)
        flood = [Packet(0, 1.0, 0.0) for _ in range(8)]
        lone = [Packet(1, 4.0, 0.0)]
        served = queue.schedule(flood + lone)
        order = [p.flow for p, _, _ in served]
        assert order.index(1) < len(order) - 1

    def test_wf2q_proportional_service(self):
        queue = PacketFairQueue([0.75, 0.25], discipline=Discipline.WF2Q)
        served = queue.schedule(backlogged_packets(2, 16))
        totals = flow_service(served, horizon=16.0)
        assert totals[0] / totals[1] == pytest.approx(3.0, rel=0.3)

    def test_vftf_prefers_small_packets_of_equal_start(self):
        queue = PacketFairQueue([0.5, 0.5])
        packets = [Packet(0, 4.0, 0.0), Packet(1, 1.0, 0.0)]
        served = queue.schedule(packets)
        assert served[0][0].flow == 1  # smaller virtual finish first


class TestGpsReference:
    def test_single_flow_serves_sequentially(self):
        gps = GpsServer([1.0])
        packets = [Packet(0, 2.0, 0.0), Packet(0, 3.0, 0.0)]
        assert gps.finish_times(packets) == pytest.approx([2.0, 5.0])

    def test_two_equal_backlogged_flows_halve_rate(self):
        gps = GpsServer([0.5, 0.5])
        packets = [Packet(0, 1.0, 0.0), Packet(1, 1.0, 0.0)]
        # Both drain at rate 1/2 → both finish at t=2.
        assert gps.finish_times(packets) == pytest.approx([2.0, 2.0])

    def test_idle_arrival_starts_immediately(self):
        gps = GpsServer([0.5, 0.5])
        packets = [Packet(0, 1.0, 5.0)]
        assert gps.finish_times(packets) == pytest.approx([6.0])

    @given(
        lengths=st.lists(st.floats(0.1, 4.0), min_size=2, max_size=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_wfq_finishes_within_one_max_packet_of_gps(self, lengths):
        """The classic WFQ bound: packetized finish time exceeds the
        GPS finish time by at most one maximum packet length."""
        packets = [
            Packet(flow=i % 2, length=length, arrival=0.0)
            for i, length in enumerate(lengths)
        ]
        gps = GpsServer([0.5, 0.5]).finish_times(packets)
        queue = PacketFairQueue([0.5, 0.5])
        served = queue.schedule(packets)
        finish_by_packet = {id(p): end for p, _, end in served}
        max_len = max(lengths)
        for packet, gps_finish in zip(packets, gps):
            assert finish_by_packet[id(packet)] <= gps_finish + max_len + 1e-6
