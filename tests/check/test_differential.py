"""Differential harness: checkers observe but never steer, and the
``REPRO_CHECK`` environment switch behaves."""

import pytest

from repro.check import CHECK_ENV_VAR, checks_enabled
from repro.check.harness import DEFAULT_POLICIES, differential_report, run_checked_pair
from repro.sim.config import SystemConfig
from repro.sim.system import CmpSystem
from repro.workloads.spec2000 import profile

CYCLES = 12_000


class TestBitIdentical:
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_checked_run_matches_unchecked(self, policy):
        plain, checked, counters = run_checked_pair(policy, CYCLES)
        assert checked == plain
        assert counters["commands_checked"] > 0
        assert counters["requests_completed"] > 0

    def test_report_covers_every_policy(self):
        report = differential_report(CYCLES)
        for policy in DEFAULT_POLICIES:
            assert policy in report
        assert "all policies clean" in report


class TestEnvironmentSwitch:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(CHECK_ENV_VAR, value)
        assert checks_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "FALSE", "  "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(CHECK_ENV_VAR, value)
        assert not checks_enabled()

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        assert not checks_enabled()

    def test_system_attaches_checkers_from_environment(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        system = CmpSystem(
            SystemConfig(policy="FQ-VFTF", num_cores=2, seed=0),
            [profile("vpr"), profile("art")],
        )
        assert system.check
        assert len(system.checkers) == len(system.controllers)

    def test_explicit_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        system = CmpSystem(
            SystemConfig(policy="FQ-VFTF", num_cores=2, seed=0),
            [profile("vpr"), profile("art")],
            check=False,
        )
        assert not system.check
        assert system.checkers == []
