"""tools/lint_determinism.py: each rule fires on a minimal snippet,
order-insensitive reducers and suppressions are honoured, and the
simulator source tree itself is clean."""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_determinism import lint_paths, lint_source  # noqa: E402


def findings_for(snippet):
    source = textwrap.dedent(snippet)
    return lint_source(source, Path("snippet.py"))


def rules_for(snippet):
    return [finding.rule for finding in findings_for(snippet)]


class TestUnseededRandom:
    def test_global_random_call(self):
        assert rules_for("""
            import random
            value = random.randint(0, 7)
        """) == ["DET001"]

    def test_from_import_of_global_function(self):
        assert rules_for("""
            from random import shuffle
        """) == ["DET001"]

    def test_seeded_instance_is_fine(self):
        assert rules_for("""
            import random
            rng = random.Random(42)
            value = rng.randint(0, 7)
        """) == []


class TestWallClock:
    def test_time_time(self):
        assert rules_for("""
            import time
            start = time.time()
        """) == ["DET002"]

    def test_perf_counter(self):
        assert rules_for("""
            import time
            start = time.perf_counter()
        """) == ["DET002"]

    def test_datetime_now(self):
        assert rules_for("""
            from datetime import datetime
            stamp = datetime.now()
        """) == ["DET002"]


class TestSetIteration:
    def test_for_loop_over_set_literal_binding(self):
        assert rules_for("""
            pending = {1, 2, 3}
            for item in pending:
                print(item)
        """) == ["DET003"]

    def test_for_loop_over_annotated_set(self):
        assert rules_for("""
            from typing import Set

            def drain(queue: Set[int]) -> None:
                for item in queue:
                    print(item)
        """) == ["DET003"]

    def test_comprehension_over_set(self):
        assert rules_for("""
            seen = set()
            ordered = [x * 2 for x in seen]
        """) == ["DET003"]

    def test_order_insensitive_reducer_is_blessed(self):
        assert rules_for("""
            seen = set()
            best = min(x for x in seen)
            total = sum(seen)
            count = len(seen)
            stable = sorted(seen)
        """) == []

    def test_sorted_wrapping_allows_iteration(self):
        assert rules_for("""
            seen = set()
            for item in sorted(seen):
                print(item)
        """) == []


class TestFloatPriorityEquality:
    def test_equality_on_virtual_finish_time(self):
        assert rules_for("""
            def tie(a, b):
                return a.virtual_finish_time == b.virtual_finish_time
        """) == ["DET004"]

    def test_inequality_on_clock(self):
        assert rules_for("""
            def moved(vtms, snapshot):
                return vtms.clock != snapshot
        """) == ["DET004"]

    def test_ordering_comparisons_are_fine(self):
        assert rules_for("""
            def earlier(a, b):
                return a.virtual_finish_time < b.virtual_finish_time
        """) == []


class TestMutableDefaults:
    def test_list_literal_default(self):
        assert rules_for("""
            def enqueue(item, queue=[]):
                queue.append(item)
        """) == ["DET005"]

    def test_dict_call_default(self):
        assert rules_for("""
            def tally(counts=dict()):
                return counts
        """) == ["DET005"]

    def test_none_default_is_fine(self):
        assert rules_for("""
            def enqueue(item, queue=None):
                queue = queue or []
        """) == []


def telemetry_findings_for(snippet):
    source = textwrap.dedent(snippet)
    return lint_source(source, Path("src/repro/telemetry/export.py"))


class TestTelemetryImports:
    def test_import_time_in_telemetry_package(self):
        findings = telemetry_findings_for("import time")
        assert [f.rule for f in findings] == ["DET006"]

    def test_from_datetime_import_in_telemetry_package(self):
        findings = telemetry_findings_for("from datetime import datetime")
        # DET006 flags the banned import itself; the import is not a
        # call, so DET002 stays quiet until something invokes now().
        assert [f.rule for f in findings] == ["DET006"]

    def test_import_random_in_telemetry_package(self):
        findings = telemetry_findings_for("import random")
        assert [f.rule for f in findings] == ["DET006"]

    def test_submodule_import_is_flagged(self):
        findings = telemetry_findings_for("import datetime.timezone")
        assert [f.rule for f in findings] == ["DET006"]

    def test_same_import_outside_telemetry_is_fine(self):
        source = textwrap.dedent("import time")
        assert lint_source(source, Path("src/repro/sim/system.py")) == []

    def test_relative_imports_are_fine(self):
        assert telemetry_findings_for("""
            from . import RunTelemetry
            from ..sim.system import CmpSystem
        """) == []

    def test_suppression_applies(self):
        assert telemetry_findings_for(
            "import time  # det: allow(host-side benchmark harness)"
        ) == []

    def test_telemetry_package_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro" / "telemetry"])
        assert findings == [], "\n".join(str(f) for f in findings)


def policy_findings_for(snippet):
    source = textwrap.dedent(snippet)
    return lint_source(source, Path("src/repro/policy/bliss.py"))


class TestPolicyImports:
    def test_import_time_in_policy_package(self):
        findings = policy_findings_for("import time")
        assert [f.rule for f in findings] == ["DET007"]

    def test_from_datetime_import_in_policy_package(self):
        findings = policy_findings_for("from datetime import datetime")
        assert [f.rule for f in findings] == ["DET007"]

    def test_import_random_in_policy_package(self):
        findings = policy_findings_for("import random")
        assert [f.rule for f in findings] == ["DET007"]

    def test_submodule_import_is_flagged(self):
        findings = policy_findings_for("import datetime.timezone")
        assert [f.rule for f in findings] == ["DET007"]

    def test_same_import_outside_policy_is_fine(self):
        source = textwrap.dedent("import time")
        assert lint_source(source, Path("src/repro/sim/system.py")) == []

    def test_relative_imports_are_fine(self):
        assert policy_findings_for("""
            from .base import SchedulingPolicy
            from ..controller.request import MemoryRequest
        """) == []

    def test_suppression_applies(self):
        assert policy_findings_for(
            "import time  # det: allow(host-side benchmark harness)"
        ) == []

    def test_policy_package_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro" / "policy"])
        assert findings == [], "\n".join(str(f) for f in findings)


class TestSuppression:
    def test_det_allow_comment_silences_the_line(self):
        assert rules_for("""
            import time
            start = time.time()  # det: allow(host-side profiling only)
        """) == []

    def test_suppression_is_line_scoped(self):
        assert rules_for("""
            import time
            a = time.time()  # det: allow(profiling)
            b = time.time()
        """) == ["DET002"]


class TestRealTree:
    def test_simulator_source_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_syntax_error_is_reported_not_raised(self):
        assert rules_for("def broken(:") == ["DET000"]
