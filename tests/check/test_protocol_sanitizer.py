"""DramProtocolSanitizer: legal streams pass, each rule fires on cue."""

import pytest

from repro.check import DramProtocolSanitizer, ProtocolViolation
from repro.dram.commands import CommandType
from repro.dram.timing import DDR2Timing

ACT = CommandType.ACTIVATE
PRE = CommandType.PRECHARGE
READ = CommandType.READ
WRITE = CommandType.WRITE


@pytest.fixture
def timing():
    return DDR2Timing()


@pytest.fixture
def san(timing):
    return DramProtocolSanitizer(timing, num_ranks=1, num_banks=8)


def violation(san, rule, kind, rank, bank, row, now):
    """Assert the command trips exactly the named rule."""
    with pytest.raises(ProtocolViolation) as info:
        san.on_command(kind, rank, bank, row, now)
    assert info.value.rule == rule
    return info.value


class TestLegalStreams:
    def test_open_row_read_burst(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        # CAS cadence of one burst keeps the data bus gap-free but legal.
        for i in range(3):
            san.on_command(READ, 0, 0, 5, 1000 + t.t_rcd + i * t.burst)
        assert san.commands_checked == 4

    def test_activate_precharge_activate_cycle(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(PRE, 0, 0, 0, 1000 + t.t_ras)
        # t_rp (ending 1230) binds over t_rc (ending 1220) here.
        san.on_command(ACT, 0, 0, 6, 1000 + t.t_ras + t.t_rp)

    def test_ranks_have_independent_trrd(self, timing):
        san = DramProtocolSanitizer(timing, num_ranks=2, num_banks=8)
        san.on_command(ACT, 0, 0, 5, 1000)
        # Same-rank spacing this tight is illegal; across ranks it is fine
        # (only the shared address bus forces distinct cycles).
        san.on_command(ACT, 1, 0, 5, 1001)

    def test_write_then_spaced_read(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(WRITE, 0, 0, 5, 1000 + t.t_rcd)
        data_end = 1000 + t.t_rcd + t.t_wl + t.burst
        san.on_command(READ, 0, 0, 5, data_end + t.t_wtr)


class TestBankRules:
    def test_trcd_read_too_early(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "t_rcd", READ, 0, 0, 5, 1000 + timing.t_rcd - 1)

    def test_tras_precharge_too_early(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "t_ras", PRE, 0, 0, 0, 1000 + timing.t_ras - 1)

    def test_trp_activate_too_early(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(PRE, 0, 0, 0, 1000 + t.t_ras)
        violation(san, "t_rp", ACT, 0, 0, 6, 1000 + t.t_ras + t.t_rp - 1)

    def test_trc_activate_to_activate(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(PRE, 0, 0, 0, 1000 + t.t_ras)
        # One cycle short of t_rc; t_rc is checked before t_rp, so this
        # names the activate-to-activate rule even though both bind.
        violation(san, "t_rc", ACT, 0, 0, 6, 1000 + t.t_rc - 1)

    def test_trtp_read_to_precharge(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        read_at = 1000 + t.t_ras - t.t_rtp + 10
        san.on_command(READ, 0, 0, 5, read_at)
        violation(san, "t_rtp", PRE, 0, 0, 0, read_at + t.t_rtp - 1)

    def test_twr_write_recovery(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(WRITE, 0, 0, 5, 1000 + t.t_rcd)
        data_end = 1000 + t.t_rcd + t.t_wl + t.burst
        assert data_end + t.t_wr > 1000 + t.t_ras  # t_wr binds, not t_ras
        violation(san, "t_wr", PRE, 0, 0, 0, data_end + t.t_wr - 1)

    def test_activate_with_row_already_open(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "bank-state", ACT, 0, 0, 6, 1000 + timing.t_rc)

    def test_cas_with_no_row_open(self, san):
        violation(san, "bank-state", READ, 0, 0, 5, 1000)

    def test_cas_to_wrong_row(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "bank-state", READ, 0, 0, 6, 1000 + timing.t_rcd)

    def test_precharge_with_no_row_open(self, san):
        violation(san, "bank-state", PRE, 0, 0, 0, 1000)


class TestRankAndChannelRules:
    def test_trrd_same_rank(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "t_rrd", ACT, 0, 1, 5, 1000 + timing.t_rrd - 1)

    def test_tfaw_fifth_activate(self, san, timing):
        t = timing
        for bank in range(4):
            san.on_command(ACT, 0, bank, 5, 1000 + bank * t.t_rrd)
        # Past every t_rrd gate but still inside the four-activate window.
        assert 3 * t.t_rrd + t.t_rrd < t.t_faw
        violation(san, "t_faw", ACT, 0, 4, 5, 1000 + t.t_faw - 1)

    def test_tccd_back_to_back_cas(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(READ, 0, 0, 5, 1000 + t.t_rcd)
        violation(san, "t_ccd", READ, 0, 0, 5, 1000 + t.t_rcd + t.t_ccd - 1)

    def test_twtr_write_to_read_other_bank(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(ACT, 0, 1, 7, 1000 + t.t_rrd)
        san.on_command(WRITE, 0, 0, 5, 1000 + t.t_rcd)
        data_end = 1000 + t.t_rcd + t.t_wl + t.burst
        violation(san, "t_wtr", READ, 0, 1, 7, data_end + t.t_wtr - 1)

    def test_data_bus_burst_overlap(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(READ, 0, 0, 5, 1000 + t.t_rcd)
        # Legal CAS spacing, but the second burst would start before the
        # first one's last beat leaves the bus.
        assert t.t_ccd < t.burst
        violation(san, "data-bus", READ, 0, 0, 5, 1000 + t.t_rcd + t.burst - 1)

    def test_address_bus_single_command_per_cycle(self, san):
        san.on_command(ACT, 0, 0, 5, 1000)
        violation(san, "address-bus", ACT, 0, 1, 5, 1000)


class TestRefreshRules:
    def test_refresh_with_open_row(self, san, timing):
        san.on_command(ACT, 0, 2, 9, 1000)
        with pytest.raises(ProtocolViolation) as info:
            san.on_refresh(1000 + timing.t_ras)
        assert info.value.rule == "refresh-open-row"

    def test_refresh_before_precharge_settles(self, san, timing):
        # The device-model bug this sanitizer caught: refresh launched
        # while the closing precharge was still inside t_rp.
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(PRE, 0, 0, 0, 1000 + t.t_ras)
        with pytest.raises(ProtocolViolation) as info:
            san.on_refresh(1000 + t.t_ras + t.t_rp - 1)
        assert info.value.rule == "t_rp"

    def test_command_during_refresh_blackout(self, san, timing):
        san.on_refresh(1000)
        violation(san, "t_rfc", ACT, 0, 0, 5, 1000 + timing.t_rfc - 1)
        # ... and the same command is legal once the blackout ends.
        san.on_command(ACT, 0, 0, 5, 1000 + timing.t_rfc)

    def test_refresh_interval_deadline(self, timing):
        san = DramProtocolSanitizer(timing, refresh_slack=0)
        san.on_refresh(1000)
        with pytest.raises(ProtocolViolation) as info:
            san.on_refresh(1000 + timing.t_refi + 1)
        assert info.value.rule == "t_refi"

    def test_refresh_interval_within_slack(self, timing):
        san = DramProtocolSanitizer(timing, refresh_slack=100)
        san.on_refresh(1000)
        san.on_refresh(1000 + timing.t_refi + 100)
        assert san.refreshes_checked == 2


class TestDiagnostics:
    def test_violation_carries_command_history(self, san, timing):
        t = timing
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(READ, 0, 0, 5, 1000 + t.t_rcd)
        error = violation(san, "t_ccd", READ, 0, 0, 5, 1000 + t.t_rcd + 1)
        assert [entry[1] for entry in error.history] == ["activate", "read"]
        assert error.cycle == 1000 + t.t_rcd + 1
        assert "t_ccd" in str(error)

    def test_counters_track_observed_traffic(self, san, timing):
        san.on_command(ACT, 0, 0, 5, 1000)
        san.on_command(READ, 0, 0, 5, 1000 + timing.t_rcd)
        assert san.commands_checked == 2
        assert san.refreshes_checked == 0
