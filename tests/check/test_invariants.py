"""SchedulerInvariantChecker: clean runs pass, broken invariants fire."""

import pytest

from repro.check import InvariantViolation
from repro.controller.bank_scheduler import CandidateCommand
from repro.controller.request import MemoryRequest, RequestKind
from repro.dram.commands import CommandType
from repro.sim.config import SystemConfig
from repro.sim.system import CmpSystem
from repro.workloads.spec2000 import profile


def checked_system(policy, cores=2):
    config = SystemConfig(policy=policy, num_cores=cores, seed=0)
    profiles = [profile(name) for name in ("vpr", "art")[:cores]]
    return CmpSystem(config, profiles, check=True)


def make_request(thread_id=0, bank=0, seq=None, vft=0.0, arrival=0):
    request = MemoryRequest(
        thread_id=thread_id,
        kind=RequestKind.READ,
        address=0,
        arrival_time=arrival,
        bank=bank,
        virtual_finish_time=vft,
    )
    if seq is not None:
        request.seq = seq
    return request


def cas_for(request, now=0):
    return CandidateCommand(
        kind=CommandType.READ,
        rank=request.rank,
        bank=request.bank,
        row=request.row,
        ready=True,
        key=(0,),
        request=request,
        charge_thread=request.thread_id,
        charge_arrival=float(request.arrival_time),
    )


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ["FR-FCFS", "FR-VFTF", "FQ-VFTF"])
    def test_real_run_satisfies_all_invariants(self, policy):
        system = checked_system(policy)
        system.run(30_000)  # run() calls finalize(); any violation raises
        counters = system.check_summary()
        assert counters["commands_checked"] > 0
        assert counters["requests_accepted"] > 0
        assert counters["requests_completed"] > 0
        assert counters["requests_completed"] <= counters["requests_retired"]

    def test_inversion_check_active_only_under_fq_bank_rule(self):
        fq = checked_system("FQ-VFTF").checkers[0].invariants
        frfcfs = checked_system("FR-FCFS").checkers[0].invariants
        assert fq.check_inversion
        assert not frfcfs.check_inversion

    def test_inversion_bound_defaults_to_tras(self):
        system = checked_system("FQ-VFTF")
        checker = system.checkers[0].invariants
        assert checker.inversion_bound == system.controller.dram.timing.t_ras


class TestConservation:
    def test_duplicate_accept(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        request = make_request()
        inv.on_accept(request, 100)
        with pytest.raises(InvariantViolation) as info:
            inv.on_accept(request, 101)
        assert info.value.invariant == "conservation"

    def test_cas_for_request_never_accepted(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        with pytest.raises(InvariantViolation) as info:
            inv.on_command(cas_for(make_request()), 100)
        assert info.value.invariant == "conservation"

    def test_spurious_completion(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        request = make_request()
        request.completed_at = 90
        with pytest.raises(InvariantViolation) as info:
            inv.on_complete(request, 100)
        assert info.value.invariant == "conservation"

    def test_delivery_before_data_transfer(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        request = make_request()
        inv.on_accept(request, 10)
        inv.on_command(cas_for(request), 20)
        request.completed_at = 300  # data lands after the delivery cycle
        with pytest.raises(InvariantViolation) as info:
            inv.on_complete(request, 200)
        assert info.value.invariant == "conservation"

    def test_finalize_catches_unbalanced_ledger(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        inv.accepted = 5  # claim traffic the event stream never showed
        with pytest.raises(InvariantViolation) as info:
            inv.finalize(1000)
        assert info.value.invariant == "conservation"


class TestMonotonicity:
    def test_vft_register_decrease(self):
        system = checked_system("FQ-VFTF")
        system.run(30_000)
        inv = system.checkers[0].invariants
        thread = system.controller.vtms[0]
        assert thread.bank_finish[0] > 0.0  # the run produced traffic
        thread.bank_finish[0] -= 1.0
        with pytest.raises(InvariantViolation) as info:
            inv._check_vft_registers(0, system.now)
        assert info.value.invariant == "vft-monotone"

    def test_channel_register_decrease(self):
        system = checked_system("FQ-VFTF")
        system.run(30_000)
        inv = system.checkers[0].invariants
        thread = system.controller.vtms[0]
        assert thread.channel_finish > 0.0
        thread.channel_finish -= 1.0
        with pytest.raises(InvariantViolation) as info:
            inv._check_vft_registers(0, system.now)
        assert info.value.invariant == "vft-monotone"

    def test_virtual_clock_backwards(self):
        system = checked_system("FQ-VFTF")
        system.run(30_000)
        inv = system.checkers[0].invariants
        assert inv._clock_shadow > 0.0
        # The live clock may have advanced past the last observation, so
        # rewind it below the checker's shadow to model a backwards step.
        system.controller.vtms.clock = inv._clock_shadow - 1.0
        with pytest.raises(InvariantViolation) as info:
            inv._check_clocks(system.now)
        assert info.value.invariant == "virtual-clock"


class TestBoundedInversion:
    def test_committed_bank_must_serve_earliest_vft(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        urgent = make_request(thread_id=0, vft=10.0, arrival=0)
        laggard = make_request(thread_id=1, vft=50.0, arrival=1)
        inv.on_accept(urgent, 10)
        inv.on_accept(laggard, 11)
        view = inv.banks[(0, 0)]
        view.open = True
        view.last_activate = 100
        now = 100 + inv.inversion_bound  # the bank is committed
        with pytest.raises(InvariantViolation) as info:
            inv.on_command(cas_for(laggard), now)
        assert info.value.invariant == "bounded-inversion"

    def test_before_the_bound_any_order_is_legal(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        urgent = make_request(thread_id=0, vft=10.0, arrival=0)
        laggard = make_request(thread_id=1, vft=50.0, arrival=1)
        inv.on_accept(urgent, 10)
        inv.on_accept(laggard, 11)
        view = inv.banks[(0, 0)]
        view.open = True
        view.last_activate = 100
        inv.on_command(cas_for(laggard), 100 + inv.inversion_bound - 1)
        assert inv.retired == 1

    def test_committed_bank_serving_earliest_is_legal(self):
        inv = checked_system("FQ-VFTF").checkers[0].invariants
        urgent = make_request(thread_id=0, vft=10.0, arrival=0)
        laggard = make_request(thread_id=1, vft=50.0, arrival=1)
        inv.on_accept(urgent, 10)
        inv.on_accept(laggard, 11)
        view = inv.banks[(0, 0)]
        view.open = True
        view.last_activate = 100
        inv.on_command(cas_for(urgent), 100 + inv.inversion_bound)
        assert inv.retired == 1
