"""FairJobQueue: SFQ tagging, weighted dispatch, and fairness metrics.

The scheduler is wall-clock-free, so every expected dispatch sequence
here is computed by hand from (submission order, shares, costs) — the
same style of closed-form check the core VTMS tests use.
"""

import pytest

from repro.serve.queue import FairJobQueue, TenantAccount
from repro.sim.parallel import group_spec

SPEC = group_spec(("vpr", "art"), "FR-FCFS", 100, 0, 0)


def drain(queue):
    order = []
    while True:
        job = queue.pop()
        if job is None:
            return order
        order.append(job.tenant)


class TestTagging:
    def test_backlogged_tenant_queues_behind_itself(self):
        queue = FairJobQueue()
        first = queue.submit("a", SPEC, 100.0)
        second = queue.submit("a", SPEC, 100.0)
        assert (first.start_tag, first.finish_tag) == (0.0, 100.0)
        assert (second.start_tag, second.finish_tag) == (100.0, 200.0)

    def test_weight_divides_finish_tags(self):
        queue = FairJobQueue()
        queue.tenant("heavy", weight=4.0)
        job = queue.submit("heavy", SPEC, 100.0)
        assert job.finish_tag == 25.0

    def test_idle_tenant_reanchors_to_virtual_time(self):
        queue = FairJobQueue()
        for _ in range(3):
            queue.submit("busy", SPEC, 100.0)
        for _ in range(3):
            queue.pop()
        # v(t) is the start tag of the last job dispatched.
        assert queue.virtual_time == 200.0
        late = queue.submit("late", SPEC, 100.0)
        assert late.start_tag == 200.0  # re-anchored, no banked credit
        backlogged = queue.submit("busy", SPEC, 100.0)
        assert backlogged.start_tag == 300.0  # behind its own last job
        assert queue.pop().tenant == "late"


class TestDispatch:
    def test_weighted_interleaving_two_to_one(self):
        queue = FairJobQueue()
        queue.tenant("a", weight=2.0)
        queue.tenant("b", weight=1.0)
        for _ in range(6):
            queue.submit("a", SPEC, 100.0)
        for _ in range(6):
            queue.submit("b", SPEC, 100.0)
        # Hand-computed finish tags: a = 50,100,...,300; b = 100,...,600.
        # Ties break on submission sequence number.
        assert drain(queue) == [
            "a", "a", "b", "a", "a", "b", "a", "a", "b", "b", "b", "b",
        ]

    def test_fifo_among_equal_tenants(self):
        queue = FairJobQueue()
        for tenant in ("x", "y", "x", "y"):
            queue.submit(tenant, SPEC, 100.0)
        assert drain(queue) == ["x", "y", "x", "y"]

    def test_pop_empty_returns_none(self):
        assert FairJobQueue().pop() is None

    def test_requeue_keeps_tags_and_priority(self):
        queue = FairJobQueue()
        crashed = queue.submit("a", SPEC, 100.0)
        queue.submit("a", SPEC, 100.0)
        assert queue.pop() is crashed
        queue.requeue(crashed)
        # Original tags: the retried job still beats its successor.
        assert queue.pop() is crashed
        assert crashed.finish_tag == 100.0
        assert queue.tenant("a").queued == 1

    def test_queued_counters_track_submit_and_pop(self):
        queue = FairJobQueue()
        queue.submit("a", SPEC, 100.0)
        queue.submit("a", SPEC, 100.0)
        assert queue.tenant("a").queued == 2
        queue.pop()
        assert queue.tenant("a").queued == 1
        assert len(queue) == 1


class TestAccounts:
    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TenantAccount("bad", 0.0)
        queue = FairJobQueue()
        queue.tenant("a")
        with pytest.raises(ValueError, match="positive"):
            queue.tenant("a", weight=-1.0)

    def test_reweight_existing_tenant(self):
        queue = FairJobQueue()
        queue.tenant("a", weight=1.0)
        queue.tenant("a", weight=3.0)
        assert queue.tenant("a").weight == 3.0

    def test_slowdown_floors_at_one(self):
        account = TenantAccount("a")
        assert account.slowdown == 1.0  # nothing run yet
        account.busy_s = 2.0
        account.turnaround_s = 1.0  # measurement jitter can undershoot
        assert account.slowdown == 1.0
        account.turnaround_s = 6.0
        assert account.slowdown == 3.0


class TestFairnessMetrics:
    def test_idle_queue_is_perfectly_fair(self):
        assert FairJobQueue().fairness() == {
            "max_slowdown": 1.0,
            "unfairness": 1.0,
        }

    def test_headline_and_per_tenant_shares(self):
        queue = FairJobQueue()
        queue.tenant("a", weight=2.0)
        queue.tenant("b", weight=1.0)
        job_a = queue.submit("a", SPEC, 100.0)
        job_b = queue.submit("b", SPEC, 100.0)
        queue.charge(job_a, busy_s=2.0, turnaround_s=4.0)
        queue.charge(job_b, busy_s=1.0, turnaround_s=3.0)
        metrics = queue.fairness()
        assert metrics["max_slowdown"] == 3.0
        assert metrics["unfairness"] == 1.5
        assert metrics["tenant.a.busy_share"] == pytest.approx(2 / 3)
        assert metrics["tenant.a.fair_share"] == pytest.approx(2 / 3)
        assert metrics["tenant.b.busy_share"] == pytest.approx(1 / 3)
        assert metrics["tenant.b.slowdown"] == 3.0

    def test_tenants_without_service_are_excluded(self):
        queue = FairJobQueue()
        job = queue.submit("ran", SPEC, 100.0)
        queue.submit("pending", SPEC, 100.0)
        queue.charge(job, busy_s=1.0, turnaround_s=2.0)
        metrics = queue.fairness()
        assert "tenant.pending.slowdown" not in metrics
        assert metrics["tenant.ran.fair_share"] == 1.0
