"""Shared fixtures for the repro.serve suite.

Every test gets isolated cache layers (private disk-cache dir, cleared
memo) so store/cache hit accounting is deterministic, plus a
module-scoped ``tiny_result`` — one real small simulation whose
:class:`~repro.sim.system.SimResult` the fake executors hand out
instantly, keeping the service tests fast while exercising the full
record/round-trip machinery with genuine result payloads.
"""

import asyncio

import pytest

from repro.sim import parallel, runner
from repro.sim.cache import configure_cache


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SERVE", raising=False)
    monkeypatch.delenv("REPRO_SERVE_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SERVE_TIMEOUT", raising=False)
    runner.clear_solo_cache()
    configure_cache()
    yield
    runner.clear_solo_cache()
    configure_cache()


TINY_SPEC = parallel.group_spec(("vpr", "art"), "FR-FCFS", 600, 150, 0)


@pytest.fixture(scope="module")
def tiny_result():
    """One real (small) simulation result, shared across a module."""
    return parallel.execute_spec(TINY_SPEC)


class InstantExecutor:
    """Injectable executor: returns a canned result with no subprocess.

    ``crash_first`` job executions raise
    :class:`~repro.sim.retry.WorkerCrashError` once each (the chaos
    knob); ``delay_s`` adds a deterministic per-job sleep so fairness
    tests can measure busy-second shares.
    """

    def __init__(self, result, crash_first=0, delay_s=0.0):
        self.result = result
        self.crash_first = crash_first
        self.delay_s = delay_s
        self.crashed = set()
        self.executions = 0
        self.pids = {}

    async def run(self, job):
        from repro.sim.retry import WorkerCrashError

        self.executions += 1
        if len(self.crashed) < self.crash_first and job.job_id not in self.crashed:
            self.crashed.add(job.job_id)
            raise WorkerCrashError(f"chaos kill of job {job.job_id}")
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        return self.result
